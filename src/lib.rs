//! Umbrella crate for the `nonmask` workspace.
//!
//! This crate exists so that the repository root can host runnable
//! [examples](https://doc.rust-lang.org/cargo/guide/project-layout.html) and
//! cross-crate integration tests. All functionality lives in the member
//! crates, re-exported here for convenience:
//!
//! - [`nonmask`] — the design methodology (candidate triples, designs,
//!   tolerance verification).
//! - [`nonmask_program`] — guarded-command programs and execution.
//! - [`nonmask_graph`] — constraint graphs and theorem-side conditions.
//! - [`nonmask_checker`] — exhaustive closure/convergence checking.
//! - [`nonmask_sim`] — message-passing simulation substrate.
//! - [`nonmask_protocols`] — the paper's worked protocol designs.
//! - [`nonmask_lang`] — the textual guarded-command language.

pub use nonmask;
pub use nonmask_checker;
pub use nonmask_graph;
pub use nonmask_lang;
pub use nonmask_program;
pub use nonmask_protocols;
pub use nonmask_sim;
