//! Vendored stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors a minimal, dependency-free implementation of the calls
//! it actually makes: `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! across platforms and runs, which the replay/property tests rely on. It is
//! **not** cryptographically secure and makes no attempt to match upstream
//! `rand`'s value streams; everything in this workspace treats the PRNG as
//! an arbitrary deterministic source.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Concrete generator types (mirrors `rand::rngs`).
pub mod rngs;

/// A low-level source of randomness (object-safe core of [`Rng`]).
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed material consumed by [`SeedableRng::from_seed`].
    type Seed: Default + AsMut<[u8]>;

    /// Build a generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build a generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed-expansion generator (public for reuse in seeding).
///
/// Also a full [`RngCore`]/[`Rng`] in its own right: its entire state is
/// one `u64`, which makes it the generator of choice when millions of
/// independent streams must each fit in a few bytes (the fleet harness
/// keeps one per tenant).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64(pub u64);

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.0)
    }
}

/// The SplitMix64 finalizer: a bijective avalanche mix on `u64`.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministically split one master seed into independent per-stream
/// seeds: `split_seed(master, stream)` is the seed of stream `stream`.
///
/// Replaces ad-hoc `seed + i` / `seed ^ CONST` derivations: additive
/// streams collide across neighbouring masters (`split(s, i+1)` vs
/// `split(s+1, i)`) and feed nearly identical seed material to the
/// generator. Here both inputs pass through the bijective SplitMix64
/// finalizer before combining, so for a fixed master the map
/// `stream -> seed` is **injective** (no two streams of one master ever
/// collide, by construction, not by luck), and for a fixed stream the map
/// `master -> seed` is injective too.
pub fn split_seed(master: u64, stream: u64) -> u64 {
    // mix64 is bijective and the golden-ratio offsets decorrelate the two
    // arguments; the outer mix64 avalanches the combination. For fixed
    // `master` this composes bijections of `stream`, hence injectivity.
    mix64(
        mix64(master.wrapping_add(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(mix64(stream ^ 0x6A09_E667_F3BC_C909)),
    )
}

/// Types samplable "off the standard distribution" via [`Rng::gen`].
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 63) != 0
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`] (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // span ≤ 2^64 for ≤64-bit types; a modulo of one u64 draw
                // covers it (span == 2^64 reduces to the identity).
                let v = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    (rng.next_u64() as u128) % span
                };
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// User-facing random-value methods (mirrors `rand::Rng`).
///
/// Blanket-implemented for every [`RngCore`], including unsized ones, so
/// `fn f<R: Rng + ?Sized>(rng: &mut R)` works as with upstream `rand`.
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw a value uniformly from `range`. Panics on empty ranges.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-8..=8);
            assert!((-8..=8).contains(&v));
            let u: usize = rng.gen_range(0..5);
            assert!(u < 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_width_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn split_seed_streams_never_collide() {
        // Injectivity in `stream` holds by construction; this smoke test
        // pins it (and would catch a future non-bijective edit) over a
        // contiguous run of tenant ids plus adversarial extremes.
        let mut seen = std::collections::HashSet::new();
        for stream in 0..100_000u64 {
            assert!(
                seen.insert(split_seed(0xFEED_FACE, stream)),
                "collision at stream {stream}"
            );
        }
        for stream in [u64::MAX, u64::MAX - 1, 1 << 63, (1 << 63) - 1] {
            assert!(seen.insert(split_seed(0xFEED_FACE, stream)));
        }
    }

    #[test]
    fn split_seed_separates_masters() {
        // The ad-hoc patterns this replaces collide exactly here:
        // `master + (i+1) == (master+1) + i`. The split must not.
        for master in [0u64, 1, 42, u64::MAX - 1] {
            for stream in 0..100u64 {
                assert_ne!(
                    split_seed(master, stream + 1),
                    split_seed(master + 1, stream),
                    "master={master} stream={stream}"
                );
            }
        }
    }

    #[test]
    fn split_seed_streams_look_independent() {
        // Adjacent streams must avalanche: over 64-bit outputs of
        // consecutive streams, the mean hamming distance is ~32 bits.
        // (`seed + i` scores ~1 here.)
        let mut total = 0u64;
        let n = 10_000u64;
        for stream in 0..n {
            let a = split_seed(7, stream);
            let b = split_seed(7, stream + 1);
            total += (a ^ b).count_ones() as u64;
        }
        let mean = total as f64 / n as f64;
        assert!(
            (24.0..=40.0).contains(&mean),
            "mean hamming distance {mean}"
        );
    }

    #[test]
    fn splitmix_is_a_deterministic_rng() {
        let mut a = SplitMix64(9);
        let mut b = SplitMix64(9);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Usable through the `Rng` facade like any generator.
        let v: i64 = SplitMix64(3).gen_range(-4..=4);
        assert!((-4..=4).contains(&v));
        // Streams seeded via split_seed diverge immediately.
        assert_ne!(
            SplitMix64(split_seed(1, 0)).next_u64(),
            SplitMix64(split_seed(1, 1)).next_u64()
        );
    }
}
