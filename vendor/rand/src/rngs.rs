//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Seeded via [`SeedableRng::seed_from_u64`] (SplitMix64 expansion) or raw
/// 32-byte seeds. The stream is fixed forever — tests replay against it.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, public domain reference).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // The all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        StdRng { s }
    }
}
