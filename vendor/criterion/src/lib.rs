//! Vendored stand-in for the subset of the `criterion` API this workspace
//! uses.
//!
//! The build environment is offline, so benchmarks run against this minimal
//! wall-clock harness instead of the statistical criterion engine: each
//! benchmark is warmed up for `warm_up_time`, then timed for at least
//! `measurement_time` (and at least `sample_size` iterations), and the mean
//! time per iteration is printed as
//! `bench: <group>/<id> ... <mean> per iter (<n> iters)`.
//!
//! No plots, no statistics, no baseline comparisons — but the numbers are
//! honest means over real iterations and the API (`criterion_group!`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `b.iter(...)`)
//! matches upstream spelling, so swapping the real crate back in is a
//! one-line manifest change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    defaults: Settings,
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: u64,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            defaults: Settings {
                sample_size: 10,
                warm_up_time: Duration::from_millis(300),
                measurement_time: Duration::from_millis(800),
            },
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.defaults;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(None, &id.into(), self.defaults, &mut f);
        self
    }
}

/// A named benchmark (optionally parameterized), mirroring
/// `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark id `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// A group of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Minimum number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n as u64;
        self
    }

    /// How long to run the routine untimed before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Minimum wall-clock time spent measuring.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Benchmark a routine that receives a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(Some(&self.name), &id, self.settings, &mut |b| f(b, input));
        self
    }

    /// Benchmark a plain routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(Some(&self.name), &id.into(), self.settings, &mut f);
        self
    }

    /// Finish the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

fn run_benchmark(
    group: Option<&str>,
    id: &BenchmarkId,
    settings: Settings,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        settings,
        measured: None,
    };
    f(&mut bencher);
    let full = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };
    match bencher.measured {
        Some((total, iters)) => {
            let per_iter = total / iters.max(1) as u32;
            println!(
                "bench: {full:<50} {} per iter ({iters} iters)",
                format_duration(per_iter)
            );
        }
        None => println!("bench: {full:<50} (no measurement — b.iter was never called)"),
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:>10.3} s ", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:>10.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:>10.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos:>10} ns")
    }
}

/// Runs and times the benchmarked routine.
#[derive(Debug)]
pub struct Bencher {
    settings: Settings,
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine`: warm up for `warm_up_time`, then measure for at
    /// least `measurement_time` and `sample_size` iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_until = Instant::now() + self.settings.warm_up_time;
        while Instant::now() < warm_until {
            black_box(routine());
        }

        let mut iters = 0u64;
        let started = Instant::now();
        let measure_until = started + self.settings.measurement_time;
        loop {
            black_box(routine());
            iters += 1;
            if iters >= self.settings.sample_size && Instant::now() >= measure_until {
                break;
            }
        }
        self.measured = Some((started.elapsed(), iters));
    }
}

/// Bundle benchmark functions into a runnable group (mirrors upstream).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` running the given groups (mirrors upstream).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
