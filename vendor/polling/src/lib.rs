//! Vendored, std-only readiness shim over `poll(2)`.
//!
//! The offline build constraint (see `vendor/rand`) forbids pulling real
//! crates from the network, so this crate provides the *minimum* readiness
//! surface the `nonmask-net` reactor needs: level-triggered readable/writable
//! polling over a small set of sockets, plus a best-effort attempt to raise
//! the process file-descriptor limit.
//!
//! Design notes:
//!
//! - The reactor multiplexes *logical* links over a handful of per-shard
//!   TCP streams, so the poll set stays tiny (tens of descriptors even at
//!   10^4 nodes). `poll(2)` is therefore the right primitive — O(fds) scans
//!   are irrelevant at this set size and the syscall exists everywhere;
//!   epoll would buy nothing here.
//! - All `unsafe` in the workspace's networking stack lives in this one
//!   vendored crate; `nonmask-net` itself remains `#![forbid(unsafe_code)]`.
//! - On non-Unix targets the shim degrades to "report everything ready
//!   after a short sleep", which keeps the reactor correct (its socket I/O
//!   is nonblocking and tolerates spurious readiness) at the cost of
//!   busy-polling.

#![warn(missing_docs)]

use std::io;
use std::time::Duration;

/// Interest/readiness flag: the descriptor is readable (or has hung up —
/// hangup is folded into readability so callers observe EOF via `read`).
pub const READABLE: u16 = 0x1;
/// Interest/readiness flag: the descriptor is writable.
pub const WRITABLE: u16 = 0x2;

/// One pollable descriptor: the caller sets `fd` and `interest`
/// ([`READABLE`] | [`WRITABLE`]), and [`poll`] fills `ready`.
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// Raw file descriptor (from `std::os::fd::AsRawFd` on Unix).
    pub fd: i32,
    /// Requested interest: a bitwise OR of [`READABLE`] and [`WRITABLE`].
    pub interest: u16,
    /// Readiness reported by the last [`poll`] call (same bits). Error and
    /// hangup conditions are reported as [`READABLE`] so the caller's next
    /// nonblocking read observes them.
    pub ready: u16,
}

impl PollFd {
    /// A poll entry for `fd` with the given interest and no readiness yet.
    pub fn new(fd: i32, interest: u16) -> Self {
        PollFd {
            fd,
            interest,
            ready: 0,
        }
    }

    /// True if the last poll reported the descriptor readable (or hung up).
    pub fn is_readable(&self) -> bool {
        self.ready & READABLE != 0
    }

    /// True if the last poll reported the descriptor writable.
    pub fn is_writable(&self) -> bool {
        self.ready & WRITABLE != 0
    }
}

#[cfg(unix)]
mod sys {
    use super::{PollFd, READABLE, WRITABLE};
    use std::io;
    use std::time::Duration;

    // Minimal libc surface, declared by hand: the container has no `libc`
    // crate to `cargo add`, and these signatures are stable POSIX.
    #[repr(C)]
    struct RawPollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut RawPollFd, nfds: u64, timeout: i32) -> i32;
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }

    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    const RLIMIT_NOFILE: i32 = 7;

    pub fn poll_impl(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let mut raw: Vec<RawPollFd> = fds
            .iter()
            .map(|p| {
                let mut events = 0i16;
                if p.interest & READABLE != 0 {
                    events |= POLLIN;
                }
                if p.interest & WRITABLE != 0 {
                    events |= POLLOUT;
                }
                RawPollFd {
                    fd: p.fd,
                    events,
                    revents: 0,
                }
            })
            .collect();
        let timeout_ms: i32 = match timeout {
            // Round up so a 1ns request does not spin at timeout 0.
            Some(d) => {
                d.as_millis().min(i32::MAX as u128) as i32
                    + if d.subsec_nanos() % 1_000_000 != 0 {
                        1
                    } else {
                        0
                    }
            }
            None => -1,
        };
        // SAFETY: `raw` is a live, correctly sized buffer of #[repr(C)]
        // pollfd records for the duration of the call.
        let rc = unsafe { poll(raw.as_mut_ptr(), raw.len() as u64, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                // EINTR: report "nothing ready"; the caller's loop re-polls.
                for p in fds.iter_mut() {
                    p.ready = 0;
                }
                return Ok(0);
            }
            return Err(err);
        }
        let mut ready = 0usize;
        for (p, r) in fds.iter_mut().zip(raw.iter()) {
            let mut bits = 0u16;
            if r.revents & (POLLIN | POLLERR | POLLHUP) != 0 {
                bits |= READABLE;
            }
            if r.revents & (POLLOUT | POLLERR) != 0 {
                bits |= WRITABLE;
            }
            p.ready = bits;
            if bits != 0 {
                ready += 1;
            }
        }
        Ok(ready)
    }

    pub fn raise_nofile_limit_impl() -> io::Result<u64> {
        let mut lim = RLimit { cur: 0, max: 0 };
        // SAFETY: `lim` is a live #[repr(C)] rlimit out-parameter.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return Err(io::Error::last_os_error());
        }
        if lim.cur < lim.max {
            let want = RLimit {
                cur: lim.max,
                max: lim.max,
            };
            // SAFETY: `want` is a live #[repr(C)] rlimit in-parameter.
            if unsafe { setrlimit(RLIMIT_NOFILE, &want) } != 0 {
                return Err(io::Error::last_os_error());
            }
            return Ok(lim.max);
        }
        Ok(lim.cur)
    }
}

#[cfg(not(unix))]
mod sys {
    use super::PollFd;
    use std::io;
    use std::time::Duration;

    pub fn poll_impl(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        // Degraded portable fallback: claim everything is ready after a
        // short pause. Nonblocking callers observe WouldBlock and retry.
        std::thread::sleep(
            timeout
                .unwrap_or(Duration::from_millis(1))
                .min(Duration::from_millis(1)),
        );
        for p in fds.iter_mut() {
            p.ready = p.interest;
        }
        Ok(fds.len())
    }

    pub fn raise_nofile_limit_impl() -> io::Result<u64> {
        Ok(u64::MAX)
    }
}

/// Wait until at least one descriptor in `fds` is ready for its requested
/// interest, or `timeout` elapses (`None` blocks indefinitely). Fills each
/// entry's `ready` bits and returns the number of ready descriptors.
///
/// `EINTR` is swallowed and reported as zero ready descriptors; callers are
/// expected to run this inside a loop that recomputes deadlines anyway.
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    sys::poll_impl(fds, timeout)
}

/// Best-effort: raise the soft `RLIMIT_NOFILE` to the hard limit and return
/// the resulting soft limit. The hard limit itself cannot be raised in a
/// sandboxed container, so callers must still budget descriptors; the
/// reactor's shard-multiplexed design needs only tens of sockets even at
/// 10^4 nodes.
pub fn raise_nofile_limit() -> io::Result<u64> {
    sys::raise_nofile_limit_impl()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    #[cfg(unix)]
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[cfg(unix)]
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[cfg(unix)]
    #[test]
    fn detects_readable_after_write() {
        let (mut a, b) = pair();
        let mut fds = [PollFd::new(b.as_raw_fd(), READABLE)];
        // Nothing written yet: poll with a short timeout reports nothing.
        let n = poll(&mut fds, Some(Duration::from_millis(10))).expect("poll");
        assert_eq!(n, 0);
        assert!(!fds[0].is_readable());

        a.write_all(b"hello").expect("write");
        let n = poll(&mut fds, Some(Duration::from_millis(1000))).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].is_readable());

        let mut buf = [0u8; 5];
        let mut b = b;
        b.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"hello");
    }

    #[cfg(unix)]
    #[test]
    fn reports_writable_immediately_and_eof_as_readable() {
        let (a, b) = pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), WRITABLE)];
        let n = poll(&mut fds, Some(Duration::from_millis(1000))).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].is_writable());

        drop(b); // peer close => hangup must surface as READABLE
        let mut fds = [PollFd::new(a.as_raw_fd(), READABLE)];
        let n = poll(&mut fds, Some(Duration::from_millis(1000))).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].is_readable());
    }

    #[test]
    fn timeout_is_honored() {
        #[cfg(unix)]
        {
            let (_a, b) = pair();
            let mut fds = [PollFd::new(b.as_raw_fd(), READABLE)];
            let start = Instant::now();
            let n = poll(&mut fds, Some(Duration::from_millis(30))).expect("poll");
            assert_eq!(n, 0);
            assert!(start.elapsed() >= Duration::from_millis(25));
        }
        #[cfg(not(unix))]
        {
            let mut fds = [];
            let _ = poll(&mut fds, Some(Duration::from_millis(5))).expect("poll");
        }
    }

    #[test]
    fn nofile_limit_is_queryable() {
        let lim = raise_nofile_limit().expect("rlimit");
        assert!(lim > 0);
    }
}
