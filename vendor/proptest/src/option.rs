//! `Option` strategies (mirrors `proptest::option`).

use std::rc::Rc;

use rand::Rng;

use crate::strategy::{BoxedStrategy, Strategy};

/// `Some(value)` about half the time, `None` otherwise.
pub fn of<S>(element: S) -> BoxedStrategy<Option<S::Value>>
where
    S: Strategy + 'static,
{
    BoxedStrategy(Rc::new(move |rng| {
        if rng.gen_bool(0.5) {
            Some(element.generate(rng))
        } else {
            None
        }
    }))
}
