//! The [`Strategy`] trait and its combinators.
//!
//! A strategy here is simply a reproducible value generator: `generate`
//! draws one value from the given RNG. Combinators compose by closure and
//! are boxed eagerly ([`BoxedStrategy`]) — call sites only ever name
//! `impl Strategy<Value = T>` or `BoxedStrategy<T>`, so the concrete
//! combinator types upstream exposes are unnecessary.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// How many rejections `prop_filter`/`prop_filter_map` tolerate per value.
const MAX_FILTER_TRIES: u32 = 10_000;

/// A reproducible generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Type-erase into a cloneable, shareable strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| f(self.generate(rng))))
    }

    /// Generate a value, build a dependent strategy from it, and draw from
    /// that.
    fn prop_flat_map<S, F>(self, f: F) -> BoxedStrategy<S::Value>
    where
        Self: Sized + 'static,
        S: Strategy,
        F: Fn(Self::Value) -> S + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| f(self.generate(rng)).generate(rng)))
    }

    /// Discard generated values failing `f` (regenerating in their place).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| {
            for _ in 0..MAX_FILTER_TRIES {
                let v = self.generate(rng);
                if f(&v) {
                    return v;
                }
            }
            panic!("prop_filter: too many rejections ({reason})");
        }))
    }

    /// Map generated values through a partial function, regenerating on
    /// `None`.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> Option<O> + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| {
            for _ in 0..MAX_FILTER_TRIES {
                if let Some(v) = f(self.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map: too many rejections ({reason})");
        }))
    }

    /// Recursive strategies: `self` generates leaves; `recurse` wraps a
    /// strategy for subterms into a strategy for larger terms. Recursion
    /// depth is bounded by `depth`; the `_desired_size` and
    /// `_expected_branch_size` tuning knobs of upstream are accepted and
    /// ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            let leaf = leaf.clone();
            // Bias toward leaves so expected term size stays finite.
            current = BoxedStrategy(Rc::new(move |rng| {
                if rng.gen_bool(0.5) {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            }));
        }
        current
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among `options` (backs [`crate::prop_oneof!`]).
pub fn union<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(
        !options.is_empty(),
        "prop_oneof! needs at least one strategy"
    );
    BoxedStrategy(Rc::new(move |rng| {
        let i = rng.gen_range(0..options.len());
        options[i].generate(rng)
    }))
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}
