//! Test-runner configuration and failure plumbing.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps exhaustive-state-space
        // properties fast while still exercising the generators broadly.
        // Override per test with `PROPTEST_CASES` or `with_cases`.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A failed property case (returned early by the `prop_assert*` macros).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-test RNG: seeded by an FNV-1a hash of the test name,
/// so every run of a given test replays the same cases.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}
