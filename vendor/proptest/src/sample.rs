//! Sampling from fixed collections (mirrors `proptest::sample`).

use std::rc::Rc;

use rand::Rng;

use crate::strategy::BoxedStrategy;

/// Uniform choice of one element of `options`.
pub fn select<T: Clone + 'static>(options: Vec<T>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "select: empty choice set");
    BoxedStrategy(Rc::new(move |rng| {
        options[rng.gen_range(0..options.len())].clone()
    }))
}
