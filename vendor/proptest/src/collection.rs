//! Collection strategies (mirrors `proptest::collection`).

use std::collections::BTreeSet;
use std::rc::Rc;

use rand::Rng;

use crate::strategy::{BoxedStrategy, Strategy};

/// An inclusive size band for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A `Vec` of `lo..=hi` values drawn from `element`.
pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
where
    S: Strategy + 'static,
{
    let size = size.into();
    BoxedStrategy(Rc::new(move |rng| {
        let n = rng.gen_range(size.lo..=size.hi);
        (0..n).map(|_| element.generate(rng)).collect()
    }))
}

/// A `BTreeSet` of `lo..=hi` distinct values drawn from `element`.
///
/// If the element domain is too small to reach the requested size, the set
/// is returned at whatever size repeated draws achieved (upstream rejects
/// the case instead; no caller in this workspace depends on the
/// difference).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<BTreeSet<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Ord,
{
    let size = size.into();
    BoxedStrategy(Rc::new(move |rng| {
        let n = rng.gen_range(size.lo..=size.hi);
        let mut set = BTreeSet::new();
        let mut misses = 0u32;
        while set.len() < n && misses < 1000 {
            if !set.insert(element.generate(rng)) {
                misses += 1;
            }
        }
        set
    }))
}
