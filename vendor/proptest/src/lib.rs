//! Vendored stand-in for the subset of the `proptest` API this workspace
//! uses.
//!
//! The build environment is offline, so the workspace vendors a minimal
//! random-generation property-testing harness with proptest-compatible
//! spelling: [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_filter` / `prop_filter_map` / `prop_recursive` / `boxed`,
//! [`strategy::Just`], range and tuple and `Vec` strategies,
//! [`collection::vec`] / [`collection::btree_set`], [`option::of`],
//! [`sample::select`], [`arbitrary::any`], and the [`proptest!`] /
//! [`prop_oneof!`] / `prop_assert*` macros.
//!
//! Differences from upstream: generation is purely random (derived
//! deterministically from the test name, so runs are reproducible) and
//! failing cases are **not shrunk** — the panic message reports the case
//! number instead of a minimal counterexample.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests.
///
/// Supports the upstream surface this workspace uses: an optional leading
/// `#![proptest_config(...)]`, doc comments, `#[test]` attributes, and
/// one or more `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::rng_for(stringify!($name));
                for __case in 0..__config.cases {
                    let __result: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $( let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(__e) = __result {
                        panic!(
                            "proptest `{}` failed at case {} of {}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}
