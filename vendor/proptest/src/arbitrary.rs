//! `any::<T>()` support.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::BoxedStrategy;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + 'static {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    BoxedStrategy(Rc::new(|rng| T::arbitrary(rng)))
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` (upstream generates wilder values; every use in
    /// this workspace treats the draw as a probability or weight).
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}
