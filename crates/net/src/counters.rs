//! Per-node observability counters.
//!
//! Each node owns one [`CounterSnapshot`] value, mutated only from its main
//! loop (reader threads forward decode failures as inbox messages rather
//! than touching counters), snapshotted into every [`crate::wire::Frame::Report`]
//! the node ships to the controller, and surfaced verbatim in the final
//! [`crate::NetReport`]. JSON rendering and journal emission go through
//! the shared [`CounterSet`] abstraction from `nonmask-obs`; only the
//! fixed binary wire order ([`CounterSnapshot::to_words`]) stays local.

use nonmask_obs::CounterSet;

/// Monotonic per-node event counts.
///
/// "Sent" counts frames actually written to a socket, so a dropped frame
/// increments `dropped` but not `sent`, while a corrupted or duplicated
/// frame increments both its fault counter and `sent`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Data-plane frames written to peer sockets.
    pub sent: u64,
    /// Data-plane frames received and applied.
    pub received: u64,
    /// Frames the fault injector dropped (including partition drops).
    pub dropped: u64,
    /// Frames the fault injector bit-flipped before sending.
    pub corrupted: u64,
    /// Extra copies the fault injector sent.
    pub duplicated: u64,
    /// Frames the fault injector held back for later (reordering).
    pub delayed: u64,
    /// Received frames rejected by the codec (checksum/tag/truncation).
    pub rejected: u64,
    /// Guarded-command actions executed.
    pub steps: u64,
    /// Executed actions of convergence or combined kind (repair work).
    pub convergence_steps: u64,
    /// Heartbeat frames broadcast.
    pub heartbeats: u64,
    /// Reports shipped to the controller.
    pub reports: u64,
    /// Crash frames honoured (state dropped).
    pub crashes: u64,
}

impl CounterSnapshot {
    /// Number of `u64` words in the wire form.
    pub const WORDS: usize = 12;

    /// Flatten to the fixed wire order.
    pub fn to_words(self) -> [u64; Self::WORDS] {
        [
            self.sent,
            self.received,
            self.dropped,
            self.corrupted,
            self.duplicated,
            self.delayed,
            self.rejected,
            self.steps,
            self.convergence_steps,
            self.heartbeats,
            self.reports,
            self.crashes,
        ]
    }

    /// Rebuild from the fixed wire order.
    pub fn from_words(words: [u64; Self::WORDS]) -> Self {
        CounterSnapshot {
            sent: words[0],
            received: words[1],
            dropped: words[2],
            corrupted: words[3],
            duplicated: words[4],
            delayed: words[5],
            rejected: words[6],
            steps: words[7],
            convergence_steps: words[8],
            heartbeats: words[9],
            reports: words[10],
            crashes: words[11],
        }
    }
}

/// The shared counter abstraction: `fields()` lists the counters in wire
/// order, and the trait's default methods provide the JSON rendering
/// (used by [`crate::NetReport::to_json`]) and per-field journal
/// emission.
impl CounterSet for CounterSnapshot {
    fn scope(&self) -> String {
        "net-node".to_string()
    }

    fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("sent", self.sent),
            ("received", self.received),
            ("dropped", self.dropped),
            ("corrupted", self.corrupted),
            ("duplicated", self.duplicated),
            ("delayed", self.delayed),
            ("rejected", self.rejected),
            ("steps", self.steps),
            ("convergence_steps", self.convergence_steps),
            ("heartbeats", self.heartbeats),
            ("reports", self.reports),
            ("crashes", self.crashes),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_roundtrip() {
        let c = CounterSnapshot {
            sent: 1,
            received: 2,
            dropped: 3,
            corrupted: 4,
            duplicated: 5,
            delayed: 6,
            rejected: 7,
            steps: 8,
            convergence_steps: 9,
            heartbeats: 10,
            reports: 11,
            crashes: 12,
        };
        assert_eq!(CounterSnapshot::from_words(c.to_words()), c);
    }

    #[test]
    fn json_names_every_field() {
        let json = CounterSnapshot::default().to_json();
        for (name, _) in CounterSnapshot::default().fields() {
            assert!(json.contains(name), "{name} missing from {json}");
        }
    }

    #[test]
    fn fields_follow_wire_order() {
        let c = CounterSnapshot::from_words([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
        let values: Vec<u64> = c.fields().iter().map(|&(_, v)| v).collect();
        assert_eq!(values, c.to_words());
    }
}
