//! Runtime stabilization detection over asynchronously sampled state.
//!
//! The controller assembles a god's-eye state from each node's
//! authoritative reports — but the reports arrive at different times, so
//! an assembled snapshot mixes per-node states from slightly different
//! instants and can transiently *leave* the invariant even when every
//! real global state is inside it (e.g. a token pass observed
//! half-reported shows zero or two privileges). Requiring the predicate
//! to hold on every consecutive sample would therefore never terminate
//! for a live protocol.
//!
//! The detector instead declares convergence when, over a sliding window
//! of at least [`DetectorConfig::stable_for`], the fraction of sampled
//! snapshots satisfying the predicate reaches
//! [`DetectorConfig::stable_fraction`] — the runtime analogue of
//! measuring behavior outside the fault span rather than proving it
//! ("Ideal Stabilization", Nesterenko & Tixeuil), robust to the sampling
//! skew that any real observability plane has.

use std::collections::VecDeque;
use std::time::Duration;

/// Detector thresholds.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Minimum width of the observation window before convergence can be
    /// declared.
    pub stable_for: Duration,
    /// Fraction of window samples that must satisfy the predicate.
    pub stable_fraction: f64,
    /// How many consecutive sampling opportunities may be skipped because
    /// the assembly is known-stale (shard freshness generations behind the
    /// live state) before the detector samples anyway. Skipping stale
    /// snapshots prevents premature convergence verdicts at high node
    /// counts; the bound prevents a permanently-busy shard from starving
    /// detection entirely.
    pub max_stale_skips: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            stable_for: Duration::from_millis(150),
            stable_fraction: 0.90,
            max_stale_skips: 64,
        }
    }
}

/// One convergence episode: from a starting disturbance (run start, crash
/// restart, partition heal) to detected convergence.
#[derive(Debug, Clone)]
pub struct Episode {
    /// What started the episode.
    pub label: String,
    /// Episode start, as time since the run began.
    pub started_at: Duration,
    /// When the detector declared convergence (`None`: never converged).
    pub converged_at: Option<Duration>,
}

impl Episode {
    /// Detected convergence latency.
    pub fn latency(&self) -> Option<Duration> {
        self.converged_at.map(|c| c.saturating_sub(self.started_at))
    }
}

/// The windowed-fraction stabilization detector.
#[derive(Debug)]
pub struct Detector {
    config: DetectorConfig,
    episodes: Vec<Episode>,
    /// Recent samples as `(time, predicate_held)`.
    window: VecDeque<(Duration, bool)>,
    /// Consecutive sampling opportunities skipped for staleness.
    stale_skips: u32,
}

impl Detector {
    /// Start a detector whose first episode (`label`) begins at time zero.
    pub fn new(config: DetectorConfig, label: impl Into<String>) -> Self {
        Detector {
            config,
            episodes: vec![Episode {
                label: label.into(),
                started_at: Duration::ZERO,
                converged_at: None,
            }],
            window: VecDeque::new(),
            stale_skips: 0,
        }
    }

    /// Begin a new episode at `now` (a fault was injected); clears the
    /// sample window so pre-fault samples cannot count toward the new
    /// episode's convergence.
    pub fn start_episode(&mut self, now: Duration, label: impl Into<String>) {
        self.window.clear();
        self.episodes.push(Episode {
            label: label.into(),
            started_at: now,
            converged_at: None,
        });
    }

    /// Whether the current episode has already been declared converged.
    pub fn idle(&self) -> bool {
        self.episodes
            .last()
            .is_some_and(|e| e.converged_at.is_some())
    }

    /// Record that a sampling opportunity was skipped because the
    /// assembled state is known to be stale (some shard's freshness
    /// generation is behind its live counter). Returns `true` when the
    /// consecutive-skip budget is exhausted — the caller should sample
    /// anyway rather than let a never-quiescent shard starve detection.
    pub fn note_stale(&mut self) -> bool {
        self.stale_skips = self.stale_skips.saturating_add(1);
        self.stale_skips >= self.config.max_stale_skips
    }

    /// Feed one sampled evaluation of the predicate on the assembled
    /// state. Returns `true` if this sample completed the current
    /// episode.
    pub fn observe(&mut self, now: Duration, holds: bool) -> bool {
        self.stale_skips = 0;
        if self.idle() {
            return false;
        }
        self.window.push_back((now, holds));
        // Trim samples that fell out of the sliding window. The window is
        // the half-open interval `(now - stable_for, now]`: a sample
        // landing exactly on the horizon is `stable_for` old and belongs
        // to the previous window, so `<=` evicts it (with `<` it would be
        // double-counted relative to the documented window width).
        let horizon = now.saturating_sub(self.config.stable_for);
        while self.window.front().is_some_and(|&(t, _)| t <= horizon) {
            self.window.pop_front();
        }
        let episode = self.episodes.last_mut().expect("one episode always open");
        // The window must span stable_for (measured from episode start)
        // before a verdict is possible.
        if now.saturating_sub(episode.started_at) < self.config.stable_for {
            return false;
        }
        let total = self.window.len();
        let held = self.window.iter().filter(|&&(_, h)| h).count();
        if total > 0 && (held as f64) / (total as f64) >= self.config.stable_fraction && holds {
            episode.converged_at = Some(now);
            self.window.clear();
            return true;
        }
        false
    }

    /// All episodes so far, in order.
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// Whether every episode converged.
    pub fn all_converged(&self) -> bool {
        self.episodes.iter().all(|e| e.converged_at.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn detector() -> Detector {
        Detector::new(
            DetectorConfig {
                stable_for: ms(100),
                stable_fraction: 0.9,
                ..DetectorConfig::default()
            },
            "initial",
        )
    }

    #[test]
    fn converges_after_stable_window() {
        let mut d = detector();
        let mut converged_at = None;
        for t in (0..200).step_by(5) {
            if d.observe(ms(t), true) {
                converged_at = Some(t);
                break;
            }
        }
        assert_eq!(converged_at, Some(100), "exactly at the window edge");
        assert!(d.idle());
        assert_eq!(d.episodes()[0].latency(), Some(ms(100)));
    }

    #[test]
    fn tolerates_sampling_flicker() {
        let mut d = detector();
        // One false sample in twenty (95% true) still converges.
        let mut done = false;
        for (i, t) in (0..400).step_by(5).enumerate() {
            done = d.observe(ms(t), i % 20 != 0);
            if done {
                break;
            }
        }
        assert!(done, "5% flicker must not prevent detection");
    }

    #[test]
    fn mostly_false_never_converges() {
        let mut d = detector();
        for (i, t) in (0..1000).step_by(5).enumerate() {
            assert!(!d.observe(ms(t), i % 2 == 0), "50% true is not stable");
        }
        assert!(!d.all_converged());
    }

    #[test]
    fn new_episode_resets_the_window() {
        let mut d = detector();
        for t in (0..105).step_by(5) {
            d.observe(ms(t), true);
        }
        assert!(d.idle());
        d.start_episode(ms(110), "crash-restart node 2");
        assert!(!d.idle());
        // Convergence needs a full new window measured from 110.
        assert!(!d.observe(ms(115), true));
        assert!(!d.observe(ms(200), true));
        assert!(d.observe(ms(215), true));
        assert!(d.all_converged());
        let e = &d.episodes()[1];
        assert_eq!(e.label, "crash-restart node 2");
        assert_eq!(e.latency(), Some(ms(105)));
    }

    #[test]
    fn exact_horizon_sample_is_evicted() {
        // A violation at t=0 sits exactly on the horizon when now=100:
        // the window is (0, 100], so it must not count against the
        // episode. Require a perfect window to make the boundary visible.
        let mut d = Detector::new(
            DetectorConfig {
                stable_for: ms(100),
                stable_fraction: 1.0,
                ..DetectorConfig::default()
            },
            "initial",
        );
        d.observe(ms(0), false);
        let mut converged_at = None;
        for t in (5..=150).step_by(5) {
            if d.observe(ms(t), true) {
                converged_at = Some(t);
                break;
            }
        }
        assert_eq!(
            converged_at,
            Some(100),
            "the boundary violation at t=0 fell out of the (0,100] window"
        );
    }

    #[test]
    fn same_instant_restart_inherits_no_samples() {
        let mut d = detector();
        for t in (0..105).step_by(5) {
            d.observe(ms(t), true);
        }
        assert!(d.idle());
        // Restart at the same instant as the last sample: the stale
        // boundary sample from the finished episode must not leak into
        // the new window, and the verdict clock restarts from 100.
        d.start_episode(ms(100), "same-instant fault");
        assert!(!d.observe(ms(100), true), "no instant re-convergence");
        assert!(!d.observe(ms(195), true), "window not yet spanned");
        assert!(d.observe(ms(200), true));
        assert_eq!(d.episodes()[1].latency(), Some(ms(100)));
    }

    #[test]
    fn stale_skip_budget_is_bounded_and_resets_on_observe() {
        let mut d = Detector::new(
            DetectorConfig {
                stable_for: ms(100),
                stable_fraction: 0.9,
                max_stale_skips: 3,
            },
            "initial",
        );
        assert!(!d.note_stale());
        assert!(!d.note_stale());
        assert!(d.note_stale(), "budget exhausted on the third skip");
        assert!(d.note_stale(), "stays exhausted until a real sample");
        d.observe(ms(5), true);
        assert!(!d.note_stale(), "observing resets the skip budget");
    }

    #[test]
    fn last_sample_must_hold() {
        let mut d = detector();
        for t in (0..150).step_by(5) {
            // 29/30 true overall, but every sample at the verdict point is
            // false → no convergence on a false sample.
            let holds = t < 145;
            let done = d.observe(ms(t), holds);
            assert!(!done || holds, "never declare convergence on a violation");
        }
    }
}
