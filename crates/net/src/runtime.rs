//! The controller: launches one socket node per protocol process, injects
//! scheduled faults, detects stabilization at runtime, and assembles the
//! machine-readable report.

use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use nonmask_obs::{CounterSet, Event, Journal};
use nonmask_program::json::{escape, state_to_json};
use nonmask_program::{Predicate, Program, State, StepLog, VarId};
use nonmask_sim::{RefineError, Refinement};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::counters::CounterSnapshot;
use crate::detect::{Detector, DetectorConfig, Episode};
use crate::fault::{FaultConfig, PartitionMap};
use crate::node::{run_node, NodeSpec, NodeTiming};
use crate::wire::{read_frame, write_frame, Frame, MAX_PAYLOAD};

/// A scheduled disturbance.
///
/// Events fire in order, and each waits until the detector has declared
/// the *current* episode converged (and `at_least` has elapsed) — so
/// every episode's convergence latency is measured from a converged
/// baseline, never overlapping the previous recovery.
#[derive(Debug, Clone)]
pub enum NetEvent {
    /// Crash `node` (it drops its state and goes silent), then after
    /// `down` restart it with an *arbitrary* full view sampled from the
    /// run's RNG — the paper's nonmasking scenario.
    CrashRestart {
        /// Node to crash.
        node: usize,
        /// Earliest time (since run start) the crash may fire.
        at_least: Duration,
        /// How long the node stays down.
        down: Duration,
    },
    /// Partition the nodes into groups (frames crossing group boundaries
    /// drop), then heal after `heal_after`.
    Partition {
        /// `groups[node]` is the node's group id.
        groups: Vec<usize>,
        /// Earliest time (since run start) the partition may form.
        at_least: Duration,
        /// How long the partition lasts.
        heal_after: Duration,
    },
}

/// Configuration of a [`run`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Seed for restart-state sampling (fault rates seed separately via
    /// [`FaultConfig::seed`]).
    pub seed: u64,
    /// Data-plane fault rates.
    pub faults: FaultConfig,
    /// Wall-clock duration of one node-loop tick.
    pub tick: Duration,
    /// Max actions a node executes per eligible tick.
    pub steps_per_tick: usize,
    /// Ticks a node rests after executing (paces the protocol below the
    /// report cadence so assembled snapshots are near-consistent).
    pub cooldown_ticks: u64,
    /// Heartbeat period in ticks (`0` disables; heartbeats are what heal
    /// caches after lost updates, so disable only with a lossless net).
    pub heartbeat_every: u64,
    /// Report period in ticks.
    pub report_every: u64,
    /// Stabilization-detector thresholds.
    pub detector: DetectorConfig,
    /// Abort the run (unconverged) after this much wall-clock time.
    pub timeout: Duration,
    /// Scheduled disturbances.
    pub events: Vec<NetEvent>,
    /// Structured event journal for the controller: fault injections,
    /// detector episodes, control frames, and final per-node counters.
    /// Defaults to [`Journal::disabled`] (no overhead).
    pub journal: Journal,
    /// Record every action a node executes — node index, node-local tick,
    /// and the node's view before/after — for differential conformance
    /// checking (`crates/conform`). Off by default; recording clones two
    /// states per step under a shared lock.
    pub step_log: Option<StepLog>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            seed: 0,
            faults: FaultConfig::default(),
            tick: Duration::from_micros(200),
            steps_per_tick: 1,
            cooldown_ticks: 16,
            heartbeat_every: 4,
            report_every: 1,
            detector: DetectorConfig::default(),
            timeout: Duration::from_secs(30),
            events: Vec::new(),
            journal: Journal::disabled(),
            step_log: None,
        }
    }
}

/// Why a run could not start.
#[derive(Debug)]
pub enum NetError {
    /// The program is not refinable into per-process nodes.
    Refine(RefineError),
    /// Arbitrary restart states require bounded domains.
    Unbounded,
    /// More processes than the wire's 16-bit node ids.
    TooManyNodes(usize),
    /// A full-view frame for this program would exceed [`MAX_PAYLOAD`].
    TooManyVars(usize),
    /// An event references a node outside the process range.
    BadEvent(String),
    /// Socket setup failed.
    Io(io::Error),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Refine(e) => write!(f, "not refinable: {e}"),
            NetError::Unbounded => {
                write!(
                    f,
                    "arbitrary restart states require bounded variable domains"
                )
            }
            NetError::TooManyNodes(n) => write!(f, "{n} processes exceed 16-bit node ids"),
            NetError::TooManyVars(n) => {
                write!(
                    f,
                    "{n} variables do not fit one frame ({MAX_PAYLOAD} byte payload cap)"
                )
            }
            NetError::BadEvent(msg) => write!(f, "bad event: {msg}"),
            NetError::Io(e) => write!(f, "socket setup failed: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<RefineError> for NetError {
    fn from(e: RefineError) -> Self {
        NetError::Refine(e)
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

/// One node's slice of the final report.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Node index.
    pub node: usize,
    /// The node's final counters (from its last report).
    pub counters: CounterSnapshot,
}

/// Journals each node's counters under a per-node scope
/// (`"net-node:<index>"`), so one journal distinguishes every node's
/// final figures.
impl CounterSet for NodeReport {
    fn scope(&self) -> String {
        format!("net-node:{}", self.node)
    }

    fn fields(&self) -> Vec<(&'static str, u64)> {
        self.counters.fields()
    }
}

/// The machine-readable outcome of a [`run`].
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Every episode converged and the run did not time out.
    pub converged: bool,
    /// The run hit [`NetConfig::timeout`].
    pub timed_out: bool,
    /// Convergence episodes with wall-clock latencies.
    pub episodes: Vec<Episode>,
    /// Total wall-clock duration of the run.
    pub wall: Duration,
    /// Name of the goal predicate.
    pub goal: String,
    /// Final assembled (god's-eye) state.
    pub final_state: State,
    /// Per-node counters.
    pub nodes: Vec<NodeReport>,
}

fn dur_ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

impl NetReport {
    /// Render as a JSON object (counters, episodes, and final state all
    /// machine-readable).
    pub fn to_json(&self) -> String {
        let episodes: Vec<String> = self
            .episodes
            .iter()
            .map(|e| {
                let converged = e
                    .converged_at
                    .map_or("null".to_owned(), |c| format!("{:.3}", dur_ms(c)));
                let latency = e
                    .latency()
                    .map_or("null".to_owned(), |l| format!("{:.3}", dur_ms(l)));
                format!(
                    "{{\"label\":\"{}\",\"started_ms\":{:.3},\"converged_ms\":{},\"latency_ms\":{}}}",
                    escape(&e.label),
                    dur_ms(e.started_at),
                    converged,
                    latency
                )
            })
            .collect();
        let nodes: Vec<String> = self
            .nodes
            .iter()
            .map(|n| {
                format!(
                    "{{\"node\":{},\"counters\":{}}}",
                    n.node,
                    n.counters.to_json()
                )
            })
            .collect();
        format!(
            "{{\"converged\":{},\"timed_out\":{},\"wall_ms\":{:.3},\"goal\":\"{}\",\"episodes\":[{}],\"final_state\":{},\"nodes\":[{}]}}",
            self.converged,
            self.timed_out,
            dur_ms(self.wall),
            escape(&self.goal),
            episodes.join(","),
            state_to_json(&self.final_state),
            nodes.join(",")
        )
    }

    /// Render as a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "converged: {}  (wall {:.1} ms, goal `{}`)\n",
            self.converged,
            dur_ms(self.wall),
            self.goal
        ));
        for e in &self.episodes {
            match e.latency() {
                Some(l) => out.push_str(&format!("  {}: {:.1} ms\n", e.label, dur_ms(l))),
                None => out.push_str(&format!("  {}: did not converge\n", e.label)),
            }
        }
        for n in &self.nodes {
            let c = n.counters;
            out.push_str(&format!(
                "  node {}: sent {} recv {} dropped {} corrupted {} dup {} delayed {} rejected {} steps {} (conv {}) hb {} reports {} crashes {}\n",
                n.node,
                c.sent,
                c.received,
                c.dropped,
                c.corrupted,
                c.duplicated,
                c.delayed,
                c.rejected,
                c.steps,
                c.convergence_steps,
                c.heartbeats,
                c.reports,
                c.crashes
            ));
        }
        out
    }
}

/// An internal scheduled follow-up to a fired event.
enum PendingAction {
    Restart { node: usize },
    Heal,
}

/// Derive per-node topology specs. Node indices are narrowed to the
/// wire's 16-bit id space here, once — the only conversion site, so an
/// oversized process count surfaces as [`NetError::TooManyNodes`] before
/// any socket or thread exists instead of panicking inside a node.
fn build_specs(refinement: &Refinement) -> Result<Vec<NodeSpec>, NetError> {
    let n = refinement.process_count();
    let mut specs: Vec<NodeSpec> = (0..n)
        .map(|p| {
            Ok(NodeSpec {
                node: u16::try_from(p).map_err(|_| NetError::TooManyNodes(n))?,
                actions: refinement.actions_of(p).to_vec(),
                owned: refinement.vars_of(p).to_vec(),
                out_peers: Vec::new(),
                expected_incoming: 0,
            })
        })
        .collect::<Result<_, NetError>>()?;
    for p in 0..n {
        let mut peer_vars: Vec<(usize, Vec<VarId>)> = Vec::new();
        for &v in &specs[p].owned.clone() {
            for &q in refinement.remote_readers_of(v) {
                match peer_vars.iter_mut().find(|(peer, _)| *peer == q) {
                    Some((_, vars)) => vars.push(v),
                    None => peer_vars.push((q, vec![v])),
                }
            }
        }
        peer_vars.sort_by_key(|(peer, _)| *peer);
        for (q, _) in &peer_vars {
            specs[*q].expected_incoming += 1;
        }
        specs[p].out_peers = peer_vars;
    }
    Ok(specs)
}

fn validate(
    program: &Program,
    refinement: &Refinement,
    config: &NetConfig,
) -> Result<(), NetError> {
    if !program.is_bounded() {
        return Err(NetError::Unbounded);
    }
    let n = refinement.process_count();
    if n > usize::from(u16::MAX) {
        return Err(NetError::TooManyNodes(n));
    }
    // A Restart frame carries the full view: 12 bytes per var + header.
    if program.var_count() * 12 + 64 > MAX_PAYLOAD {
        return Err(NetError::TooManyVars(program.var_count()));
    }
    for event in &config.events {
        match event {
            NetEvent::CrashRestart { node, .. } if *node >= n => {
                return Err(NetError::BadEvent(format!(
                    "crash-restart of node {node}, but only {n} nodes"
                )));
            }
            NetEvent::Partition { groups, .. } if groups.len() != n => {
                return Err(NetError::BadEvent(format!(
                    "partition lists {} groups for {n} nodes",
                    groups.len()
                )));
            }
            _ => {}
        }
    }
    Ok(())
}

/// Launch `program` as one TCP-loopback node per process, drive it from
/// `initial` until the goal predicate stabilizes (and every scheduled
/// event has played out), and return the observability report.
///
/// # Errors
///
/// See [`NetError`].
pub fn run(
    program: &Program,
    initial: &State,
    goal: &Predicate,
    config: &NetConfig,
) -> Result<NetReport, NetError> {
    let refinement = Refinement::new(program)?;
    validate(program, &refinement, config)?;
    let specs = build_specs(&refinement)?;
    let n = specs.len();

    // Bind every listener before any thread dials anything.
    let mut node_listeners = Vec::with_capacity(n);
    let mut peer_addrs: Vec<SocketAddr> = Vec::with_capacity(n);
    for _ in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        peer_addrs.push(listener.local_addr()?);
        node_listeners.push(listener);
    }
    let controller_listener = TcpListener::bind("127.0.0.1:0")?;
    let controller_addr = controller_listener.local_addr()?;

    let partition = PartitionMap::new();
    let timing = NodeTiming {
        tick: config.tick,
        steps_per_tick: config.steps_per_tick,
        cooldown_ticks: config.cooldown_ticks,
        heartbeat_every: config.heartbeat_every,
        report_every: config.report_every,
        startup_timeout: config.timeout,
    };

    let mut result: Option<NetReport> = None;
    std::thread::scope(|scope| -> Result<(), NetError> {
        for (spec, listener) in specs.iter().zip(node_listeners) {
            let peer_addrs = &peer_addrs;
            let partition = &partition;
            let timing = &timing;
            let faults = &config.faults;
            let initial_view = initial.clone();
            let step_log = config.step_log.clone();
            scope.spawn(move || {
                // Startup failures leave the node silent; the controller
                // times out and reports non-convergence.
                let _ = run_node(
                    program,
                    spec,
                    listener,
                    peer_addrs,
                    controller_addr,
                    initial_view,
                    partition,
                    faults,
                    timing,
                    step_log,
                );
            });
        }
        result = Some(control_loop(
            program,
            initial,
            goal,
            config,
            &partition,
            controller_listener,
            n,
            scope,
        )?);
        Ok(())
    })?;
    Ok(result.expect("control loop ran"))
}

/// Accept all node control connections, run the event/detector loop, and
/// assemble the report.
#[allow(clippy::too_many_arguments)]
fn control_loop<'scope, 'env>(
    program: &Program,
    initial: &State,
    goal: &Predicate,
    config: &NetConfig,
    partition: &PartitionMap,
    controller_listener: TcpListener,
    n: usize,
    scope: &'scope std::thread::Scope<'scope, 'env>,
) -> Result<NetReport, NetError>
where
    'env: 'scope,
{
    let journal = &config.journal;
    let (report_tx, report_rx) = std::sync::mpsc::channel::<Frame>();

    // Each node dials in and opens with Hello{node}; the read half feeds
    // the report channel, the write half carries control frames. The
    // accept loop is deadlined: a node that died during startup must not
    // block the run forever (on bail-out, dropping the listener and the
    // accepted streams resets every node's control link, which each node
    // treats as shutdown — so the scoped threads still unwind).
    let mut control_tx: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
    controller_listener.set_nonblocking(true)?;
    let accept_deadline = Instant::now() + config.timeout;
    for _ in 0..n {
        let stream = loop {
            match controller_listener.accept() {
                Ok((stream, _)) => break stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() > accept_deadline {
                        for open in control_tx.iter().flatten() {
                            let _ = open.shutdown(std::net::Shutdown::Both);
                        }
                        return Err(NetError::Io(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "a node never connected to the controller",
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(NetError::Io(e)),
            }
        };
        stream.set_nonblocking(false)?;
        stream.set_nodelay(true)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let node = match read_frame(&mut reader)? {
            Some(Ok(Frame::Hello { node })) => usize::from(node),
            other => {
                return Err(NetError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected Hello on control connection, got {other:?}"),
                )))
            }
        };
        control_tx[node] = Some(stream);
        journal.emit_with(|| Event::Frame {
            node: node as u64,
            kind: "hello".to_string(),
        });
        let tx: Sender<Frame> = report_tx.clone();
        scope.spawn(move || {
            while let Ok(Some(result)) = read_frame(&mut reader) {
                match result {
                    Ok(frame) => {
                        if tx.send(frame).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
        });
    }
    drop(report_tx);
    drop(controller_listener);

    let start = Instant::now();
    let mut assembled = initial.clone();
    let mut node_counters = vec![CounterSnapshot::default(); n];
    let mut node_done = vec![false; n];
    let mut detector = Detector::new(config.detector.clone(), "initial convergence");
    journal.emit_with(|| Event::EpisodeStarted {
        label: "initial convergence".to_string(),
    });
    let mut queue: VecDeque<NetEvent> = config.events.iter().cloned().collect();
    let mut pending: Vec<(Duration, PendingAction)> = Vec::new();
    // The controller's event stream must not share seed material with the
    // per-node link streams derived from the same config seed.
    let mut rng = StdRng::seed_from_u64(rand::split_seed(config.seed, 0xD15E_A5ED));
    let mut timed_out = false;

    let apply_report = |frame: &Frame,
                        assembled: &mut State,
                        node_counters: &mut [CounterSnapshot],
                        node_done: &mut [bool]| {
        if let Frame::Report {
            node,
            last,
            counters,
            vars,
            ..
        } = frame
        {
            let node = usize::from(*node);
            if node < n {
                node_counters[node] = *counters;
                node_done[node] |= *last;
                // Only final reports are journaled: at the default cadence
                // the periodic ones arrive thousands of times per second.
                if *last {
                    journal.emit_with(|| Event::Frame {
                        node: node as u64,
                        kind: "report".to_string(),
                    });
                }
                for &(var, value) in vars {
                    if (var as usize) < program.var_count() {
                        assembled.set(VarId::from_index(var as usize), value);
                    }
                }
            }
        }
    };

    loop {
        // Block briefly for the next report, then drain the backlog.
        match report_rx.recv_timeout(Duration::from_micros(500)) {
            Ok(frame) => apply_report(&frame, &mut assembled, &mut node_counters, &mut node_done),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        for frame in report_rx.try_iter() {
            apply_report(&frame, &mut assembled, &mut node_counters, &mut node_done);
        }
        let now = start.elapsed();

        // Fire due follow-ups (restarts, heals) unconditionally.
        let mut i = 0;
        while i < pending.len() {
            if pending[i].0 <= now {
                let (_, action) = pending.swap_remove(i);
                match action {
                    PendingAction::Restart { node } => {
                        let arbitrary: Vec<(u32, i64)> = program
                            .var_ids()
                            .map(|v| (v.index() as u32, program.var(v).domain().sample(&mut rng)))
                            .collect();
                        send_control(&mut control_tx, node, &Frame::Restart { vars: arbitrary });
                        detector.start_episode(now, format!("crash-restart node {node}"));
                        journal.emit_with(|| Event::Fault {
                            kind: "restart".to_string(),
                            detail: format!("node {node} with arbitrary state"),
                        });
                        journal.emit_with(|| Event::EpisodeStarted {
                            label: format!("crash-restart node {node}"),
                        });
                    }
                    PendingAction::Heal => {
                        partition.heal();
                        detector.start_episode(now, "partition heal");
                        journal.emit_with(|| Event::Fault {
                            kind: "heal".to_string(),
                            detail: "partition healed".to_string(),
                        });
                        journal.emit_with(|| Event::EpisodeStarted {
                            label: "partition heal".to_string(),
                        });
                    }
                }
            } else {
                i += 1;
            }
        }

        // Fire the next scheduled event once the system is converged.
        if pending.is_empty() && detector.idle() {
            let due = matches!(
                queue.front(),
                Some(NetEvent::CrashRestart { at_least, .. } | NetEvent::Partition { at_least, .. })
                    if *at_least <= now
            );
            if due {
                match queue.pop_front().expect("checked front") {
                    NetEvent::CrashRestart { node, down, .. } => {
                        send_control(&mut control_tx, node, &Frame::Crash);
                        journal.emit_with(|| Event::Fault {
                            kind: "crash".to_string(),
                            detail: format!("node {node} down for {down:?}"),
                        });
                        pending.push((now + down, PendingAction::Restart { node }));
                    }
                    NetEvent::Partition {
                        groups, heal_after, ..
                    } => {
                        journal.emit_with(|| Event::Fault {
                            kind: "partition".to_string(),
                            detail: format!("groups {groups:?}"),
                        });
                        partition.set(groups);
                        pending.push((now + heal_after, PendingAction::Heal));
                    }
                }
            }
        }

        if detector.observe(now, goal.holds(&assembled)) {
            if let Some(episode) = detector.episodes().last() {
                journal.emit_with(|| Event::EpisodeConverged {
                    label: episode.label.clone(),
                    micros: episode.latency().unwrap_or_default().as_micros() as u64,
                });
            }
        }

        if queue.is_empty() && pending.is_empty() && detector.idle() {
            break;
        }
        if now > config.timeout {
            timed_out = true;
            break;
        }
    }

    // Shut everything down and collect final reports.
    for node in 0..n {
        send_control(&mut control_tx, node, &Frame::Shutdown);
    }
    let grace = Instant::now();
    while !node_done.iter().all(|&d| d) && grace.elapsed() < Duration::from_secs(5) {
        match report_rx.recv_timeout(Duration::from_millis(20)) {
            Ok(frame) => apply_report(&frame, &mut assembled, &mut node_counters, &mut node_done),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Shut the sockets down (not just drop our clones): the scoped reader
    // threads hold their own clones and are blocked in read, so only a
    // socket-level shutdown gets them EOF and lets the scope join.
    for stream in control_tx.iter().flatten() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    drop(control_tx);

    let converged = detector.all_converged() && !timed_out;
    let report = NetReport {
        converged,
        timed_out,
        episodes: detector.episodes().to_vec(),
        wall: start.elapsed(),
        goal: goal.name().to_owned(),
        final_state: assembled,
        nodes: node_counters
            .into_iter()
            .enumerate()
            .map(|(node, counters)| NodeReport { node, counters })
            .collect(),
    };
    for node in &report.nodes {
        node.emit(journal);
    }
    journal.flush();
    Ok(report)
}

/// Best-effort control-plane send; a node that already exited is fine.
fn send_control(control_tx: &mut [Option<TcpStream>], node: usize, frame: &Frame) {
    if let Some(stream) = control_tx.get_mut(node).and_then(Option::as_mut) {
        let _ = write_frame(stream, frame);
    }
}
