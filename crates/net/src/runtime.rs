//! The controller: launches shard workers that multiplex one node per
//! protocol process, injects scheduled faults, detects stabilization at
//! runtime, and assembles the machine-readable report.
//!
//! Since the reactor refactor the controller no longer owns one socket
//! and two threads per node: it accepts a single control stream per
//! *shard* (see the `reactor` module), drives them all from one poll loop,
//! and addresses individual nodes with [`Frame::Routed`] envelopes.
//! Convergence sampling is freshness-gated: every shard publishes a live
//! generation counter (bumped on each authoritative state change) and
//! pulses the generation it has flushed down its control stream, so the
//! controller knows when its assembled snapshot lags a busy shard and
//! skips the sample instead of risking a premature verdict (with a
//! bounded skip budget, [`DetectorConfig::max_stale_skips`], so sampling
//! can never starve).

use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use nonmask_obs::{CounterSet, Event, Journal};
use nonmask_program::json::{escape, state_to_json};
use nonmask_program::{Predicate, Program, State, StepLog, VarId};
use nonmask_sim::{RefineError, Refinement};
use polling::{PollFd, READABLE, WRITABLE};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::counters::CounterSnapshot;
use crate::detect::{Detector, DetectorConfig, Episode};
use crate::fault::{FaultConfig, PartitionMap};
use crate::node::{NodeSpec, NodeTiming};
use crate::reactor::{
    debug_enabled, effective_shards, flush_buf, raw_fd, run_worker, MeshPlan, ShardPlan, WorkerEnv,
};
use crate::wire::{read_frame, FeedStatus, Frame, FrameBuffer, MAX_PAYLOAD};

/// Most `(var, value)` pairs per Restart frame: a restart of a huge view
/// is chunked so no frame exceeds [`MAX_PAYLOAD`].
const RESTART_CHUNK: usize = 4096;

/// A scheduled disturbance.
///
/// Events fire in order, and each waits until the detector has declared
/// the *current* episode converged (and `at_least` has elapsed) — so
/// every episode's convergence latency is measured from a converged
/// baseline, never overlapping the previous recovery.
#[derive(Debug, Clone)]
pub enum NetEvent {
    /// Crash `node` (it drops its state and goes silent), then after
    /// `down` restart it with an *arbitrary* full view sampled from the
    /// run's RNG — the paper's nonmasking scenario.
    CrashRestart {
        /// Node to crash.
        node: usize,
        /// Earliest time (since run start) the crash may fire.
        at_least: Duration,
        /// How long the node stays down.
        down: Duration,
    },
    /// Partition the nodes into groups (frames crossing group boundaries
    /// drop), then heal after `heal_after`.
    Partition {
        /// `groups[node]` is the node's group id.
        groups: Vec<usize>,
        /// Earliest time (since run start) the partition may form.
        at_least: Duration,
        /// How long the partition lasts.
        heal_after: Duration,
    },
}

/// Configuration of a [`run`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Seed for restart-state sampling (fault rates seed separately via
    /// [`FaultConfig::seed`]).
    pub seed: u64,
    /// Data-plane fault rates.
    pub faults: FaultConfig,
    /// Wall-clock duration of one node-loop tick.
    pub tick: Duration,
    /// Max actions a node executes per eligible tick.
    pub steps_per_tick: usize,
    /// Ticks a node rests after executing (paces the protocol below the
    /// report cadence so assembled snapshots are near-consistent).
    pub cooldown_ticks: u64,
    /// Heartbeat period in ticks (`0` disables; heartbeats are what heal
    /// caches after lost updates, so disable only with a lossless net).
    pub heartbeat_every: u64,
    /// Report period in ticks.
    pub report_every: u64,
    /// Worker shards multiplexing the nodes (`0` = auto from available
    /// parallelism). Physical transport only: the logical per-link fault
    /// streams are shard-count-invariant.
    pub shards: usize,
    /// Stabilization-detector thresholds.
    pub detector: DetectorConfig,
    /// Abort the run (unconverged) after this much wall-clock time.
    pub timeout: Duration,
    /// Scheduled disturbances.
    pub events: Vec<NetEvent>,
    /// Permanently malicious nodes: each never executes program actions
    /// and instead broadcasts seeded arbitrary values for its owned
    /// variables at every heartbeat, forever (the fault never heals). A
    /// run with Byzantine nodes should be given a goal that reads only
    /// variables *outside* their influence region (e.g. a protocol's
    /// safe-region goal) — a goal pinning a liar's own variables can
    /// never stabilize.
    pub byzantine: Vec<usize>,
    /// Seed of the Byzantine lie stream
    /// ([`nonmask_program::byzantine_lie_in`]); independent of
    /// [`NetConfig::seed`] so sim and net runs can share one adversary.
    pub byzantine_seed: u64,
    /// Structured event journal for the controller: fault injections,
    /// detector episodes, control frames, and final per-node counters.
    /// Defaults to [`Journal::disabled`] (no overhead).
    pub journal: Journal,
    /// Record every action a node executes — node index, node-local tick,
    /// and the node's view before/after — for differential conformance
    /// checking (`crates/conform`). Off by default; recording clones two
    /// states per step under a shared lock.
    pub step_log: Option<StepLog>,
    /// Test hook: panic the given shard worker during startup, to
    /// exercise the [`NetError::ControlLoopFailed`] path.
    #[doc(hidden)]
    pub sabotage_worker: Option<usize>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            seed: 0,
            faults: FaultConfig::default(),
            tick: Duration::from_micros(200),
            steps_per_tick: 1,
            cooldown_ticks: 16,
            heartbeat_every: 4,
            report_every: 1,
            shards: 0,
            detector: DetectorConfig::default(),
            timeout: Duration::from_secs(30),
            events: Vec::new(),
            byzantine: Vec::new(),
            byzantine_seed: 0,
            journal: Journal::disabled(),
            step_log: None,
            sabotage_worker: None,
        }
    }
}

/// Why a run could not start or finish.
#[derive(Debug)]
pub enum NetError {
    /// The program is not refinable into per-process nodes.
    Refine(RefineError),
    /// Arbitrary restart states require bounded domains.
    Unbounded,
    /// More processes than the wire's 16-bit node ids.
    TooManyNodes(usize),
    /// One node's owned variables do not fit a single report frame.
    TooManyVars(usize),
    /// An event references a node outside the process range.
    BadEvent(String),
    /// Socket setup failed.
    Io(io::Error),
    /// A shard worker thread died (panicked) instead of running its
    /// nodes; carries the panic payload's message.
    ControlLoopFailed(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Refine(e) => write!(f, "not refinable: {e}"),
            NetError::Unbounded => {
                write!(
                    f,
                    "arbitrary restart states require bounded variable domains"
                )
            }
            NetError::TooManyNodes(n) => write!(f, "{n} processes exceed 16-bit node ids"),
            NetError::TooManyVars(n) => {
                write!(
                    f,
                    "{n} owned variables do not fit one frame ({MAX_PAYLOAD} byte payload cap)"
                )
            }
            NetError::BadEvent(msg) => write!(f, "bad event: {msg}"),
            NetError::Io(e) => write!(f, "socket setup failed: {e}"),
            NetError::ControlLoopFailed(msg) => {
                write!(f, "a node worker thread died: {msg}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<RefineError> for NetError {
    fn from(e: RefineError) -> Self {
        NetError::Refine(e)
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

/// One node's slice of the final report.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Node index.
    pub node: usize,
    /// The node's final counters (from its last report).
    pub counters: CounterSnapshot,
}

/// Journals each node's counters under a per-node scope
/// (`"net-node:<index>"`), so one journal distinguishes every node's
/// final figures.
impl CounterSet for NodeReport {
    fn scope(&self) -> String {
        format!("net-node:{}", self.node)
    }

    fn fields(&self) -> Vec<(&'static str, u64)> {
        self.counters.fields()
    }
}

/// The machine-readable outcome of a [`run`].
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Every episode converged and the run did not time out.
    pub converged: bool,
    /// The run hit [`NetConfig::timeout`].
    pub timed_out: bool,
    /// Convergence episodes with wall-clock latencies.
    pub episodes: Vec<Episode>,
    /// Total wall-clock duration of the run.
    pub wall: Duration,
    /// Name of the goal predicate.
    pub goal: String,
    /// Final assembled (god's-eye) state.
    pub final_state: State,
    /// Per-node counters.
    pub nodes: Vec<NodeReport>,
}

fn dur_ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

impl NetReport {
    /// Render as a JSON object (counters, episodes, and final state all
    /// machine-readable).
    pub fn to_json(&self) -> String {
        let episodes: Vec<String> = self
            .episodes
            .iter()
            .map(|e| {
                let converged = e
                    .converged_at
                    .map_or("null".to_owned(), |c| format!("{:.3}", dur_ms(c)));
                let latency = e
                    .latency()
                    .map_or("null".to_owned(), |l| format!("{:.3}", dur_ms(l)));
                format!(
                    "{{\"label\":\"{}\",\"started_ms\":{:.3},\"converged_ms\":{},\"latency_ms\":{}}}",
                    escape(&e.label),
                    dur_ms(e.started_at),
                    converged,
                    latency
                )
            })
            .collect();
        let nodes: Vec<String> = self
            .nodes
            .iter()
            .map(|n| {
                format!(
                    "{{\"node\":{},\"counters\":{}}}",
                    n.node,
                    n.counters.to_json()
                )
            })
            .collect();
        format!(
            "{{\"converged\":{},\"timed_out\":{},\"wall_ms\":{:.3},\"goal\":\"{}\",\"episodes\":[{}],\"final_state\":{},\"nodes\":[{}]}}",
            self.converged,
            self.timed_out,
            dur_ms(self.wall),
            escape(&self.goal),
            episodes.join(","),
            state_to_json(&self.final_state),
            nodes.join(",")
        )
    }

    /// Render as a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "converged: {}  (wall {:.1} ms, goal `{}`)\n",
            self.converged,
            dur_ms(self.wall),
            self.goal
        ));
        for e in &self.episodes {
            match e.latency() {
                Some(l) => out.push_str(&format!("  {}: {:.1} ms\n", e.label, dur_ms(l))),
                None => out.push_str(&format!("  {}: did not converge\n", e.label)),
            }
        }
        for n in &self.nodes {
            let c = n.counters;
            out.push_str(&format!(
                "  node {}: sent {} recv {} dropped {} corrupted {} dup {} delayed {} rejected {} steps {} (conv {}) hb {} reports {} crashes {}\n",
                n.node,
                c.sent,
                c.received,
                c.dropped,
                c.corrupted,
                c.duplicated,
                c.delayed,
                c.rejected,
                c.steps,
                c.convergence_steps,
                c.heartbeats,
                c.reports,
                c.crashes
            ));
        }
        out
    }
}

/// An internal scheduled follow-up to a fired event.
enum PendingAction {
    Restart { node: usize },
    Heal,
}

/// Derive per-node topology specs. Node indices are narrowed to the
/// wire's 16-bit id space here, once — the only conversion site, so an
/// oversized process count surfaces as [`NetError::TooManyNodes`] before
/// any socket or thread exists instead of panicking inside a node.
fn build_specs(refinement: &Refinement, byzantine: &[usize]) -> Result<Vec<NodeSpec>, NetError> {
    let n = refinement.process_count();
    let mut specs: Vec<NodeSpec> = (0..n)
        .map(|p| {
            Ok(NodeSpec {
                node: u16::try_from(p).map_err(|_| NetError::TooManyNodes(n))?,
                actions: refinement.actions_of(p).to_vec(),
                owned: refinement.vars_of(p).to_vec(),
                out_peers: Vec::new(),
                byzantine: byzantine.contains(&p),
            })
        })
        .collect::<Result<_, NetError>>()?;
    for spec in &mut specs {
        let mut peer_vars: Vec<(usize, Vec<VarId>)> = Vec::new();
        for &v in &spec.owned {
            for &q in refinement.remote_readers_of(v) {
                match peer_vars.iter_mut().find(|(peer, _)| *peer == q) {
                    Some((_, vars)) => vars.push(v),
                    None => peer_vars.push((q, vec![v])),
                }
            }
        }
        peer_vars.sort_by_key(|(peer, _)| *peer);
        spec.out_peers = peer_vars;
    }
    Ok(specs)
}

fn validate(
    program: &Program,
    refinement: &Refinement,
    config: &NetConfig,
) -> Result<(), NetError> {
    if !program.is_bounded() {
        return Err(NetError::Unbounded);
    }
    let n = refinement.process_count();
    if n > usize::from(u16::MAX) {
        return Err(NetError::TooManyNodes(n));
    }
    // Per-node bound: a report frame carries every variable the node
    // owns (12 bytes each, plus headers and counters). Restart frames
    // carry the *full* view but are chunked, so only the per-node owned
    // set needs to fit one frame.
    for p in 0..n {
        let owned = refinement.vars_of(p).len();
        if owned * 12 + 128 > MAX_PAYLOAD {
            return Err(NetError::TooManyVars(owned));
        }
    }
    for event in &config.events {
        match event {
            NetEvent::CrashRestart { node, .. } if *node >= n => {
                return Err(NetError::BadEvent(format!(
                    "crash-restart of node {node}, but only {n} nodes"
                )));
            }
            NetEvent::Partition { groups, .. } if groups.len() != n => {
                return Err(NetError::BadEvent(format!(
                    "partition lists {} groups for {n} nodes",
                    groups.len()
                )));
            }
            _ => {}
        }
    }
    for &b in &config.byzantine {
        if b >= n {
            return Err(NetError::BadEvent(format!(
                "byzantine node {b}, but only {n} nodes"
            )));
        }
    }
    Ok(())
}

/// Launch `program` as one node per process — multiplexed onto shard
/// workers over TCP loopback — drive it from `initial` until the goal
/// predicate stabilizes (and every scheduled event has played out), and
/// return the observability report.
///
/// # Errors
///
/// See [`NetError`].
pub fn run(
    program: &Program,
    initial: &State,
    goal: &Predicate,
    config: &NetConfig,
) -> Result<NetReport, NetError> {
    let debug_t0 = Instant::now();
    let refinement = Refinement::new(program)?;
    validate(program, &refinement, config)?;
    let specs = build_specs(&refinement, &config.byzantine)?;
    for &b in &config.byzantine {
        config.journal.emit_with(|| Event::Fault {
            kind: "byzantine".to_string(),
            detail: format!("node {b} (seed {})", config.byzantine_seed),
        });
    }
    if debug_enabled() {
        eprintln!("[net-debug] specs built at {:?}", debug_t0.elapsed());
    }
    let n = specs.len();
    let plan = ShardPlan::new(n, effective_shards(config.shards, n));
    let s_count = plan.shard_count();
    let mesh = MeshPlan::new(&specs, &plan);
    // Socket count is O(shards^2), far under default limits; raising the
    // soft fd cap is opportunistic headroom for user-chosen shard counts.
    let _ = polling::raise_nofile_limit();

    // Bind every listener before any worker dials anything.
    let mut shard_listeners = Vec::with_capacity(s_count);
    let mut shard_addrs = Vec::with_capacity(s_count);
    for _ in 0..s_count {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        shard_addrs.push(listener.local_addr()?);
        shard_listeners.push(listener);
    }
    let controller_listener = TcpListener::bind("127.0.0.1:0")?;
    let controller_addr = controller_listener.local_addr()?;

    let partition = PartitionMap::new();
    let timing = NodeTiming {
        tick: config.tick,
        steps_per_tick: config.steps_per_tick,
        cooldown_ticks: config.cooldown_ticks,
        heartbeat_every: config.heartbeat_every,
        report_every: config.report_every,
        startup_timeout: config.timeout,
        byzantine_seed: config.byzantine_seed,
    };
    let generations: Vec<AtomicU64> = (0..s_count).map(|_| AtomicU64::new(0)).collect();
    let env = WorkerEnv {
        program,
        specs: &specs,
        plan: &plan,
        mesh: &mesh,
        timing: &timing,
        faults: &config.faults,
        partition: &partition,
        initial,
        step_log: config.step_log.clone(),
        generations: &generations,
        sabotage: config.sabotage_worker,
    };

    let (ctrl_result, worker_panic) = std::thread::scope(|scope| {
        let handles: Vec<_> = shard_listeners
            .into_iter()
            .enumerate()
            .map(|(shard, listener)| {
                let env = &env;
                let shard_addrs = &shard_addrs;
                scope.spawn(move || {
                    // Worker I/O failures leave the shard silent; the
                    // controller times out and reports non-convergence.
                    // Panics are caught at join and become
                    // `ControlLoopFailed`.
                    run_worker(env, shard, listener, shard_addrs, controller_addr)
                })
            })
            .collect();
        let result = control_loop(
            program,
            initial,
            goal,
            config,
            &partition,
            controller_listener,
            &plan,
            &generations,
            n,
        );
        // The control loop has shut its sockets down (or errored out and
        // dropped them), so every worker sees EOF and exits; joining here
        // cannot hang and surfaces worker panics.
        let mut panic_msg: Option<String> = None;
        for handle in handles {
            if let Err(payload) = handle.join() {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(ToString::to_string))
                    .unwrap_or_else(|| "worker panicked without a message".to_string());
                panic_msg.get_or_insert(msg);
            }
        }
        (result, panic_msg)
    });
    if debug_enabled() {
        eprintln!("[net-debug] scope done at {:?}", debug_t0.elapsed());
    }
    match worker_panic {
        // A dead worker explains (and outranks) whatever secondary error
        // the controller hit while waiting on it.
        Some(msg) => Err(NetError::ControlLoopFailed(msg)),
        None => ctrl_result,
    }
}

/// One shard's control connection, with incremental decode and batched
/// writes.
struct CtrlConn {
    stream: TcpStream,
    inbuf: FrameBuffer,
    outbuf: Vec<u8>,
    outpos: usize,
    stalled: bool,
    eof: bool,
}

impl CtrlConn {
    fn new(stream: TcpStream) -> Self {
        CtrlConn {
            stream,
            inbuf: FrameBuffer::new(),
            outbuf: Vec::new(),
            outpos: 0,
            stalled: false,
            eof: false,
        }
    }

    fn has_pending_out(&self) -> bool {
        self.outpos > 0 || !self.outbuf.is_empty()
    }
}

/// Controller-side view of the cluster's telemetry.
struct Telemetry {
    assembled: State,
    node_counters: Vec<CounterSnapshot>,
    node_done: Vec<bool>,
    /// Generation carried by the last Pulse drained from each shard.
    seen_gen: Vec<u64>,
    /// When that Pulse arrived.
    last_pulse: Vec<Instant>,
    hellos: usize,
}

/// Poll every live control connection and feed whatever is readable.
fn poll_conns(conns: &mut [CtrlConn], timeout: Duration) -> io::Result<()> {
    let mut fds: Vec<PollFd> = Vec::with_capacity(conns.len());
    let mut idx: Vec<usize> = Vec::with_capacity(conns.len());
    for (i, c) in conns.iter().enumerate() {
        let mut interest = 0u16;
        if !c.eof {
            interest |= READABLE;
            if c.stalled {
                interest |= WRITABLE;
            }
        }
        if interest != 0 {
            fds.push(PollFd::new(raw_fd(&c.stream), interest));
            idx.push(i);
        }
    }
    if fds.is_empty() {
        std::thread::sleep(timeout.min(Duration::from_millis(5)));
        return Ok(());
    }
    polling::poll(&mut fds, Some(timeout))?;
    for (fd, &i) in fds.iter().zip(&idx) {
        let c = &mut conns[i];
        if fd.is_writable() {
            c.stalled = false;
        }
        if fd.is_readable() {
            match c.inbuf.feed(&mut c.stream) {
                Ok(FeedStatus::Eof) | Err(_) => c.eof = true,
                Ok(_) => {}
            }
        }
    }
    Ok(())
}

/// Decode and apply every frame buffered on the control connections.
fn drain_frames(
    conns: &mut [CtrlConn],
    telemetry: &mut Telemetry,
    program: &Program,
    journal: &Journal,
    n: usize,
) {
    for (shard, conn) in conns.iter_mut().enumerate() {
        while let Some(res) = conn.inbuf.pop() {
            let Ok(frame) = res else {
                // The control plane is not fault-injected; a decode error
                // here means a worker died mid-write. Drop the remains.
                continue;
            };
            match frame {
                Frame::Hello { node } if telemetry.hellos < n => {
                    telemetry.hellos += 1;
                    journal.emit_with(|| Event::Frame {
                        node: u64::from(node),
                        kind: "hello".to_string(),
                    });
                }
                Frame::Hello { .. } => {}
                Frame::Pulse { generation, .. } => {
                    telemetry.seen_gen[shard] = generation;
                    telemetry.last_pulse[shard] = Instant::now();
                }
                Frame::Report {
                    node,
                    last,
                    counters,
                    vars,
                    ..
                } => {
                    let node = usize::from(node);
                    if node < n {
                        telemetry.node_counters[node] = counters;
                        telemetry.node_done[node] |= last;
                        // Only final reports are journaled: at the default
                        // cadence the periodic ones arrive thousands of
                        // times per second.
                        if last {
                            journal.emit_with(|| Event::Frame {
                                node: node as u64,
                                kind: "report".to_string(),
                            });
                        }
                        for (var, value) in vars {
                            if (var as usize) < program.var_count() {
                                telemetry
                                    .assembled
                                    .set(VarId::from_index(var as usize), value);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// Queue a control frame for `node` on its shard's stream.
fn send_to_node(conns: &mut [CtrlConn], plan: &ShardPlan, node: usize, frame: Frame) {
    let conn = &mut conns[plan.shard_of[node]];
    if conn.eof {
        return;
    }
    let routed = Frame::Routed {
        to: node as u16,
        frame: Box::new(frame),
    };
    // Control frames are always well-formed and under the payload cap
    // (restarts are pre-chunked); an encode failure cannot happen.
    let _ = routed.encode_into(&mut conn.outbuf);
}

/// Flush every connection's batched output as far as the sockets allow.
fn flush_conns(conns: &mut [CtrlConn]) {
    for c in conns.iter_mut() {
        if c.eof || !c.has_pending_out() {
            continue;
        }
        match flush_buf(&mut c.stream, &mut c.outbuf, &mut c.outpos) {
            Ok(true) => c.stalled = false,
            Ok(false) => c.stalled = true,
            // A write failure means the worker died; reads on the same
            // socket are done too.
            Err(_) => c.eof = true,
        }
    }
}

/// Accept all shard control connections, run the event/detector loop,
/// and assemble the report.
#[allow(clippy::too_many_arguments)]
fn control_loop(
    program: &Program,
    initial: &State,
    goal: &Predicate,
    config: &NetConfig,
    partition: &PartitionMap,
    controller_listener: TcpListener,
    plan: &ShardPlan,
    generations: &[AtomicU64],
    n: usize,
) -> Result<NetReport, NetError> {
    let journal = &config.journal;
    let s_count = plan.shard_count();

    // Each shard worker dials in and greets with Pulse{shard, 0}; the
    // accept loop is deadlined so a worker that died during startup
    // cannot block the run forever (on bail-out, dropping the listener
    // and accepted streams gives every worker EOF, so they all unwind).
    controller_listener.set_nonblocking(true)?;
    let startup_deadline = Instant::now() + config.timeout;
    let mut slots: Vec<Option<CtrlConn>> = (0..s_count).map(|_| None).collect();
    let mut accepted = 0usize;
    while accepted < s_count {
        match controller_listener.accept() {
            Ok((mut stream, _)) => {
                stream.set_nodelay(true)?;
                stream.set_nonblocking(false)?;
                let remaining = startup_deadline
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(1));
                stream.set_read_timeout(Some(remaining))?;
                let shard = match read_frame(&mut stream)? {
                    Some(Ok(Frame::Pulse { shard, .. })) => usize::from(shard),
                    other => {
                        return Err(NetError::Io(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("expected shard greeting on control connection, got {other:?}"),
                        )))
                    }
                };
                if shard >= s_count || slots[shard].is_some() {
                    return Err(NetError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bogus shard greeting {shard}"),
                    )));
                }
                stream.set_read_timeout(None)?;
                stream.set_nonblocking(true)?;
                slots[shard] = Some(CtrlConn::new(stream));
                accepted += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() > startup_deadline {
                    return Err(NetError::Io(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "a shard worker never connected to the controller",
                    )));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    drop(controller_listener);
    let mut conns: Vec<CtrlConn> = slots
        .into_iter()
        .map(|c| c.expect("all accepted"))
        .collect();

    let mut telemetry = Telemetry {
        assembled: initial.clone(),
        node_counters: vec![CounterSnapshot::default(); n],
        node_done: vec![false; n],
        seen_gen: vec![0; s_count],
        last_pulse: vec![Instant::now(); s_count],
        hellos: 0,
    };

    // Startup barrier: every node announces itself once its shard's mesh
    // is fully connected; the convergence clock starts only then, so
    // episode latencies never include connection setup.
    while telemetry.hellos < n {
        if Instant::now() > startup_deadline {
            return Err(NetError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "a node never announced itself to the controller",
            )));
        }
        poll_conns(&mut conns, Duration::from_millis(1))?;
        drain_frames(&mut conns, &mut telemetry, program, journal, n);
        if conns.iter().all(|c| c.eof) {
            return Err(NetError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "every shard worker hung up before the run started",
            )));
        }
    }

    let start = Instant::now();
    if debug_enabled() {
        eprintln!("[net-debug] hello barrier done");
    }
    let mut detector = Detector::new(config.detector.clone(), "initial convergence");
    journal.emit_with(|| Event::EpisodeStarted {
        label: "initial convergence".to_string(),
    });
    let mut queue: VecDeque<NetEvent> = config.events.iter().cloned().collect();
    let mut pending: Vec<(Duration, PendingAction)> = Vec::new();
    // The controller's event stream must not share seed material with the
    // per-node link streams derived from the same config seed.
    let mut rng = StdRng::seed_from_u64(rand::split_seed(config.seed, 0xD15E_A5ED));
    let mut timed_out = false;
    // A shard is "fresh" when the controller has drained a Pulse for its
    // latest generation, or when one arrived so recently that the lag is
    // ordinary pipeline skew rather than a stall.
    let pulse_window = (config.detector.stable_for / 4).max(Duration::from_millis(5));

    loop {
        poll_conns(&mut conns, Duration::from_micros(500))?;
        drain_frames(&mut conns, &mut telemetry, program, journal, n);
        let now = start.elapsed();

        // Fire due follow-ups (restarts, heals) unconditionally.
        let mut i = 0;
        while i < pending.len() {
            if pending[i].0 <= now {
                let (_, action) = pending.swap_remove(i);
                match action {
                    PendingAction::Restart { node } => {
                        let arbitrary: Vec<(u32, i64)> = program
                            .var_ids()
                            .map(|v| (v.index() as u32, program.var(v).domain().sample(&mut rng)))
                            .collect();
                        if arbitrary.is_empty() {
                            send_to_node(&mut conns, plan, node, Frame::Restart { vars: vec![] });
                        }
                        for chunk in arbitrary.chunks(RESTART_CHUNK) {
                            send_to_node(
                                &mut conns,
                                plan,
                                node,
                                Frame::Restart {
                                    vars: chunk.to_vec(),
                                },
                            );
                        }
                        detector.start_episode(now, format!("crash-restart node {node}"));
                        journal.emit_with(|| Event::Fault {
                            kind: "restart".to_string(),
                            detail: format!("node {node} with arbitrary state"),
                        });
                        journal.emit_with(|| Event::EpisodeStarted {
                            label: format!("crash-restart node {node}"),
                        });
                    }
                    PendingAction::Heal => {
                        partition.heal();
                        detector.start_episode(now, "partition heal");
                        journal.emit_with(|| Event::Fault {
                            kind: "heal".to_string(),
                            detail: "partition healed".to_string(),
                        });
                        journal.emit_with(|| Event::EpisodeStarted {
                            label: "partition heal".to_string(),
                        });
                    }
                }
            } else {
                i += 1;
            }
        }

        // Fire the next scheduled event once the system is converged.
        if pending.is_empty() && detector.idle() {
            let due = matches!(
                queue.front(),
                Some(NetEvent::CrashRestart { at_least, .. } | NetEvent::Partition { at_least, .. })
                    if *at_least <= now
            );
            if due {
                match queue.pop_front().expect("checked front") {
                    NetEvent::CrashRestart { node, down, .. } => {
                        send_to_node(&mut conns, plan, node, Frame::Crash);
                        journal.emit_with(|| Event::Fault {
                            kind: "crash".to_string(),
                            detail: format!("node {node} down for {down:?}"),
                        });
                        pending.push((now + down, PendingAction::Restart { node }));
                    }
                    NetEvent::Partition {
                        groups, heal_after, ..
                    } => {
                        journal.emit_with(|| Event::Fault {
                            kind: "partition".to_string(),
                            detail: format!("groups {groups:?}"),
                        });
                        partition.set(groups);
                        pending.push((now + heal_after, PendingAction::Heal));
                    }
                }
            }
        }

        // Freshness-gated sampling: skip the observation when some shard
        // has state the controller provably has not assembled yet — but
        // never skip more than the configured budget in a row, because a
        // protocol that is always active (closure actions) keeps its
        // generation perpetually hot.
        let fresh = (0..s_count).all(|s| {
            telemetry.seen_gen[s] == generations[s].load(Ordering::Acquire)
                || telemetry.last_pulse[s].elapsed() <= pulse_window
        });
        if (fresh || detector.note_stale())
            && detector.observe(now, goal.holds(&telemetry.assembled))
        {
            if let Some(episode) = detector.episodes().last() {
                journal.emit_with(|| Event::EpisodeConverged {
                    label: episode.label.clone(),
                    micros: episode.latency().unwrap_or_default().as_micros() as u64,
                });
            }
        }

        flush_conns(&mut conns);

        if queue.is_empty() && pending.is_empty() && detector.idle() {
            break;
        }
        if conns.iter().all(|c| c.eof) {
            break;
        }
        if now > config.timeout {
            timed_out = true;
            break;
        }
    }

    // Shut everything down and collect final reports: each node gets a
    // routed Shutdown; workers quiesce (in-flight data still counts),
    // emit final reports, and hang up.
    for node in 0..n {
        send_to_node(&mut conns, plan, node, Frame::Shutdown);
    }
    let grace = Instant::now();
    while !telemetry.node_done.iter().all(|&d| d) && grace.elapsed() < Duration::from_secs(5) {
        flush_conns(&mut conns);
        if conns.iter().all(|c| c.eof) && !conns.iter().any(CtrlConn::has_pending_out) {
            break;
        }
        poll_conns(&mut conns, Duration::from_millis(5))?;
        drain_frames(&mut conns, &mut telemetry, program, journal, n);
    }
    if debug_enabled() {
        let done = telemetry.node_done.iter().filter(|&&d| d).count();
        eprintln!(
            "[net-debug] grace ended after {:?}: {done}/{n} finals, eof={:?}",
            grace.elapsed(),
            conns.iter().map(|c| c.eof).collect::<Vec<_>>()
        );
    }
    for c in &conns {
        let _ = c.stream.shutdown(std::net::Shutdown::Both);
    }
    drop(conns);

    let converged = detector.all_converged() && !timed_out;
    let report = NetReport {
        converged,
        timed_out,
        episodes: detector.episodes().to_vec(),
        wall: start.elapsed(),
        goal: goal.name().to_owned(),
        final_state: telemetry.assembled,
        nodes: telemetry
            .node_counters
            .into_iter()
            .enumerate()
            .map(|(node, counters)| NodeReport { node, counters })
            .collect(),
    };
    for node in &report.nodes {
        node.emit(journal);
    }
    journal.flush();
    if debug_enabled() {
        eprintln!(
            "[net-debug] control_loop returns at {:?} after start",
            start.elapsed()
        );
    }
    Ok(report)
}
