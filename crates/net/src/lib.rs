//! `nonmask-net`: the socket refinement — a real distributed runtime for
//! the paper's nonmasking fault-tolerant designs.
//!
//! [`nonmask-sim`](../nonmask_sim/index.html) does the paper's §7.1
//! message-passing exercise in-process; this crate does it over actual
//! sockets. [`run`] launches **one node per protocol process**, each an
//! OS thread that owns its process's variables and communicates
//! exclusively through TCP loopback connections:
//!
//! - [`wire`] — a length-prefixed, CRC-32-checked binary codec for
//!   variable-update, heartbeat, report, and control frames; truncated,
//!   oversized, and bit-flipped frames are rejected, never applied.
//! - [`fault`] — a send-side fault injector per link: seeded
//!   deterministic drop, duplicate, delay/reorder, and bit-corruption,
//!   plus dynamic partition/heal of node groups.
//! - nodes execute their guarded commands on a view of owned variables
//!   plus possibly-stale caches, broadcast writes and periodic
//!   heartbeats to remote readers, and can be crash-restarted into an
//!   *arbitrary* state (the nonmasking scenario) by the controller.
//! - [`detect`] — a runtime stabilization detector over the
//!   asynchronously assembled god's-eye state, with wall-clock
//!   convergence-latency measurement per disturbance episode.
//! - [`NetReport`] — per-node counters (frames sent / received /
//!   dropped / corrupted / rejected, actions fired) and episode
//!   latencies, renderable as text or JSON.
//!
//! The topology (who owns what, who caches what) is extracted with
//! [`nonmask_sim::Refinement`], so anything refinable in the simulator
//! runs here unchanged. The `nonmask-run` binary drives the token-ring
//! and diffusing-computation protocols from the command line with
//! configurable fault rates.
//!
//! # Example
//!
//! ```
//! use nonmask_net::{run, NetConfig};
//! use nonmask_protocols::token_ring::TokenRing;
//! use std::time::Duration;
//!
//! let ring = TokenRing::new(3, 3);
//! let corrupt = ring.program().state_from([2, 0, 1]).unwrap();
//! let config = NetConfig {
//!     timeout: Duration::from_secs(20),
//!     ..NetConfig::default()
//! };
//! let report = run(ring.program(), &corrupt, &ring.invariant(), &config).unwrap();
//! assert!(report.converged);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod detect;
pub mod fault;
mod node;
mod reactor;
pub mod runtime;
pub mod wire;

pub use counters::CounterSnapshot;
pub use detect::{Detector, DetectorConfig, Episode};
pub use fault::{FaultConfig, PartitionMap};
// Re-exported so `NetConfig::journal` can be populated without a direct
// `nonmask-obs` dependency.
pub use nonmask_obs::{CounterSet, Journal};
pub use runtime::{run, NetConfig, NetError, NetEvent, NetReport, NodeReport};
pub use wire::{Frame, WireError};
