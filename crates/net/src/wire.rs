//! The length-prefixed wire codec.
//!
//! Every frame travels as a 4-byte big-endian payload length followed by
//! the payload; the payload is a 1-byte tag, the tag-specific body in
//! fixed-width little-endian fields, and a trailing CRC-32 (IEEE) of the
//! tag and body. CRC-32 detects every single-bit error and every burst of
//! up to 32 bits, so the fault injector's bit flips are *always* caught —
//! a corrupted frame is rejected and counted, never silently applied.
//!
//! Stream framing survives payload corruption because the injector (and
//! any single-frame fault) leaves the length prefix intact; only an
//! [`WireError::Oversized`] length is unrecoverable mid-stream, and
//! readers treat it as fatal for the connection.
//!
//! Two frames exist purely for the reactor's shard-multiplexed transport:
//! [`Frame::Routed`] wraps any non-routed frame with the index of the
//! destination node so many logical links can share one shard-pair TCP
//! stream, and [`Frame::Pulse`] carries a shard's freshness generation to
//! the controller so the global detector never declares convergence from a
//! stale assembly.

use std::io::{self, Read, Write};

use crate::counters::CounterSnapshot;

/// Hard ceiling on payload size (tag + body + checksum), in bytes.
///
/// Large enough for a [`Frame::Report`] over thousands of variables,
/// small enough that a corrupted-on-the-wire length cannot make a reader
/// allocate gigabytes.
pub const MAX_PAYLOAD: usize = 1 << 16;

/// Bytes of checksum at the end of every payload.
const CRC_LEN: usize = 4;

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the advertised structure was complete.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD`] (fatal for a stream: the
    /// frame boundary itself is untrustworthy).
    Oversized {
        /// The advertised payload length.
        len: usize,
    },
    /// Unknown frame tag.
    BadTag(u8),
    /// The CRC-32 over tag + body did not match (bit corruption).
    BadChecksum {
        /// Checksum carried by the frame.
        found: u32,
        /// Checksum recomputed over the received bytes.
        computed: u32,
    },
    /// The payload is longer than the decoded structure (framing slip).
    Trailing {
        /// Unconsumed byte count.
        extra: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated frame: needed {needed} more bytes, have {have}"
                )
            }
            WireError::Oversized { len } => {
                write!(f, "oversized frame: {len} bytes exceeds {MAX_PAYLOAD}")
            }
            WireError::BadTag(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            WireError::BadChecksum { found, computed } => {
                write!(
                    f,
                    "checksum mismatch: frame says {found:#010x}, computed {computed:#010x}"
                )
            }
            WireError::Trailing { extra } => write!(f, "{extra} trailing bytes after frame body"),
        }
    }
}

impl std::error::Error for WireError {}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), bitwise.
///
/// Frames are small and sends are paced, so the table-free form is plenty
/// fast and keeps the codec dependency- and allocation-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A protocol frame.
///
/// `Update`/`Heartbeat` flow node → node over the fault-injected data
/// plane; `Report` flows node → controller and `Crash`/`Restart`/
/// `Shutdown` controller → node over the reliable instrumentation plane;
/// `Hello` opens every connection. On shard-multiplexed streams every
/// per-node frame rides inside a [`Frame::Routed`] envelope, and
/// [`Frame::Pulse`] carries shard-level freshness to the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Connection opener: identifies the dialing node.
    Hello {
        /// Index of the dialing node.
        node: u16,
    },
    /// One authoritative variable changed at `node`.
    Update {
        /// Writing node.
        node: u16,
        /// Per-link send sequence number (diagnostic; receivers tolerate
        /// loss, duplication, and reordering without it).
        seq: u64,
        /// Variable index (`VarId::index()`).
        var: u32,
        /// New value.
        value: i64,
    },
    /// Periodic re-broadcast of every variable `node` owns, refreshing
    /// caches that missed dropped updates.
    Heartbeat {
        /// Broadcasting node.
        node: u16,
        /// Per-link send sequence number.
        seq: u64,
        /// `(variable index, value)` pairs.
        vars: Vec<(u32, i64)>,
    },
    /// Node → controller observability report.
    Report {
        /// Reporting node.
        node: u16,
        /// Report sequence number.
        seq: u64,
        /// True on the final report sent while shutting down.
        last: bool,
        /// The node's counters at the time of the report.
        counters: CounterSnapshot,
        /// Authoritative `(variable index, value)` pairs for owned vars.
        vars: Vec<(u32, i64)>,
    },
    /// Controller → node: crash now (drop state, go silent).
    Crash,
    /// Controller → node: restart with this (arbitrary) full view.
    ///
    /// At large variable counts the controller splits the view across
    /// several `Restart` frames (each under [`MAX_PAYLOAD`]); the node
    /// applies every chunk and leaves the crashed state on the first.
    Restart {
        /// `(variable index, value)` pairs covering the node's whole view
        /// — owned variables *and* caches come back arbitrary.
        vars: Vec<(u32, i64)>,
    },
    /// Controller → node: send a final report and exit.
    Shutdown,
    /// Shard-stream envelope: deliver `frame` to node `to`.
    ///
    /// The outer CRC covers the envelope and the inner frame together (the
    /// inner frame is carried without its own CRC), so a single bit flip
    /// anywhere — including in `to` — rejects the whole frame. Nesting a
    /// `Routed` inside a `Routed` is a codec error.
    Routed {
        /// Destination node index.
        to: u16,
        /// The wrapped frame (never itself `Routed`).
        frame: Box<Frame>,
    },
    /// Shard → controller freshness beacon: every state change the shard
    /// has made up to `generation` has been flushed to the controller
    /// stream ahead of this frame.
    Pulse {
        /// Reporting shard index.
        shard: u16,
        /// The shard's change generation at flush time.
        generation: u64,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_UPDATE: u8 = 2;
const TAG_HEARTBEAT: u8 = 3;
const TAG_REPORT: u8 = 4;
const TAG_CRASH: u8 = 5;
const TAG_RESTART: u8 = 6;
const TAG_SHUTDOWN: u8 = 7;
const TAG_ROUTED: u8 = 8;
const TAG_PULSE: u8 = 9;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_vars(out: &mut Vec<u8>, vars: &[(u32, i64)]) -> Result<(), WireError> {
    let count = u16::try_from(vars.len()).map_err(|_| WireError::Oversized {
        len: vars.len() * 12,
    })?;
    put_u16(out, count);
    for &(var, value) in vars {
        put_u32(out, var);
        put_i64(out, value);
    }
    Ok(())
}

/// A cursor over a received payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let have = self.bytes.len() - self.pos;
        if have < n {
            return Err(WireError::Truncated { needed: n, have });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn vars(&mut self) -> Result<Vec<(u32, i64)>, WireError> {
        let count = self.u16()? as usize;
        let mut vars = Vec::with_capacity(count.min(MAX_PAYLOAD / 12));
        for _ in 0..count {
            let var = self.u32()?;
            let value = self.i64()?;
            vars.push((var, value));
        }
        Ok(vars)
    }
}

impl Frame {
    /// Append tag + body (no CRC, no length prefix) to `payload`.
    ///
    /// `allow_routed` is false when encoding the inner frame of a
    /// [`Frame::Routed`] envelope: nesting envelopes is a codec error
    /// (it would also allow unbounded decode recursion).
    fn encode_body(&self, payload: &mut Vec<u8>, allow_routed: bool) -> Result<(), WireError> {
        match self {
            Frame::Hello { node } => {
                payload.push(TAG_HELLO);
                put_u16(payload, *node);
            }
            Frame::Update {
                node,
                seq,
                var,
                value,
            } => {
                payload.push(TAG_UPDATE);
                put_u16(payload, *node);
                put_u64(payload, *seq);
                put_u32(payload, *var);
                put_i64(payload, *value);
            }
            Frame::Heartbeat { node, seq, vars } => {
                payload.push(TAG_HEARTBEAT);
                put_u16(payload, *node);
                put_u64(payload, *seq);
                put_vars(payload, vars)?;
            }
            Frame::Report {
                node,
                seq,
                last,
                counters,
                vars,
            } => {
                payload.push(TAG_REPORT);
                put_u16(payload, *node);
                put_u64(payload, *seq);
                payload.push(u8::from(*last));
                for word in counters.to_words() {
                    put_u64(payload, word);
                }
                put_vars(payload, vars)?;
            }
            Frame::Crash => payload.push(TAG_CRASH),
            Frame::Restart { vars } => {
                payload.push(TAG_RESTART);
                put_vars(payload, vars)?;
            }
            Frame::Shutdown => payload.push(TAG_SHUTDOWN),
            Frame::Routed { to, frame } => {
                if !allow_routed {
                    return Err(WireError::BadTag(TAG_ROUTED));
                }
                payload.push(TAG_ROUTED);
                put_u16(payload, *to);
                frame.encode_body(payload, false)?;
            }
            Frame::Pulse { shard, generation } => {
                payload.push(TAG_PULSE);
                put_u16(payload, *shard);
                put_u64(payload, *generation);
            }
        }
        Ok(())
    }

    /// Decode one tag + body from the cursor (CRC already verified).
    fn decode_body(c: &mut Cursor<'_>, allow_routed: bool) -> Result<Frame, WireError> {
        let frame = match c.u8()? {
            TAG_HELLO => Frame::Hello { node: c.u16()? },
            TAG_UPDATE => Frame::Update {
                node: c.u16()?,
                seq: c.u64()?,
                var: c.u32()?,
                value: c.i64()?,
            },
            TAG_HEARTBEAT => Frame::Heartbeat {
                node: c.u16()?,
                seq: c.u64()?,
                vars: c.vars()?,
            },
            TAG_REPORT => {
                let node = c.u16()?;
                let seq = c.u64()?;
                let last = c.u8()? != 0;
                let mut words = [0u64; CounterSnapshot::WORDS];
                for word in &mut words {
                    *word = c.u64()?;
                }
                Frame::Report {
                    node,
                    seq,
                    last,
                    counters: CounterSnapshot::from_words(words),
                    vars: c.vars()?,
                }
            }
            TAG_CRASH => Frame::Crash,
            TAG_RESTART => Frame::Restart { vars: c.vars()? },
            TAG_SHUTDOWN => Frame::Shutdown,
            TAG_ROUTED if allow_routed => Frame::Routed {
                to: c.u16()?,
                frame: Box::new(Frame::decode_body(c, false)?),
            },
            TAG_PULSE => Frame::Pulse {
                shard: c.u16()?,
                generation: c.u64()?,
            },
            tag => return Err(WireError::BadTag(tag)),
        };
        Ok(frame)
    }

    /// Encode the full wire form: length prefix, tag, body, CRC-32.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`] if the frame does not fit [`MAX_PAYLOAD`]
    /// (a variable list too long for one frame);
    /// [`WireError::BadTag`] for a `Routed` nested inside a `Routed`.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut wire = Vec::with_capacity(36);
        self.encode_into(&mut wire)?;
        Ok(wire)
    }

    /// Append the full wire form (length prefix, tag, body, CRC-32) to
    /// `out`, leaving `out` untouched on error. This is the batching form:
    /// the reactor accumulates many frames into one buffer and flushes
    /// them with a single `write` per readiness cycle.
    ///
    /// # Errors
    ///
    /// As for [`Frame::encode`].
    pub fn encode_into(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        let start = out.len();
        out.extend_from_slice(&[0u8; 4]); // length placeholder
        if let Err(e) = self.encode_body(out, true) {
            out.truncate(start);
            return Err(e);
        }
        let crc = crc32(&out[start + 4..]);
        out.extend_from_slice(&crc.to_le_bytes());
        let payload_len = out.len() - start - 4;
        if payload_len > MAX_PAYLOAD {
            out.truncate(start);
            return Err(WireError::Oversized { len: payload_len });
        }
        let len_bytes = u32::try_from(payload_len).expect("bounded").to_be_bytes();
        out[start..start + 4].copy_from_slice(&len_bytes);
        Ok(())
    }

    /// Decode a payload (the bytes after the length prefix).
    ///
    /// # Errors
    ///
    /// See [`WireError`]; notably [`WireError::BadChecksum`] for any
    /// single-bit corruption anywhere in the payload.
    pub fn decode(payload: &[u8]) -> Result<Frame, WireError> {
        if payload.len() < 1 + CRC_LEN {
            return Err(WireError::Truncated {
                needed: 1 + CRC_LEN,
                have: payload.len(),
            });
        }
        if payload.len() > MAX_PAYLOAD {
            return Err(WireError::Oversized { len: payload.len() });
        }
        let (body, crc_bytes) = payload.split_at(payload.len() - CRC_LEN);
        let found = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        let computed = crc32(body);
        if found != computed {
            return Err(WireError::BadChecksum { found, computed });
        }
        let mut c = Cursor {
            bytes: body,
            pos: 0,
        };
        let frame = Frame::decode_body(&mut c, true)?;
        if c.pos != body.len() {
            return Err(WireError::Trailing {
                extra: body.len() - c.pos,
            });
        }
        Ok(frame)
    }
}

/// Write one frame to `w` (length prefix included).
///
/// # Errors
///
/// I/O errors from the writer; an unencodable frame surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let wire = frame
        .encode()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    w.write_all(&wire)
}

/// Fill `buf` completely, distinguishing a clean EOF at offset 0 from an
/// EOF that lands mid-read. Returns `Ok(false)` for the clean case.
fn read_full(r: &mut impl Read, buf: &mut [u8], mid_frame: bool) -> io::Result<Option<bool>> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && !mid_frame {
                    return Ok(Some(false)); // clean EOF at a frame boundary
                }
                return Ok(None); // EOF mid-frame
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                if filled == 0 && !mid_frame {
                    return Ok(Some(false));
                }
                return Ok(None);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Some(true))
}

/// Read one frame from `r`.
///
/// Returns `Ok(None)` only on a *cleanly* closed connection — an EOF that
/// lands exactly on a frame boundary. An EOF mid-frame (inside the length
/// prefix or inside the payload) is a protocol violation and surfaces as
/// `Ok(Some(Err(WireError::Truncated { .. })))`, never a silent `None`:
/// a peer that dies mid-write must be distinguishable from one that shut
/// down in an orderly way. [`WireError::Oversized`] is fatal for the
/// stream (the caller must stop reading; the boundary is lost); checksum/
/// tag errors are per-frame and the stream remains framed.
///
/// # Errors
///
/// Propagates I/O errors other than EOF.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Result<Frame, WireError>>> {
    let mut len_bytes = [0u8; 4];
    match read_full(r, &mut len_bytes, false)? {
        Some(true) => {}
        Some(false) => return Ok(None),
        None => {
            return Ok(Some(Err(WireError::Truncated {
                needed: len_bytes.len(),
                have: 0,
            })))
        }
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_PAYLOAD {
        return Ok(Some(Err(WireError::Oversized { len })));
    }
    let mut payload = vec![0u8; len];
    match read_full(r, &mut payload, true)? {
        Some(true) => {}
        Some(false) | None => {
            return Ok(Some(Err(WireError::Truncated {
                needed: len,
                have: 0,
            })))
        }
    }
    Ok(Some(Frame::decode(&payload)))
}

/// What a [`FrameBuffer::feed`] observed about the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedStatus {
    /// More bytes may arrive.
    Open,
    /// The reader reported `WouldBlock`: drained for now.
    Drained,
    /// The peer closed the stream (EOF observed).
    Eof,
}

/// Incremental, nonblocking frame decoder for the reactor.
///
/// Bytes are appended in whatever chunks the socket yields; complete
/// frames are popped in order. Frame boundaries, CRC checking, and the
/// EOF-mid-frame rule match [`read_frame`] exactly: after the peer closes,
/// leftover bytes that do not form a whole frame surface as one
/// [`WireError::Truncated`] decode error.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    pos: usize,
    /// Sticky fatal error: an oversized length prefix destroys framing.
    dead: bool,
    /// EOF seen; at most one trailing Truncated error remains.
    eof: bool,
    eof_error_taken: bool,
}

impl FrameBuffer {
    /// A fresh, empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append raw stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Pull everything currently readable from a nonblocking reader.
    ///
    /// Returns how the read ended: drained (`WouldBlock`), EOF, or still
    /// open (only when `scratch` reads hit an `Interrupted` boundary).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than `WouldBlock`/`Interrupted`/EOF.
    pub fn feed(&mut self, r: &mut impl Read) -> io::Result<FeedStatus> {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            match r.read(&mut scratch) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(FeedStatus::Eof);
                }
                Ok(n) => self.extend(&scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(FeedStatus::Drained),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Mark the stream closed without reading (e.g. poll reported hangup
    /// and a subsequent read returned 0 elsewhere).
    pub fn mark_eof(&mut self) {
        self.eof = true;
    }

    /// True once a fatal (stream-destroying) error has been returned.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Unconsumed byte count (diagnostic).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Pop the next complete frame, if any.
    ///
    /// `None` means "no complete frame buffered" — either more bytes are
    /// needed, or the stream ended cleanly. After EOF, a partial trailing
    /// frame yields exactly one `Some(Err(Truncated))`. An `Oversized`
    /// length prefix yields `Some(Err(Oversized))` once and kills the
    /// buffer (subsequent pops return `None`).
    pub fn pop(&mut self) -> Option<Result<Frame, WireError>> {
        if self.dead {
            return None;
        }
        let avail = self.buf.len() - self.pos;
        if avail >= 4 {
            let len_bytes: [u8; 4] = self.buf[self.pos..self.pos + 4]
                .try_into()
                .expect("4 bytes");
            let len = u32::from_be_bytes(len_bytes) as usize;
            if len > MAX_PAYLOAD {
                self.dead = true;
                return Some(Err(WireError::Oversized { len }));
            }
            if avail >= 4 + len {
                let payload = &self.buf[self.pos + 4..self.pos + 4 + len];
                let frame = Frame::decode(payload);
                self.pos += 4 + len;
                return Some(frame);
            }
        }
        if self.eof && avail > 0 && !self.eof_error_taken {
            // Peer died mid-frame: same rule as `read_frame`.
            self.eof_error_taken = true;
            return Some(Err(WireError::Truncated {
                needed: if avail >= 4 {
                    u32::from_be_bytes(
                        self.buf[self.pos..self.pos + 4]
                            .try_into()
                            .expect("4 bytes"),
                    ) as usize
                } else {
                    4
                },
                have: avail.saturating_sub(4),
            }));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { node: 3 },
            Frame::Update {
                node: 1,
                seq: 42,
                var: 7,
                value: -5,
            },
            Frame::Heartbeat {
                node: 0,
                seq: 9,
                vars: vec![(0, 1), (4, -9)],
            },
            Frame::Report {
                node: 2,
                seq: 100,
                last: true,
                counters: CounterSnapshot {
                    sent: 1,
                    received: 2,
                    dropped: 3,
                    corrupted: 4,
                    duplicated: 5,
                    delayed: 6,
                    rejected: 7,
                    steps: 8,
                    convergence_steps: 9,
                    heartbeats: 10,
                    reports: 11,
                    crashes: 12,
                },
                vars: vec![(2, 2)],
            },
            Frame::Crash,
            Frame::Restart {
                vars: vec![(0, 3), (1, 0), (2, i64::MIN)],
            },
            Frame::Shutdown,
            Frame::Routed {
                to: 512,
                frame: Box::new(Frame::Update {
                    node: 11,
                    seq: 3,
                    var: 11,
                    value: 8,
                }),
            },
            Frame::Routed {
                to: 0,
                frame: Box::new(Frame::Shutdown),
            },
            Frame::Pulse {
                shard: 7,
                generation: u64::MAX - 1,
            },
        ]
    }

    #[test]
    fn roundtrips() {
        for frame in sample_frames() {
            let wire = frame.encode().unwrap();
            let len = u32::from_be_bytes(wire[..4].try_into().unwrap()) as usize;
            assert_eq!(len, wire.len() - 4);
            assert_eq!(Frame::decode(&wire[4..]).unwrap(), frame);
        }
    }

    #[test]
    fn encode_into_matches_encode_and_batches() {
        let frames = sample_frames();
        let mut batched = Vec::new();
        let mut concat = Vec::new();
        for f in &frames {
            f.encode_into(&mut batched).unwrap();
            concat.extend_from_slice(&f.encode().unwrap());
        }
        assert_eq!(batched, concat);
    }

    #[test]
    fn nested_routed_is_rejected_on_encode() {
        let frame = Frame::Routed {
            to: 1,
            frame: Box::new(Frame::Routed {
                to: 2,
                frame: Box::new(Frame::Crash),
            }),
        };
        assert!(matches!(frame.encode(), Err(WireError::BadTag(8))));
        // And a hand-built nested payload is rejected on decode.
        let mut body = vec![8u8];
        body.extend_from_slice(&1u16.to_le_bytes());
        body.push(8u8);
        body.extend_from_slice(&2u16.to_le_bytes());
        body.push(5u8); // Crash
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(Frame::decode(&body), Err(WireError::BadTag(8))));
    }

    #[test]
    fn routed_bit_flips_reject_whole_envelope() {
        let frame = Frame::Routed {
            to: 9,
            frame: Box::new(Frame::Heartbeat {
                node: 4,
                seq: 77,
                vars: vec![(1, 5)],
            }),
        };
        let wire = frame.encode().unwrap();
        let payload = &wire[4..];
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut bad = payload.to_vec();
                bad[byte] ^= 1 << bit;
                assert!(
                    Frame::decode(&bad).is_err(),
                    "flip of byte {byte} bit {bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn stream_roundtrips() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(read_frame(&mut r).unwrap().unwrap().unwrap(), *f);
        }
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let frame = Frame::Update {
            node: 1,
            seq: 7,
            var: 3,
            value: 11,
        };
        let wire = frame.encode().unwrap();
        let payload = &wire[4..];
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut bad = payload.to_vec();
                bad[byte] ^= 1 << bit;
                assert!(
                    Frame::decode(&bad).is_err(),
                    "flip of byte {byte} bit {bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let frame = Frame::Heartbeat {
            node: 1,
            seq: 2,
            vars: vec![(0, 1), (1, 2), (2, 3)],
        };
        let wire = frame.encode().unwrap();
        let payload = &wire[4..];
        for cut in 0..payload.len() {
            assert!(
                Frame::decode(&payload[..cut]).is_err(),
                "truncation to {cut} bytes slipped through"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_fatal_not_allocated() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let mut r = &wire[..];
        match read_frame(&mut r).unwrap() {
            Some(Err(WireError::Oversized { len })) => assert_eq!(len, u32::MAX as usize),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let frame = Frame::Crash;
        let mut wire = frame.encode().unwrap();
        // Rebuild payload with an extra byte, fixing the checksum so only
        // the trailing check can object.
        let mut body = wire[4..wire.len() - CRC_LEN].to_vec();
        body.push(0xAB);
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        wire = body;
        assert!(matches!(
            Frame::decode(&wire),
            Err(WireError::Trailing { extra: 1 })
        ));
    }

    #[test]
    fn too_many_vars_is_oversized() {
        let frame = Frame::Restart {
            vars: (0..70_000).map(|i| (i as u32, 0i64)).collect(),
        };
        assert!(matches!(frame.encode(), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn crc_reference_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    // ---- satellite: EOF-mid-frame must be a clean framing error ----

    #[test]
    fn eof_inside_payload_is_truncated_error_not_silent_none() {
        let frame = Frame::Heartbeat {
            node: 1,
            seq: 2,
            vars: vec![(0, 1), (1, 2)],
        };
        let wire = frame.encode().unwrap();
        // Cut the stream after the length prefix + part of the payload.
        for cut in 5..wire.len() {
            let mut r = &wire[..cut];
            match read_frame(&mut r).unwrap() {
                Some(Err(WireError::Truncated { .. })) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn eof_inside_length_prefix_is_truncated_error() {
        let frame = Frame::Crash;
        let wire = frame.encode().unwrap();
        for cut in 1..4 {
            let mut r = &wire[..cut];
            match read_frame(&mut r).unwrap() {
                Some(Err(WireError::Truncated { .. })) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
        // Zero bytes is a *clean* close, not an error.
        let mut r: &[u8] = &[];
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn eof_between_frames_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Crash).unwrap();
        let mut r = &buf[..];
        assert!(read_frame(&mut r).unwrap().unwrap().is_ok());
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    // ---- FrameBuffer: the nonblocking decoder obeys the same rules ----

    #[test]
    fn frame_buffer_decodes_across_arbitrary_chunk_boundaries() {
        let frames = sample_frames();
        let mut wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut wire).unwrap();
        }
        for chunk in [1usize, 2, 3, 7, 16, 64, wire.len()] {
            let mut fb = FrameBuffer::new();
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                fb.extend(piece);
                while let Some(f) = fb.pop() {
                    got.push(f.unwrap());
                }
            }
            assert_eq!(got, frames, "chunk size {chunk}");
            assert_eq!(fb.pending_bytes(), 0);
        }
    }

    #[test]
    fn frame_buffer_eof_mid_frame_yields_one_truncated_error() {
        let wire = Frame::Heartbeat {
            node: 1,
            seq: 2,
            vars: vec![(0, 1), (1, 2)],
        }
        .encode()
        .unwrap();
        let mut fb = FrameBuffer::new();
        fb.extend(&wire[..wire.len() - 3]);
        assert!(fb.pop().is_none(), "incomplete frame: wait for more");
        fb.mark_eof();
        match fb.pop() {
            Some(Err(WireError::Truncated { .. })) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
        assert!(fb.pop().is_none(), "error reported exactly once");
    }

    #[test]
    fn frame_buffer_eof_at_boundary_is_clean() {
        let wire = Frame::Crash.encode().unwrap();
        let mut fb = FrameBuffer::new();
        fb.extend(&wire);
        assert!(fb.pop().unwrap().is_ok());
        fb.mark_eof();
        assert!(fb.pop().is_none());
    }

    #[test]
    fn frame_buffer_oversized_is_sticky_fatal() {
        let mut fb = FrameBuffer::new();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        fb.extend(&bytes);
        assert!(matches!(fb.pop(), Some(Err(WireError::Oversized { .. }))));
        assert!(fb.is_dead());
        assert!(fb.pop().is_none());
        // Even appending a perfectly valid frame cannot revive it: the
        // stream boundary is untrustworthy.
        fb.extend(&Frame::Crash.encode().unwrap());
        assert!(fb.pop().is_none());
    }

    #[test]
    fn frame_buffer_feed_reads_nonblocking_reader() {
        struct Chunked {
            data: Vec<u8>,
            pos: usize,
            would_block_at: usize,
        }
        impl Read for Chunked {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.pos == self.would_block_at && self.pos < self.data.len() {
                    self.would_block_at = usize::MAX;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "later"));
                }
                if self.pos >= self.data.len() {
                    return Ok(0);
                }
                let n = (self.data.len() - self.pos).min(buf.len()).min(5);
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let frames = vec![Frame::Hello { node: 1 }, Frame::Shutdown];
        let mut wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut wire).unwrap();
        }
        let mut r = Chunked {
            data: wire,
            pos: 0,
            would_block_at: 5,
        };
        let mut fb = FrameBuffer::new();
        assert_eq!(fb.feed(&mut r).unwrap(), FeedStatus::Drained);
        assert_eq!(fb.feed(&mut r).unwrap(), FeedStatus::Eof);
        let got: Vec<Frame> = std::iter::from_fn(|| fb.pop())
            .map(|f| f.unwrap())
            .collect();
        assert_eq!(got, frames);
    }
}
