//! The length-prefixed wire codec.
//!
//! Every frame travels as a 4-byte big-endian payload length followed by
//! the payload; the payload is a 1-byte tag, the tag-specific body in
//! fixed-width little-endian fields, and a trailing CRC-32 (IEEE) of the
//! tag and body. CRC-32 detects every single-bit error and every burst of
//! up to 32 bits, so the fault injector's bit flips are *always* caught —
//! a corrupted frame is rejected and counted, never silently applied.
//!
//! Stream framing survives payload corruption because the injector (and
//! any single-frame fault) leaves the length prefix intact; only an
//! [`WireError::Oversized`] length is unrecoverable mid-stream, and
//! readers treat it as fatal for the connection.

use std::io::{self, Read, Write};

use crate::counters::CounterSnapshot;

/// Hard ceiling on payload size (tag + body + checksum), in bytes.
///
/// Large enough for a [`Frame::Report`] over thousands of variables,
/// small enough that a corrupted-on-the-wire length cannot make a reader
/// allocate gigabytes.
pub const MAX_PAYLOAD: usize = 1 << 16;

/// Bytes of checksum at the end of every payload.
const CRC_LEN: usize = 4;

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the advertised structure was complete.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD`] (fatal for a stream: the
    /// frame boundary itself is untrustworthy).
    Oversized {
        /// The advertised payload length.
        len: usize,
    },
    /// Unknown frame tag.
    BadTag(u8),
    /// The CRC-32 over tag + body did not match (bit corruption).
    BadChecksum {
        /// Checksum carried by the frame.
        found: u32,
        /// Checksum recomputed over the received bytes.
        computed: u32,
    },
    /// The payload is longer than the decoded structure (framing slip).
    Trailing {
        /// Unconsumed byte count.
        extra: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated frame: needed {needed} more bytes, have {have}"
                )
            }
            WireError::Oversized { len } => {
                write!(f, "oversized frame: {len} bytes exceeds {MAX_PAYLOAD}")
            }
            WireError::BadTag(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            WireError::BadChecksum { found, computed } => {
                write!(
                    f,
                    "checksum mismatch: frame says {found:#010x}, computed {computed:#010x}"
                )
            }
            WireError::Trailing { extra } => write!(f, "{extra} trailing bytes after frame body"),
        }
    }
}

impl std::error::Error for WireError {}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), bitwise.
///
/// Frames are small and sends are paced, so the table-free form is plenty
/// fast and keeps the codec dependency- and allocation-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A protocol frame.
///
/// `Update`/`Heartbeat` flow node → node over the fault-injected data
/// plane; `Report` flows node → controller and `Crash`/`Restart`/
/// `Shutdown` controller → node over the reliable instrumentation plane;
/// `Hello` opens every connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Connection opener: identifies the dialing node.
    Hello {
        /// Index of the dialing node.
        node: u16,
    },
    /// One authoritative variable changed at `node`.
    Update {
        /// Writing node.
        node: u16,
        /// Per-link send sequence number (diagnostic; receivers tolerate
        /// loss, duplication, and reordering without it).
        seq: u64,
        /// Variable index (`VarId::index()`).
        var: u32,
        /// New value.
        value: i64,
    },
    /// Periodic re-broadcast of every variable `node` owns, refreshing
    /// caches that missed dropped updates.
    Heartbeat {
        /// Broadcasting node.
        node: u16,
        /// Per-link send sequence number.
        seq: u64,
        /// `(variable index, value)` pairs.
        vars: Vec<(u32, i64)>,
    },
    /// Node → controller observability report.
    Report {
        /// Reporting node.
        node: u16,
        /// Report sequence number.
        seq: u64,
        /// True on the final report sent while shutting down.
        last: bool,
        /// The node's counters at the time of the report.
        counters: CounterSnapshot,
        /// Authoritative `(variable index, value)` pairs for owned vars.
        vars: Vec<(u32, i64)>,
    },
    /// Controller → node: crash now (drop state, go silent).
    Crash,
    /// Controller → node: restart with this (arbitrary) full view.
    Restart {
        /// `(variable index, value)` pairs covering the node's whole view
        /// — owned variables *and* caches come back arbitrary.
        vars: Vec<(u32, i64)>,
    },
    /// Controller → node: send a final report and exit.
    Shutdown,
}

const TAG_HELLO: u8 = 1;
const TAG_UPDATE: u8 = 2;
const TAG_HEARTBEAT: u8 = 3;
const TAG_REPORT: u8 = 4;
const TAG_CRASH: u8 = 5;
const TAG_RESTART: u8 = 6;
const TAG_SHUTDOWN: u8 = 7;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_vars(out: &mut Vec<u8>, vars: &[(u32, i64)]) -> Result<(), WireError> {
    let count = u16::try_from(vars.len()).map_err(|_| WireError::Oversized {
        len: vars.len() * 12,
    })?;
    put_u16(out, count);
    for &(var, value) in vars {
        put_u32(out, var);
        put_i64(out, value);
    }
    Ok(())
}

/// A cursor over a received payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let have = self.bytes.len() - self.pos;
        if have < n {
            return Err(WireError::Truncated { needed: n, have });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn vars(&mut self) -> Result<Vec<(u32, i64)>, WireError> {
        let count = self.u16()? as usize;
        let mut vars = Vec::with_capacity(count.min(MAX_PAYLOAD / 12));
        for _ in 0..count {
            let var = self.u32()?;
            let value = self.i64()?;
            vars.push((var, value));
        }
        Ok(vars)
    }
}

impl Frame {
    /// Encode the full wire form: length prefix, tag, body, CRC-32.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`] if the frame does not fit [`MAX_PAYLOAD`]
    /// (a variable list too long for one frame).
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut payload = Vec::with_capacity(32);
        match self {
            Frame::Hello { node } => {
                payload.push(TAG_HELLO);
                put_u16(&mut payload, *node);
            }
            Frame::Update {
                node,
                seq,
                var,
                value,
            } => {
                payload.push(TAG_UPDATE);
                put_u16(&mut payload, *node);
                put_u64(&mut payload, *seq);
                put_u32(&mut payload, *var);
                put_i64(&mut payload, *value);
            }
            Frame::Heartbeat { node, seq, vars } => {
                payload.push(TAG_HEARTBEAT);
                put_u16(&mut payload, *node);
                put_u64(&mut payload, *seq);
                put_vars(&mut payload, vars)?;
            }
            Frame::Report {
                node,
                seq,
                last,
                counters,
                vars,
            } => {
                payload.push(TAG_REPORT);
                put_u16(&mut payload, *node);
                put_u64(&mut payload, *seq);
                payload.push(u8::from(*last));
                for word in counters.to_words() {
                    put_u64(&mut payload, word);
                }
                put_vars(&mut payload, vars)?;
            }
            Frame::Crash => payload.push(TAG_CRASH),
            Frame::Restart { vars } => {
                payload.push(TAG_RESTART);
                put_vars(&mut payload, vars)?;
            }
            Frame::Shutdown => payload.push(TAG_SHUTDOWN),
        }
        let crc = crc32(&payload);
        payload.extend_from_slice(&crc.to_le_bytes());
        if payload.len() > MAX_PAYLOAD {
            return Err(WireError::Oversized { len: payload.len() });
        }
        let mut wire = Vec::with_capacity(4 + payload.len());
        wire.extend_from_slice(&u32::try_from(payload.len()).expect("bounded").to_be_bytes());
        wire.extend_from_slice(&payload);
        Ok(wire)
    }

    /// Decode a payload (the bytes after the length prefix).
    ///
    /// # Errors
    ///
    /// See [`WireError`]; notably [`WireError::BadChecksum`] for any
    /// single-bit corruption anywhere in the payload.
    pub fn decode(payload: &[u8]) -> Result<Frame, WireError> {
        if payload.len() < 1 + CRC_LEN {
            return Err(WireError::Truncated {
                needed: 1 + CRC_LEN,
                have: payload.len(),
            });
        }
        if payload.len() > MAX_PAYLOAD {
            return Err(WireError::Oversized { len: payload.len() });
        }
        let (body, crc_bytes) = payload.split_at(payload.len() - CRC_LEN);
        let found = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        let computed = crc32(body);
        if found != computed {
            return Err(WireError::BadChecksum { found, computed });
        }
        let mut c = Cursor {
            bytes: body,
            pos: 0,
        };
        let frame = match c.u8()? {
            TAG_HELLO => Frame::Hello { node: c.u16()? },
            TAG_UPDATE => Frame::Update {
                node: c.u16()?,
                seq: c.u64()?,
                var: c.u32()?,
                value: c.i64()?,
            },
            TAG_HEARTBEAT => Frame::Heartbeat {
                node: c.u16()?,
                seq: c.u64()?,
                vars: c.vars()?,
            },
            TAG_REPORT => {
                let node = c.u16()?;
                let seq = c.u64()?;
                let last = c.u8()? != 0;
                let mut words = [0u64; CounterSnapshot::WORDS];
                for word in &mut words {
                    *word = c.u64()?;
                }
                Frame::Report {
                    node,
                    seq,
                    last,
                    counters: CounterSnapshot::from_words(words),
                    vars: c.vars()?,
                }
            }
            TAG_CRASH => Frame::Crash,
            TAG_RESTART => Frame::Restart { vars: c.vars()? },
            TAG_SHUTDOWN => Frame::Shutdown,
            tag => return Err(WireError::BadTag(tag)),
        };
        if c.pos != body.len() {
            return Err(WireError::Trailing {
                extra: body.len() - c.pos,
            });
        }
        Ok(frame)
    }
}

/// Write one frame to `w` (length prefix included).
///
/// # Errors
///
/// I/O errors from the writer; an unencodable frame surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let wire = frame
        .encode()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    w.write_all(&wire)
}

/// Read one frame from `r`.
///
/// Returns `Ok(None)` on a cleanly (or mid-frame) closed connection,
/// `Ok(Some(Err(_)))` for a frame that arrived but failed to decode —
/// [`WireError::Oversized`] is fatal for the stream (the caller must stop
/// reading; the boundary is lost), checksum/tag errors are per-frame and
/// the stream remains framed — and `Ok(Some(Ok(_)))` for a good frame.
///
/// # Errors
///
/// Propagates I/O errors other than EOF.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Result<Frame, WireError>>> {
    let mut len_bytes = [0u8; 4];
    if let Err(e) = r.read_exact(&mut len_bytes) {
        return match e.kind() {
            io::ErrorKind::UnexpectedEof => Ok(None),
            _ => Err(e),
        };
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_PAYLOAD {
        return Ok(Some(Err(WireError::Oversized { len })));
    }
    let mut payload = vec![0u8; len];
    if let Err(e) = r.read_exact(&mut payload) {
        return match e.kind() {
            io::ErrorKind::UnexpectedEof => Ok(None),
            _ => Err(e),
        };
    }
    Ok(Some(Frame::decode(&payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { node: 3 },
            Frame::Update {
                node: 1,
                seq: 42,
                var: 7,
                value: -5,
            },
            Frame::Heartbeat {
                node: 0,
                seq: 9,
                vars: vec![(0, 1), (4, -9)],
            },
            Frame::Report {
                node: 2,
                seq: 100,
                last: true,
                counters: CounterSnapshot {
                    sent: 1,
                    received: 2,
                    dropped: 3,
                    corrupted: 4,
                    duplicated: 5,
                    delayed: 6,
                    rejected: 7,
                    steps: 8,
                    convergence_steps: 9,
                    heartbeats: 10,
                    reports: 11,
                    crashes: 12,
                },
                vars: vec![(2, 2)],
            },
            Frame::Crash,
            Frame::Restart {
                vars: vec![(0, 3), (1, 0), (2, i64::MIN)],
            },
            Frame::Shutdown,
        ]
    }

    #[test]
    fn roundtrips() {
        for frame in sample_frames() {
            let wire = frame.encode().unwrap();
            let len = u32::from_be_bytes(wire[..4].try_into().unwrap()) as usize;
            assert_eq!(len, wire.len() - 4);
            assert_eq!(Frame::decode(&wire[4..]).unwrap(), frame);
        }
    }

    #[test]
    fn stream_roundtrips() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(read_frame(&mut r).unwrap().unwrap().unwrap(), *f);
        }
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let frame = Frame::Update {
            node: 1,
            seq: 7,
            var: 3,
            value: 11,
        };
        let wire = frame.encode().unwrap();
        let payload = &wire[4..];
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut bad = payload.to_vec();
                bad[byte] ^= 1 << bit;
                assert!(
                    Frame::decode(&bad).is_err(),
                    "flip of byte {byte} bit {bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let frame = Frame::Heartbeat {
            node: 1,
            seq: 2,
            vars: vec![(0, 1), (1, 2), (2, 3)],
        };
        let wire = frame.encode().unwrap();
        let payload = &wire[4..];
        for cut in 0..payload.len() {
            assert!(
                Frame::decode(&payload[..cut]).is_err(),
                "truncation to {cut} bytes slipped through"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_fatal_not_allocated() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let mut r = &wire[..];
        match read_frame(&mut r).unwrap() {
            Some(Err(WireError::Oversized { len })) => assert_eq!(len, u32::MAX as usize),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let frame = Frame::Crash;
        let mut wire = frame.encode().unwrap();
        // Rebuild payload with an extra byte, fixing the checksum so only
        // the trailing check can object.
        let mut body = wire[4..wire.len() - CRC_LEN].to_vec();
        body.push(0xAB);
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        wire = body;
        assert!(matches!(
            Frame::decode(&wire),
            Err(WireError::Trailing { extra: 1 })
        ));
    }

    #[test]
    fn too_many_vars_is_oversized() {
        let frame = Frame::Restart {
            vars: (0..70_000).map(|i| (i as u32, 0i64)).collect(),
        };
        assert!(matches!(frame.encode(), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn crc_reference_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
