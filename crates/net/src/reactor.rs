//! The readiness-driven core: shard workers multiplexing many nodes over
//! a few sockets.
//!
//! The thread-per-node runtime needed `O(n^2)` sockets and `3n+1`
//! threads — at 10^4 nodes that is past any fd limit and far past what
//! one machine schedules sensibly. The reactor keeps the *logical*
//! topology (every directed link still has its own fault injector and
//! deterministic fault stream) but changes the *physical* one: nodes are
//! partitioned into contiguous shards, each owned by one worker thread,
//! and all logical links from shard `A` to shard `B` share a single
//! directed TCP stream carrying [`Frame::Routed`] envelopes. Socket count
//! is `O(shards^2)`, independent of `n`.
//!
//! Each worker runs one poll(2) loop (via the vendored `polling` shim):
//! it feeds readable streams into incremental [`FrameBuffer`] decoders,
//! dispatches decoded frames to its [`NodeCore`]s, services nodes whose
//! absolute-tick deadlines (cooldown expiry, heartbeat, report, delayed
//! flush) have come due — deadlines live in a min-heap, so idle nodes
//! cost nothing — and batch-flushes the accumulated wire bytes with one
//! write per stream per round instead of one syscall per frame.
//!
//! Every byte between nodes still crosses a real socket (a shard's
//! self-links dial the shard's own listener), so the transport stays
//! honestly message-passing; and because fault decisions moved send-side
//! into [`crate::fault::Injector`] with a fixed per-link RNG draw order,
//! the injected fault pattern is bit-identical to the thread runtime's
//! regardless of sharding or batching.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use nonmask_program::{Program, State, StepLog};
use polling::{PollFd, READABLE, WRITABLE};

use crate::fault::{FaultConfig, PartitionMap};
use crate::node::{NodeCore, NodeSpec, NodeTiming};
use crate::wire::{FeedStatus, Frame, FrameBuffer};

/// How nodes map onto shard workers: contiguous, near-equal ranges.
#[derive(Debug, Clone)]
pub(crate) struct ShardPlan {
    /// `ranges[s]` is the node index range owned by shard `s`.
    pub ranges: Vec<Range<usize>>,
    /// `shard_of[p]` is the shard owning node `p`.
    pub shard_of: Vec<usize>,
}

impl ShardPlan {
    /// Split `n` nodes into `shards` contiguous ranges differing in size
    /// by at most one.
    pub fn new(n: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, n.max(1));
        let base = n / shards;
        let rem = n % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut shard_of = vec![0usize; n];
        let mut start = 0;
        for s in 0..shards {
            let len = base + usize::from(s < rem);
            ranges.push(start..start + len);
            for owner in &mut shard_of[start..start + len] {
                *owner = s;
            }
            start += len;
        }
        ShardPlan { ranges, shard_of }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.ranges.len()
    }
}

/// Resolve a configured shard count (`0` = auto) against the node count.
pub(crate) fn effective_shards(requested: usize, n: usize) -> usize {
    let s = if requested == 0 {
        // Auto: enough workers to overlap protocol work with socket I/O,
        // bounded so a single-core box is not drowned in context switches.
        std::thread::available_parallelism()
            .map_or(2, usize::from)
            .clamp(2, 8)
    } else {
        requested
    };
    s.clamp(1, n.max(1))
}

/// Which shard-pair streams exist, derived from the logical topology: a
/// stream `A → B` exists iff some node in `A` has an outgoing link to a
/// node in `B`. Both endpoints derive this from the same specs, so the
/// dial and accept counts always agree.
#[derive(Debug, Clone)]
pub(crate) struct MeshPlan {
    /// `out_shards[s]`: sorted destination shards `s` dials.
    pub out_shards: Vec<Vec<usize>>,
    /// `in_count[s]`: how many inbound streams `s` must accept.
    pub in_count: Vec<usize>,
}

impl MeshPlan {
    /// Derive the stream mesh from per-node topology specs.
    pub fn new(specs: &[NodeSpec], plan: &ShardPlan) -> Self {
        let s = plan.shard_count();
        let mut links = vec![false; s * s];
        for (p, spec) in specs.iter().enumerate() {
            for (q, _) in &spec.out_peers {
                links[plan.shard_of[p] * s + plan.shard_of[*q]] = true;
            }
        }
        let out_shards: Vec<Vec<usize>> = (0..s)
            .map(|a| (0..s).filter(|&b| links[a * s + b]).collect())
            .collect();
        let in_count = (0..s)
            .map(|b| (0..s).filter(|&a| links[a * s + b]).count())
            .collect();
        MeshPlan {
            out_shards,
            in_count,
        }
    }
}

/// The raw fd the poll shim wants (on non-unix the shim ignores fds and
/// reports everything ready, so the value is moot).
#[cfg(unix)]
pub(crate) fn raw_fd(stream: &TcpStream) -> i32 {
    use std::os::unix::io::AsRawFd;
    stream.as_raw_fd()
}

#[cfg(not(unix))]
pub(crate) fn raw_fd(_stream: &TcpStream) -> i32 {
    -1
}

/// Write as much of `buf[*pos..]` as the socket accepts right now.
/// Returns `Ok(true)` when fully flushed (buffer cleared), `Ok(false)` on
/// `WouldBlock` (flushed prefix dropped, remainder kept).
pub(crate) fn flush_buf(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    pos: &mut usize,
) -> io::Result<bool> {
    while *pos < buf.len() {
        match stream.write(&buf[*pos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(k) => *pos += k,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                buf.drain(..*pos);
                *pos = 0;
                return Ok(false);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    buf.clear();
    *pos = 0;
    Ok(true)
}

/// Dial `addr`, retrying until `deadline` (listeners are all bound before
/// workers spawn, so connects normally land in the backlog first try).
pub(crate) fn dial(addr: SocketAddr, deadline: Instant) -> io::Result<TcpStream> {
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() > deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }
}

/// Scale-diagnosis logging, enabled by the `NONMASK_NET_DEBUG`
/// environment variable: phase timestamps (node-core construction,
/// finalize, loop exit, shutdown grace) for attributing wall time at
/// large node counts, where building `n` full local views dominates.
pub(crate) fn debug_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("NONMASK_NET_DEBUG").is_some())
}

fn timeout_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, what.to_string())
}

/// Everything a shard worker borrows from the run (shared, read-only
/// except the atomics).
pub(crate) struct WorkerEnv<'a> {
    pub program: &'a Program,
    pub specs: &'a [NodeSpec],
    pub plan: &'a ShardPlan,
    pub mesh: &'a MeshPlan,
    pub timing: &'a NodeTiming,
    pub faults: &'a FaultConfig,
    pub partition: &'a PartitionMap,
    pub initial: &'a State,
    pub step_log: Option<StepLog>,
    /// `generations[s]`: shard `s`'s live freshness counter, bumped on
    /// every authoritative state change; the controller compares it with
    /// the generation of the last [`Frame::Pulse`] it drained to know
    /// whether its assembled snapshot is stale.
    pub generations: &'a [AtomicU64],
    /// Test hook: this shard's worker panics on startup, exercising the
    /// `NetError::ControlLoopFailed` path.
    pub sabotage: Option<usize>,
}

/// What a poll slot refers to.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Control,
    In(usize),
    Out(usize),
}

/// Run shard `shard`: build the stream mesh, then drive every owned node
/// until the controller shuts the run down.
pub(crate) fn run_worker(
    env: &WorkerEnv<'_>,
    shard: usize,
    listener: TcpListener,
    shard_addrs: &[SocketAddr],
    controller_addr: SocketAddr,
) -> io::Result<()> {
    if env.sabotage == Some(shard) {
        panic!("net worker {shard} sabotaged by test hook");
    }
    let deadline = Instant::now() + env.timing.startup_timeout;
    let range = env.plan.ranges[shard].clone();

    // Control plane first: greet with our shard id so the controller can
    // route crash/restart/shutdown envelopes to the right stream.
    let mut control = dial(controller_addr, deadline)?;
    control.set_nodelay(true)?;
    let mut greeting = Vec::new();
    Frame::Pulse {
        shard: shard as u16,
        generation: 0,
    }
    .encode_into(&mut greeting)
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    control.write_all(&greeting)?;

    // Data plane: dial one stream per destination shard (self included —
    // a shard's self-links go through a real socket too), then accept one
    // per source shard. Dial-before-accept cannot deadlock: connects are
    // completed by the peer's listener backlog, not its accept calls.
    let out_shards = &env.mesh.out_shards[shard];
    let mut out_streams = Vec::with_capacity(out_shards.len());
    for &t in out_shards {
        let s = dial(shard_addrs[t], deadline)?;
        s.set_nodelay(true)?;
        out_streams.push(s);
    }
    listener.set_nonblocking(true)?;
    let mut in_streams: Vec<TcpStream> = Vec::with_capacity(env.mesh.in_count[shard]);
    while in_streams.len() < env.mesh.in_count[shard] {
        match listener.accept() {
            Ok((s, _)) => {
                s.set_nodelay(true)?;
                in_streams.push(s);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    return Err(timeout_err("peer shard never dialed in"));
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) => return Err(e),
        }
    }
    drop(listener);

    let mut conn_of_shard = vec![usize::MAX; shard_addrs.len()];
    for (i, &t) in out_shards.iter().enumerate() {
        conn_of_shard[t] = i;
    }
    let mut nodes: Vec<NodeCore<'_>> = range
        .clone()
        .map(|p| {
            NodeCore::new(
                env.program,
                &env.specs[p],
                env.timing,
                env.initial.clone(),
                env.faults,
                |q| conn_of_shard[env.plan.shard_of[q]],
                env.step_log.clone(),
            )
        })
        .collect();

    if debug_enabled() {
        eprintln!("[net-debug] shard {shard} built {} node cores", nodes.len());
    }
    // Mesh is up: announce every owned node. The controller's startup
    // barrier is "all n Hellos seen", exactly as in the thread runtime.
    let mut hellos = Vec::new();
    for p in range.clone() {
        Frame::Hello {
            node: env.specs[p].node,
        }
        .encode_into(&mut hellos)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    }
    control.write_all(&hellos)?;

    control.set_nonblocking(true)?;
    for s in &out_streams {
        s.set_nonblocking(true)?;
    }
    for s in &in_streams {
        s.set_nonblocking(true)?;
    }

    worker_loop(
        env,
        shard,
        range,
        &mut nodes,
        &mut control,
        &mut out_streams,
        &mut in_streams,
    )?;
    let _ = control.shutdown(std::net::Shutdown::Both);
    Ok(())
}

/// The steady-state poll loop (split out of [`run_worker`] so startup and
/// steady state read separately).
#[allow(clippy::too_many_lines)]
fn worker_loop(
    env: &WorkerEnv<'_>,
    shard: usize,
    range: Range<usize>,
    nodes: &mut [NodeCore<'_>],
    control: &mut TcpStream,
    out_streams: &mut [TcpStream],
    in_streams: &mut [TcpStream],
) -> io::Result<()> {
    let tick_ns = env.timing.tick.as_nanos().max(1);
    let epoch = Instant::now();
    let tick_of = |at: Instant| -> u64 { ((at - epoch).as_nanos() / tick_ns) as u64 };

    let mut control_in = FrameBuffer::new();
    let mut control_out: Vec<u8> = Vec::new();
    let mut control_pos = 0usize;
    let mut control_stalled = false;
    let mut control_eof = false;
    let mut in_bufs: Vec<FrameBuffer> = in_streams.iter().map(|_| FrameBuffer::new()).collect();
    let mut in_eof: Vec<bool> = vec![false; in_streams.len()];
    // Attribution for codec rejects on a muxed stream: the last node a
    // good frame on that stream routed to (best effort — the corrupted
    // envelope hides its own destination).
    let mut last_routed: Vec<usize> = vec![0; in_streams.len()];
    let mut out_bufs: Vec<Vec<u8>> = out_streams.iter().map(|_| Vec::new()).collect();
    let mut out_pos: Vec<usize> = vec![0; out_streams.len()];
    let mut out_stalled: Vec<bool> = vec![false; out_streams.len()];
    let mut out_dead: Vec<bool> = vec![false; out_streams.len()];

    // Absolute-tick deadlines, lazily deduplicated: duplicate entries are
    // harmless because servicing is idempotent at a given tick.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for (i, node) in nodes.iter().enumerate() {
        if let Some(t) = node.next_deadline() {
            heap.push(Reverse((t, i)));
        }
    }
    let mut touched: Vec<bool> = vec![false; nodes.len()];
    let mut svc: Vec<usize> = Vec::with_capacity(nodes.len());

    let gen = &env.generations[shard];
    let mut gen_local = 0u64;
    let mut last_pulsed = 0u64;
    let mut quiet_rounds = 0u32;
    let mut finalized = false;

    loop {
        // --- wait for readiness or the next deadline ---
        let now_tick = tick_of(Instant::now());
        let all_shutting = nodes.iter().all(NodeCore::is_shutting);
        let timeout = if finalized || all_shutting {
            Duration::from_millis(1)
        } else {
            match heap.peek() {
                Some(&Reverse((t, _))) if t <= now_tick => Duration::ZERO,
                Some(&Reverse((t, _))) => {
                    let due = epoch + Duration::from_nanos((u128::from(t) * tick_ns) as u64);
                    due.saturating_duration_since(Instant::now())
                        .min(Duration::from_millis(10))
                }
                None => Duration::from_millis(10),
            }
        };
        let mut fds: Vec<PollFd> = Vec::with_capacity(1 + in_streams.len() + out_streams.len());
        let mut slots: Vec<Slot> = Vec::with_capacity(fds.capacity());
        if !control_eof {
            let mut interest = READABLE;
            if control_stalled {
                interest |= WRITABLE;
            }
            fds.push(PollFd::new(raw_fd(control), interest));
            slots.push(Slot::Control);
        }
        for (i, s) in in_streams.iter().enumerate() {
            if !in_eof[i] && !in_bufs[i].is_dead() {
                fds.push(PollFd::new(raw_fd(s), READABLE));
                slots.push(Slot::In(i));
            }
        }
        for (i, s) in out_streams.iter().enumerate() {
            if out_stalled[i] && !out_dead[i] {
                fds.push(PollFd::new(raw_fd(s), WRITABLE));
                slots.push(Slot::Out(i));
            }
        }
        polling::poll(&mut fds, Some(timeout))?;

        // --- read everything readable ---
        let mut data_bytes = 0usize;
        for (fd, &slot) in fds.iter().zip(&slots) {
            match slot {
                Slot::Control => {
                    if fd.is_writable() {
                        control_stalled = false;
                    }
                    if fd.is_readable() {
                        match control_in.feed(control) {
                            Ok(FeedStatus::Eof) | Err(_) => control_eof = true,
                            Ok(_) => {}
                        }
                    }
                }
                Slot::In(i) => {
                    if fd.is_readable() {
                        let before = in_bufs[i].pending_bytes();
                        match in_bufs[i].feed(&mut in_streams[i]) {
                            Ok(FeedStatus::Eof) => in_eof[i] = true,
                            Ok(_) => {}
                            // A dead peer stream loses that shard's links,
                            // not this shard's nodes (old runtime: a dead
                            // pump thread behaved the same way).
                            Err(_) => in_eof[i] = true,
                        }
                        data_bytes += in_bufs[i].pending_bytes() - before;
                    }
                }
                Slot::Out(i) => {
                    if fd.is_writable() {
                        out_stalled[i] = false;
                    }
                }
            }
        }

        // --- dispatch decoded frames to nodes ---
        svc.clear();
        let mark = |touched: &mut [bool], svc: &mut Vec<usize>, local: usize| {
            if !touched[local] {
                touched[local] = true;
                svc.push(local);
            }
        };
        while let Some(res) = control_in.pop() {
            if let Ok(Frame::Routed { to, frame }) = res {
                let p = usize::from(to);
                if range.contains(&p) {
                    let local = p - range.start;
                    if nodes[local].on_frame(*frame) {
                        gen_local += 1;
                    }
                    mark(&mut touched, &mut svc, local);
                }
            }
            // Control traffic is not fault-injected; anything else
            // (stray frame, impossible decode error) is ignored.
        }
        for i in 0..in_bufs.len() {
            while let Some(res) = in_bufs[i].pop() {
                match res {
                    Ok(Frame::Routed { to, frame }) => {
                        let p = usize::from(to);
                        if range.contains(&p) {
                            let local = p - range.start;
                            last_routed[i] = local;
                            if nodes[local].on_frame(*frame) {
                                gen_local += 1;
                            }
                            mark(&mut touched, &mut svc, local);
                        }
                    }
                    // Un-routed frames never travel the data plane; a
                    // decoded one survived a CRC collision — drop it.
                    Ok(_) => {}
                    Err(_) => nodes[last_routed[i]].on_rejected(),
                }
            }
        }

        // --- service nodes whose deadlines are due or that got frames ---
        let now_tick = tick_of(Instant::now());
        while let Some(&Reverse((t, i))) = heap.peek() {
            if t > now_tick {
                break;
            }
            heap.pop();
            mark(&mut touched, &mut svc, i);
        }
        for &i in &svc {
            touched[i] = false;
            gen_local += nodes[i].service(now_tick, env.partition, &mut out_bufs, &mut control_out);
            if let Some(t) = nodes[i].next_deadline() {
                heap.push(Reverse((t.max(now_tick + 1), i)));
            }
        }

        // --- publish freshness ---
        if gen_local > last_pulsed {
            gen.store(gen_local, Ordering::Release);
            let _ = Frame::Pulse {
                shard: shard as u16,
                generation: gen_local,
            }
            .encode_into(&mut control_out);
            last_pulsed = gen_local;
        }

        // --- quiescent shutdown ---
        // Once every owned node has seen Shutdown, nodes stop producing
        // but keep *counting* arrivals; the final counter snapshots are
        // taken only after two consecutive quiet rounds with all output
        // flushed, so in-flight frames from slower shards still land in
        // `received` and a faultless run balances sent == received
        // exactly.
        if all_shutting && !finalized {
            if data_bytes == 0 {
                quiet_rounds += 1;
            } else {
                quiet_rounds = 0;
            }
            let outs_flushed = out_bufs.iter().all(Vec::is_empty);
            if quiet_rounds >= 2 && outs_flushed {
                for node in nodes.iter_mut() {
                    node.finalize(&mut control_out);
                }
                finalized = true;
                if debug_enabled() {
                    eprintln!(
                        "[net-debug] shard {shard} finalized at {:?}",
                        epoch.elapsed()
                    );
                }
            }
        }

        // --- flush batched output ---
        if !control_out.is_empty() || control_pos > 0 {
            match flush_buf(control, &mut control_out, &mut control_pos) {
                Ok(true) => control_stalled = false,
                Ok(false) => control_stalled = true,
                // Control write failure means the controller is gone:
                // the run is over for this shard.
                Err(_) => control_eof = true,
            }
        }
        for i in 0..out_streams.len() {
            if out_dead[i] || out_bufs[i].is_empty() {
                continue;
            }
            match flush_buf(&mut out_streams[i], &mut out_bufs[i], &mut out_pos[i]) {
                Ok(true) => out_stalled[i] = false,
                Ok(false) => out_stalled[i] = true,
                Err(_) => {
                    out_dead[i] = true;
                    out_bufs[i].clear();
                    out_pos[i] = 0;
                }
            }
        }

        if control_eof || (finalized && control_out.is_empty() && control_pos == 0) {
            // Controller hung up (normal end: it saw our final reports;
            // abnormal: it errored out), or everything this shard owed the
            // run has been flushed. Either way nothing is left to do.
            if debug_enabled() {
                eprintln!(
                    "[net-debug] shard {shard} loop exits at {:?}",
                    epoch.elapsed()
                );
            }
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_plan_is_contiguous_and_balanced() {
        let plan = ShardPlan::new(10, 4);
        assert_eq!(plan.shard_count(), 4);
        let sizes: Vec<usize> = plan.ranges.iter().map(ExactSizeIterator::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
        let mut next = 0;
        for (s, r) in plan.ranges.iter().enumerate() {
            assert_eq!(r.start, next, "ranges are contiguous");
            next = r.end;
            for p in r.clone() {
                assert_eq!(plan.shard_of[p], s);
            }
        }
    }

    #[test]
    fn shard_plan_clamps_to_node_count() {
        let plan = ShardPlan::new(3, 16);
        assert_eq!(plan.shard_count(), 3);
        assert!(plan.ranges.iter().all(|r| r.len() == 1));
        assert_eq!(effective_shards(16, 3), 3);
        assert_eq!(effective_shards(1, 100), 1);
        assert!(effective_shards(0, 100) >= 2);
    }

    #[test]
    fn mesh_plan_dial_and_accept_counts_agree() {
        // A 4-node ring over 2 shards: 0→1, 1→2, 2→3, 3→0 becomes
        // shard links 0→0 (via 0→1), 0→1, 1→1, 1→0.
        let specs: Vec<NodeSpec> = (0..4u16)
            .map(|p| NodeSpec {
                node: p,
                actions: Vec::new(),
                owned: Vec::new(),
                out_peers: vec![(usize::from((p + 1) % 4), Vec::new())],
                byzantine: false,
            })
            .collect();
        let plan = ShardPlan::new(4, 2);
        let mesh = MeshPlan::new(&specs, &plan);
        assert_eq!(mesh.out_shards[0], vec![0, 1]);
        assert_eq!(mesh.out_shards[1], vec![0, 1]);
        assert_eq!(mesh.in_count, vec![2, 2]);
        // Global dial count equals global accept count.
        let dials: usize = mesh.out_shards.iter().map(Vec::len).sum();
        let accepts: usize = mesh.in_count.iter().sum();
        assert_eq!(dials, accepts);
    }
}
