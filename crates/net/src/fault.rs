//! The fault-injecting transport: a lossy, corrupting, duplicating,
//! delaying, partitionable wrapper around a TCP stream.
//!
//! Faults are injected on the *send* side, per link, from a deterministic
//! RNG derived from the run seed and the link's endpoints — so a given
//! seed always produces the same fault pattern on each link's frame
//! sequence, independent of thread scheduling. Corruption flips one
//! random bit in the payload (never the length prefix), so stream framing
//! survives and the receiver's CRC rejects the frame — the corrupt frame
//! behaves like a detected drop, which is exactly how real checksummed
//! transports degrade.
//!
//! The decision core lives in [`Injector`], which is transport-agnostic:
//! it appends deliver-now wire bytes to a caller-supplied buffer. The
//! reactor uses it directly (many logical links batching into one shard
//! stream); [`FaultyLink`] wraps it around a dedicated `TcpStream` for
//! unit tests and single-link uses.

use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::counters::CounterSnapshot;
use crate::wire::{Frame, WireError};

/// Fault rates for every data-plane link.
///
/// All probabilities are per frame, applied independently; `0.0`
/// everywhere is a faithful transport.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Base seed; each link derives its own stream from this and its
    /// endpoint pair.
    pub seed: u64,
    /// Probability a frame is silently dropped.
    pub drop_rate: f64,
    /// Probability a frame has one payload bit flipped (the receiver's
    /// CRC will reject it).
    pub corrupt_rate: f64,
    /// Probability a frame is sent twice.
    pub duplicate_rate: f64,
    /// Probability a frame is held back `1..=max_delay_ticks` ticks,
    /// overtaken by later traffic (reordering).
    pub delay_rate: f64,
    /// Upper bound on injected delay, in node-loop ticks.
    pub max_delay_ticks: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            duplicate_rate: 0.0,
            delay_rate: 0.0,
            max_delay_ticks: 4,
        }
    }
}

impl FaultConfig {
    /// A convenience profile: `rate` loss plus light corruption,
    /// duplication, and delay — the "hostile network" used by tests and
    /// the CLI.
    pub fn hostile(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            drop_rate: rate,
            corrupt_rate: rate / 4.0,
            duplicate_rate: rate / 4.0,
            delay_rate: rate / 2.0,
            max_delay_ticks: 8,
        }
    }
}

/// Shared partition state: group ids per node, or `None` when healed.
///
/// Consulted by every link at send time; frames crossing group
/// boundaries while a partition is active are dropped.
///
/// All three accessors recover from mutex poisoning: the guarded value is
/// a plain `Option<Vec<usize>>` that is written atomically (never left in
/// a torn state), so a panic on some other thread while it held the lock
/// cannot corrupt it — cascading that panic into every subsequent sender
/// (which is what `.expect("partition lock")` did) turned one dead link
/// into a whole-run abort.
#[derive(Debug, Default)]
pub struct PartitionMap {
    groups: Mutex<Option<Vec<usize>>>,
}

impl PartitionMap {
    /// A healed (no partition) map.
    pub fn new() -> Self {
        PartitionMap::default()
    }

    /// Install a partition: `groups[node]` is the node's group id.
    pub fn set(&self, groups: Vec<usize>) {
        *self
            .groups
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(groups);
    }

    /// Heal the partition.
    pub fn heal(&self) {
        *self
            .groups
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = None;
    }

    /// Whether a frame from `sender` to `receiver` is currently blocked.
    pub fn blocks(&self, sender: usize, receiver: usize) -> bool {
        let guard = self
            .groups
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match &*guard {
            Some(groups) => groups.get(sender) != groups.get(receiver),
            None => false,
        }
    }
}

/// Derive a link-specific RNG from the base seed and the endpoints.
///
/// `seed_from_u64` runs SplitMix64 over the combined word, so nearby
/// `(seed, endpoint)` tuples still yield uncorrelated streams.
fn link_rng(seed: u64, sender: usize, receiver: usize) -> StdRng {
    let combined = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(((sender as u64 + 1) << 32) | (receiver as u64 + 1));
    StdRng::seed_from_u64(combined)
}

/// The transport-agnostic fault-decision core for one directed link.
///
/// `admit` consumes exactly one RNG draw per decision in a fixed order
/// (drop, duplicate, then per-copy corrupt/bit-pick and delay/delay-pick),
/// so the fault pattern for a given `(seed, sender, receiver)` depends
/// only on the link's frame sequence — never on which transport carries
/// the bytes or how they are batched.
#[derive(Debug)]
pub struct Injector {
    rng: StdRng,
    config: FaultConfig,
    sender: usize,
    receiver: usize,
    /// Held-back frames as `(due_tick, wire_bytes)`.
    pending: Vec<(u64, Vec<u8>)>,
}

impl Injector {
    /// The injector for the directed link `sender → receiver`.
    pub fn new(sender: usize, receiver: usize, config: FaultConfig) -> Self {
        let rng = link_rng(config.seed, sender, receiver);
        Injector {
            rng,
            config,
            sender,
            receiver,
            pending: Vec::new(),
        }
    }

    /// The receiving node's index.
    pub fn receiver(&self) -> usize {
        self.receiver
    }

    /// Run `frame` through the fault decisions at `tick`, appending the
    /// wire bytes of every deliver-now copy to `out` and updating
    /// `counters` with whatever happened.
    ///
    /// # Errors
    ///
    /// [`WireError`] if the frame cannot be encoded.
    pub fn admit(
        &mut self,
        frame: &Frame,
        tick: u64,
        partition: &PartitionMap,
        counters: &mut CounterSnapshot,
        out: &mut Vec<u8>,
    ) -> Result<(), WireError> {
        if partition.blocks(self.sender, self.receiver) {
            counters.dropped += 1;
            return Ok(());
        }
        if self.config.drop_rate > 0.0 && self.rng.gen_bool(self.config.drop_rate) {
            counters.dropped += 1;
            return Ok(());
        }
        let copies =
            if self.config.duplicate_rate > 0.0 && self.rng.gen_bool(self.config.duplicate_rate) {
                counters.duplicated += 1;
                2
            } else {
                1
            };
        for _ in 0..copies {
            let mut wire = frame.encode()?;
            if self.config.corrupt_rate > 0.0 && self.rng.gen_bool(self.config.corrupt_rate) {
                // Flip one bit strictly inside the payload: framing holds,
                // the CRC catches it at the receiver.
                let payload_bits = (wire.len() - 4) * 8;
                let bit = self.rng.gen_range(0..payload_bits);
                wire[4 + bit / 8] ^= 1 << (bit % 8);
                counters.corrupted += 1;
            }
            if self.config.delay_rate > 0.0 && self.rng.gen_bool(self.config.delay_rate) {
                let delay = self.rng.gen_range(1..=self.config.max_delay_ticks.max(1));
                self.pending.push((tick + delay, wire));
                counters.delayed += 1;
            } else {
                out.extend_from_slice(&wire);
                counters.sent += 1;
            }
        }
        Ok(())
    }

    /// Append every held-back frame whose due tick has arrived to `out`.
    pub fn flush_due(&mut self, tick: u64, counters: &mut CounterSnapshot, out: &mut Vec<u8>) {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 <= tick {
                let (_, wire) = self.pending.swap_remove(i);
                out.extend_from_slice(&wire);
                counters.sent += 1;
            } else {
                i += 1;
            }
        }
    }

    /// The earliest due tick among held-back frames, if any — the
    /// reactor's deadline source for delayed traffic.
    pub fn next_due(&self) -> Option<u64> {
        self.pending.iter().map(|(due, _)| *due).min()
    }
}

/// A fault-injecting, send-side view of one directed TCP link: an
/// [`Injector`] bound to its own `TcpStream`.
#[derive(Debug)]
pub struct FaultyLink {
    stream: TcpStream,
    injector: Injector,
}

impl FaultyLink {
    /// Wrap `stream` as the faulty link `sender → receiver`.
    pub fn new(stream: TcpStream, sender: usize, receiver: usize, config: FaultConfig) -> Self {
        FaultyLink {
            stream,
            injector: Injector::new(sender, receiver, config),
        }
    }

    /// The receiving node's index.
    pub fn receiver(&self) -> usize {
        self.injector.receiver()
    }

    /// Send `frame` through the fault injector at `tick`, updating
    /// `counters` with whatever happened to it.
    ///
    /// # Errors
    ///
    /// Socket write errors (an unencodable frame surfaces as
    /// `InvalidData`).
    pub fn send(
        &mut self,
        frame: &Frame,
        tick: u64,
        partition: &PartitionMap,
        counters: &mut CounterSnapshot,
    ) -> io::Result<()> {
        let mut out = Vec::new();
        self.injector
            .admit(frame, tick, partition, counters, &mut out)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.stream.write_all(&out)
    }

    /// Write every held-back frame whose due tick has arrived.
    ///
    /// # Errors
    ///
    /// Socket write errors.
    pub fn flush_due(&mut self, tick: u64, counters: &mut CounterSnapshot) -> io::Result<()> {
        let mut out = Vec::new();
        self.injector.flush_due(tick, counters, &mut out);
        self.stream.write_all(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::read_frame;
    use std::net::TcpListener;
    use std::panic::AssertUnwindSafe;

    fn pipe() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn faithful_link_delivers_everything() {
        let (tx, mut rx) = pipe();
        let mut link = FaultyLink::new(tx, 0, 1, FaultConfig::default());
        let partition = PartitionMap::new();
        let mut counters = CounterSnapshot::default();
        for seq in 0..32u64 {
            let f = Frame::Update {
                node: 0,
                seq,
                var: 1,
                value: seq as i64,
            };
            link.send(&f, seq, &partition, &mut counters).unwrap();
        }
        assert_eq!(counters.sent, 32);
        assert_eq!(counters.dropped + counters.corrupted + counters.delayed, 0);
        for seq in 0..32u64 {
            match read_frame(&mut rx).unwrap().unwrap().unwrap() {
                Frame::Update { seq: got, .. } => assert_eq!(got, seq),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn drops_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let (tx, _rx) = pipe();
            let config = FaultConfig {
                seed,
                drop_rate: 0.5,
                ..FaultConfig::default()
            };
            let mut link = FaultyLink::new(tx, 2, 3, config);
            let partition = PartitionMap::new();
            let mut counters = CounterSnapshot::default();
            for seq in 0..64u64 {
                let f = Frame::Update {
                    node: 2,
                    seq,
                    var: 0,
                    value: 0,
                };
                link.send(&f, seq, &partition, &mut counters).unwrap();
            }
            counters
        };
        assert_eq!(run(7), run(7), "same seed, same fault pattern");
        assert_ne!(run(7).dropped, 0);
        assert_ne!(run(7).sent, 0);
    }

    #[test]
    fn injector_decisions_do_not_depend_on_transport_batching() {
        // The same frame sequence through a bare Injector (reactor path)
        // and a FaultyLink (thread path) must produce identical counter
        // outcomes: fault patterns are a property of the link, not of the
        // transport that carries the bytes.
        let config = FaultConfig::hostile(99, 0.3);
        let frames: Vec<Frame> = (0..128u64)
            .map(|seq| Frame::Update {
                node: 5,
                seq,
                var: 1,
                value: seq as i64,
            })
            .collect();
        let partition = PartitionMap::new();

        let mut inj = Injector::new(5, 6, config.clone());
        let mut batched = Vec::new();
        let mut inj_counters = CounterSnapshot::default();
        for (tick, f) in frames.iter().enumerate() {
            inj.admit(f, tick as u64, &partition, &mut inj_counters, &mut batched)
                .unwrap();
        }

        let (tx, _rx) = pipe();
        let mut link = FaultyLink::new(tx, 5, 6, config);
        let mut link_counters = CounterSnapshot::default();
        for (tick, f) in frames.iter().enumerate() {
            link.send(f, tick as u64, &partition, &mut link_counters)
                .unwrap();
        }
        assert_eq!(inj_counters, link_counters);
    }

    #[test]
    fn corruption_is_always_rejected_downstream() {
        let (tx, mut rx) = pipe();
        let config = FaultConfig {
            seed: 3,
            corrupt_rate: 1.0,
            ..FaultConfig::default()
        };
        let mut link = FaultyLink::new(tx, 0, 1, config);
        let partition = PartitionMap::new();
        let mut counters = CounterSnapshot::default();
        for seq in 0..16u64 {
            let f = Frame::Update {
                node: 0,
                seq,
                var: 2,
                value: -1,
            };
            link.send(&f, seq, &partition, &mut counters).unwrap();
        }
        drop(link);
        assert_eq!(counters.corrupted, 16);
        let mut rejected = 0;
        while let Some(result) = read_frame(&mut rx).unwrap() {
            assert!(result.is_err(), "corrupted frame decoded: {result:?}");
            rejected += 1;
        }
        assert_eq!(rejected, 16, "framing survived every corruption");
    }

    #[test]
    fn partition_blocks_cross_group_frames() {
        let (tx, mut rx) = pipe();
        let mut link = FaultyLink::new(tx, 0, 1, FaultConfig::default());
        let partition = PartitionMap::new();
        partition.set(vec![0, 1]);
        let mut counters = CounterSnapshot::default();
        let f = Frame::Update {
            node: 0,
            seq: 0,
            var: 0,
            value: 0,
        };
        link.send(&f, 0, &partition, &mut counters).unwrap();
        assert_eq!((counters.sent, counters.dropped), (0, 1));
        partition.heal();
        link.send(&f, 1, &partition, &mut counters).unwrap();
        assert_eq!((counters.sent, counters.dropped), (1, 1));
        drop(link);
        assert_eq!(read_frame(&mut rx).unwrap().unwrap().unwrap(), f);
        assert!(read_frame(&mut rx).unwrap().is_none());
    }

    // ---- satellite: one panicking sender must not poison everyone ----

    #[test]
    fn poisoned_partition_lock_does_not_cascade() {
        let map = PartitionMap::new();
        map.set(vec![0, 0, 1, 1]);
        // A "sender thread" panics while holding the partition lock —
        // exactly the mid-send window where the old `.expect()` turned
        // poisoning into a panic cascade across every other link.
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = map
                .groups
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            panic!("sender died mid-partition");
        }));
        assert!(result.is_err(), "the sender did panic");
        // Remaining nodes keep working: the active partition is still
        // enforced, and heal/set still function.
        assert!(map.blocks(0, 2), "partition still enforced after poison");
        assert!(!map.blocks(0, 1), "same-group traffic still flows");
        map.heal();
        assert!(!map.blocks(0, 2), "heal works on a poisoned map");
        map.set(vec![0, 1]);
        assert!(map.blocks(0, 1), "set works on a poisoned map");
    }

    #[test]
    fn surviving_links_send_through_a_poisoned_map() {
        let (tx, mut rx) = pipe();
        let map = PartitionMap::new();
        map.set(vec![0, 0]);
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = map.groups.lock().unwrap();
            panic!("boom");
        }));
        let mut link = FaultyLink::new(tx, 0, 1, FaultConfig::default());
        let mut counters = CounterSnapshot::default();
        let f = Frame::Heartbeat {
            node: 0,
            seq: 1,
            vars: vec![(0, 7)],
        };
        link.send(&f, 0, &map, &mut counters).unwrap();
        assert_eq!(counters.sent, 1);
        drop(link);
        assert_eq!(read_frame(&mut rx).unwrap().unwrap().unwrap(), f);
    }

    #[test]
    fn delayed_frames_reorder_but_arrive() {
        let (tx, mut rx) = pipe();
        let config = FaultConfig {
            seed: 11,
            delay_rate: 0.5,
            max_delay_ticks: 4,
            ..FaultConfig::default()
        };
        let mut link = FaultyLink::new(tx, 0, 1, config);
        let partition = PartitionMap::new();
        let mut counters = CounterSnapshot::default();
        for seq in 0..64u64 {
            let f = Frame::Update {
                node: 0,
                seq,
                var: 0,
                value: 0,
            };
            link.send(&f, seq, &partition, &mut counters).unwrap();
            link.flush_due(seq, &mut counters).unwrap();
        }
        link.flush_due(u64::MAX, &mut counters).unwrap();
        drop(link);
        assert!(counters.delayed > 0);
        assert_eq!(counters.sent, 64, "every frame eventually flushed");
        let mut seqs = Vec::new();
        while let Some(result) = read_frame(&mut rx).unwrap() {
            match result.unwrap() {
                Frame::Update { seq, .. } => seqs.push(seq),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(seqs.len(), 64);
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_ne!(seqs, sorted, "delays produced reordering");
    }
}
