//! One distributed node: a thread owning its process's variables,
//! talking to peers and the controller exclusively through TCP loopback
//! sockets.
//!
//! A node's *view* is a full state vector in which its own variables are
//! authoritative and remote variables its actions read are caches,
//! refreshed only by [`Frame::Update`]/[`Frame::Heartbeat`] frames from
//! their owners. The node never touches shared memory: every byte of
//! cross-node information crosses a socket through the fault-injecting
//! transport.

use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::time::{Duration, Instant};

use nonmask_program::{ActionId, ActionKind, Program, State, StepLog, VarId};

use crate::counters::CounterSnapshot;
use crate::fault::{FaultConfig, FaultyLink, PartitionMap};
use crate::wire::{read_frame, write_frame, Frame, WireError};

/// What one node needs to know about the topology (derived from the
/// refinement by the runtime).
#[derive(Debug, Clone)]
pub(crate) struct NodeSpec {
    /// This node's index, already narrowed to the wire's 16-bit id space
    /// by [`crate::runtime`]'s spec construction — the one place node
    /// counts are validated, so no later conversion can panic.
    pub node: u16,
    /// Actions this node executes.
    pub actions: Vec<ActionId>,
    /// Variables this node owns.
    pub owned: Vec<VarId>,
    /// `(peer, owned vars that peer reads)` — one outgoing data link per
    /// entry.
    pub out_peers: Vec<(usize, Vec<VarId>)>,
    /// Incoming data connections to expect at startup.
    pub expected_incoming: usize,
}

/// Pacing and cadence knobs shared by every node (split out of
/// [`crate::NetConfig`] so the node loop does not depend on
/// controller-only fields).
#[derive(Debug, Clone)]
pub(crate) struct NodeTiming {
    /// Wall-clock duration of one loop tick.
    pub tick: Duration,
    /// Max actions executed per eligible tick.
    pub steps_per_tick: usize,
    /// Ticks a node rests after executing actions (paces the protocol so
    /// report skew stays well below the inter-action gap).
    pub cooldown_ticks: u64,
    /// Heartbeat broadcast period in ticks (`0` disables).
    pub heartbeat_every: u64,
    /// Report period in ticks.
    pub report_every: u64,
    /// Give up on startup dials/accepts after this long (a peer that died
    /// before connecting must not wedge the whole run).
    pub startup_timeout: Duration,
}

/// What reader threads push into the node's inbox.
enum InMsg {
    /// A decoded frame.
    Frame(Frame),
    /// A frame the codec rejected (corruption caught by CRC, bad tag…).
    Rejected,
    /// The controller connection ended — the run is over for this node.
    ControlClosed,
}

/// Pump frames off one socket into the inbox until EOF or a fatal
/// framing error. `is_control` marks the controller link, whose loss
/// must end the node (a peer link merely going quiet is normal).
fn pump(stream: TcpStream, tx: Sender<InMsg>, is_control: bool) {
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader) {
            Ok(None) | Err(_) => break,
            Ok(Some(Ok(frame))) => {
                if tx.send(InMsg::Frame(frame)).is_err() {
                    break;
                }
            }
            Ok(Some(Err(WireError::Oversized { .. }))) => {
                // The frame boundary itself is gone; stop reading.
                let _ = tx.send(InMsg::Rejected);
                break;
            }
            Ok(Some(Err(_))) => {
                if tx.send(InMsg::Rejected).is_err() {
                    break;
                }
            }
        }
    }
    if is_control {
        let _ = tx.send(InMsg::ControlClosed);
    }
}

/// An outgoing data link plus the owned variables its receiver reads.
struct OutLink {
    link: FaultyLink,
    vars: Vec<VarId>,
}

/// Run one node to completion (until [`Frame::Shutdown`] or loss of the
/// controller).
///
/// # Errors
///
/// Startup I/O errors (dial/accept). After startup, peer-link write
/// failures demote the link instead of failing the node, and controller
/// write failures end the node cleanly.
#[allow(clippy::too_many_arguments)] // one call site, in the runtime
pub(crate) fn run_node(
    program: &Program,
    spec: &NodeSpec,
    listener: TcpListener,
    peer_addrs: &[SocketAddr],
    controller_addr: SocketAddr,
    initial_view: State,
    partition: &PartitionMap,
    faults: &FaultConfig,
    timing: &NodeTiming,
    step_log: Option<StepLog>,
) -> io::Result<()> {
    let node = spec.node;
    let (tx, rx) = std::sync::mpsc::channel::<InMsg>();

    // Instrumentation plane: reliable, no fault injection.
    let control = TcpStream::connect(controller_addr)?;
    control.set_nodelay(true)?;
    let mut control_tx = control.try_clone()?;
    write_frame(&mut control_tx, &Frame::Hello { node })?;
    {
        let tx = tx.clone();
        std::thread::spawn(move || pump(control, tx, true));
    }

    // Data plane out: dial every reader of our variables.
    let mut links: Vec<OutLink> = Vec::with_capacity(spec.out_peers.len());
    for (peer, vars) in &spec.out_peers {
        let mut stream = TcpStream::connect(peer_addrs[*peer])?;
        stream.set_nodelay(true)?;
        // The opener bypasses the injector: losing it costs nothing, but a
        // clean handshake keeps the link's fault pattern aligned with the
        // deterministic frame sequence.
        write_frame(&mut stream, &Frame::Hello { node })?;
        links.push(OutLink {
            link: FaultyLink::new(stream, usize::from(spec.node), *peer, faults.clone()),
            vars: vars.clone(),
        });
    }

    // Data plane in: accept the known number of writers, one pump each.
    // Non-blocking with a deadline: a writer that died before dialing
    // must not leave this node wedged in accept (the controller would
    // then block forever joining its thread).
    listener.set_nonblocking(true)?;
    let deadline = Instant::now() + timing.startup_timeout;
    let mut accepted = 0;
    while accepted < spec.expected_incoming {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                stream.set_nodelay(true)?;
                let tx = tx.clone();
                std::thread::spawn(move || pump(stream, tx, false));
                accepted += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer never connected",
                    ));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
    drop(listener);

    main_loop(
        program,
        spec,
        node,
        initial_view,
        &rx,
        &mut control_tx,
        &mut links,
        partition,
        timing,
        step_log,
    );
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn main_loop(
    program: &Program,
    spec: &NodeSpec,
    node: u16,
    mut view: State,
    rx: &Receiver<InMsg>,
    control_tx: &mut TcpStream,
    links: &mut Vec<OutLink>,
    partition: &PartitionMap,
    timing: &NodeTiming,
    step_log: Option<StepLog>,
) {
    let mut counters = CounterSnapshot::default();
    let mut crashed = false;
    let mut shutdown = false;
    let mut lost_controller = false;
    let mut cursor = 0usize;
    let mut cooldown_until = 0u64;
    let mut data_seq = 0u64;
    let mut report_seq = 0u64;
    let mut tick = 0u64;

    let apply = |view: &mut State, var: u32, value: i64| {
        // Out-of-range indices cannot come from CRC-checked frames, but a
        // misbehaving peer must not crash the node.
        if (var as usize) < program.var_count() {
            view.set(VarId::from_index(var as usize), value);
        }
    };

    'node: loop {
        // 1. Drain the inbox.
        loop {
            match rx.try_recv() {
                Ok(InMsg::Frame(frame)) => match frame {
                    Frame::Update { var, value, .. } => {
                        counters.received += 1;
                        if !crashed {
                            apply(&mut view, var, value);
                        }
                    }
                    Frame::Heartbeat { vars, .. } => {
                        counters.received += 1;
                        if !crashed {
                            for (var, value) in vars {
                                apply(&mut view, var, value);
                            }
                        }
                    }
                    Frame::Crash => {
                        crashed = true;
                        counters.crashes += 1;
                    }
                    Frame::Restart { vars } => {
                        // The whole view — owned variables and caches —
                        // comes back arbitrary: the nonmasking scenario.
                        for (var, value) in vars {
                            apply(&mut view, var, value);
                        }
                        crashed = false;
                        cooldown_until = 0;
                    }
                    Frame::Shutdown => shutdown = true,
                    Frame::Hello { .. } | Frame::Report { .. } => {}
                },
                Ok(InMsg::Rejected) => counters.rejected += 1,
                Ok(InMsg::ControlClosed) | Err(TryRecvError::Disconnected) => {
                    lost_controller = true;
                    break;
                }
                Err(TryRecvError::Empty) => break,
            }
        }
        if shutdown || lost_controller {
            break 'node;
        }

        if !crashed {
            // 2. Execute enabled actions, round-robin, paced by cooldown.
            if tick >= cooldown_until && !spec.actions.is_empty() {
                let mut executed = false;
                for _ in 0..timing.steps_per_tick {
                    let k = spec.actions.len();
                    let mut chosen = None;
                    for off in 0..k {
                        let idx = (cursor + off) % k;
                        if program.action(spec.actions[idx]).enabled(&view) {
                            chosen = Some(idx);
                            break;
                        }
                    }
                    let Some(idx) = chosen else { break };
                    cursor = (idx + 1) % k;
                    let action = program.action(spec.actions[idx]);
                    let before = step_log.as_ref().map(|_| view.clone());
                    action.apply(&mut view);
                    if let (Some(log), Some(before)) = (&step_log, before) {
                        log.push(
                            usize::from(node),
                            tick,
                            spec.actions[idx],
                            before,
                            view.clone(),
                        );
                    }
                    counters.steps += 1;
                    if action.kind() != ActionKind::Closure {
                        counters.convergence_steps += 1;
                    }
                    executed = true;
                    for &w in action.writes() {
                        let value = view.get(w);
                        data_seq += 1;
                        let frame = Frame::Update {
                            node,
                            seq: data_seq,
                            var: w.index() as u32,
                            value,
                        };
                        send_to_readers(links, w, &frame, tick, partition, &mut counters);
                    }
                }
                if executed {
                    cooldown_until = tick + timing.cooldown_ticks;
                }
            }

            // 3. Heartbeats: re-broadcast owned values to each reader.
            if timing.heartbeat_every > 0
                && tick.is_multiple_of(timing.heartbeat_every)
                && !links.is_empty()
            {
                counters.heartbeats += 1;
                let mut i = 0;
                while i < links.len() {
                    let vars: Vec<(u32, i64)> = links[i]
                        .vars
                        .iter()
                        .map(|&v| (v.index() as u32, view.get(v)))
                        .collect();
                    data_seq += 1;
                    let frame = Frame::Heartbeat {
                        node,
                        seq: data_seq,
                        vars,
                    };
                    if links[i]
                        .link
                        .send(&frame, tick, partition, &mut counters)
                        .is_err()
                    {
                        links.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
            }

            // 4. Report authoritative values to the controller.
            if timing.report_every > 0 && tick.is_multiple_of(timing.report_every) {
                report_seq += 1;
                counters.reports += 1;
                let report = report_frame(spec, node, report_seq, false, counters, &view);
                if write_frame(control_tx, &report).is_err() {
                    break 'node;
                }
            }
        }

        // 5. Deliver delayed frames whose tick has come (in-flight frames
        // belong to the network, so this runs even while crashed).
        let mut i = 0;
        while i < links.len() {
            if links[i].link.flush_due(tick, &mut counters).is_err() {
                links.swap_remove(i);
            } else {
                i += 1;
            }
        }

        tick += 1;
        std::thread::sleep(timing.tick);
    }

    // Final report: ship the closing counters (best effort).
    if !lost_controller {
        report_seq += 1;
        counters.reports += 1;
        let report = report_frame(spec, node, report_seq, true, counters, &view);
        let _ = write_frame(control_tx, &report);
    }
    // Shut the socket itself down (shared by every clone): this unblocks
    // our own control pump thread, and — once the controller's clones go
    // too — delivers the FIN its reader thread is waiting on. Without
    // this, each side's blocked reader keeps a clone open and neither
    // ever sees EOF.
    let _ = control_tx.shutdown(Shutdown::Both);
}

/// Send `frame` on every link whose receiver reads `w`; dead links are
/// dropped (their node has already shut down).
fn send_to_readers(
    links: &mut Vec<OutLink>,
    w: VarId,
    frame: &Frame,
    tick: u64,
    partition: &PartitionMap,
    counters: &mut CounterSnapshot,
) {
    let mut i = 0;
    while i < links.len() {
        if links[i].vars.contains(&w)
            && links[i]
                .link
                .send(frame, tick, partition, counters)
                .is_err()
        {
            links.swap_remove(i);
            continue;
        }
        i += 1;
    }
}

fn report_frame(
    spec: &NodeSpec,
    node: u16,
    seq: u64,
    last: bool,
    counters: CounterSnapshot,
    view: &State,
) -> Frame {
    Frame::Report {
        node,
        seq,
        last,
        counters,
        vars: spec
            .owned
            .iter()
            .map(|&v| (v.index() as u32, view.get(v)))
            .collect(),
    }
}
