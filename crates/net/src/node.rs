//! One distributed node as a reactor-driven state machine.
//!
//! A node's *view* is a full state vector in which its own variables are
//! authoritative and remote variables its actions read are caches,
//! refreshed only by [`Frame::Update`]/[`Frame::Heartbeat`] frames from
//! their owners. The node never touches shared memory: every byte of
//! cross-node information crosses a socket through the fault-injecting
//! transport.
//!
//! Since the reactor refactor a node is no longer a thread: it is a
//! [`NodeCore`] owned by a shard worker (`crate::reactor`), advanced by
//! two entry points — [`NodeCore::on_frame`] when a frame arrives for it,
//! and [`NodeCore::service`] when a deadline (cooldown expiry, heartbeat,
//! report, delayed-frame flush) comes due. Deadlines are *absolute*
//! ticks derived from wall clock by the reactor, so cadence holds under
//! load instead of stretching with per-iteration sleep drift; the node
//! reports its next deadline via [`NodeCore::next_deadline`] and is left
//! entirely alone between events.

use std::time::Duration;

use nonmask_program::{byzantine_lie_in, ActionKind, Program, State, StepLog, VarId};

use crate::counters::CounterSnapshot;
use crate::fault::{FaultConfig, Injector, PartitionMap};
use crate::wire::Frame;

/// What one node needs to know about the topology (derived from the
/// refinement by the runtime).
#[derive(Debug, Clone)]
pub(crate) struct NodeSpec {
    /// This node's index, already narrowed to the wire's 16-bit id space
    /// by [`crate::runtime`]'s spec construction — the one place node
    /// counts are validated, so no later conversion can panic.
    pub node: u16,
    /// Actions this node executes.
    pub actions: Vec<nonmask_program::ActionId>,
    /// Variables this node owns.
    pub owned: Vec<VarId>,
    /// `(peer, owned vars that peer reads)` — one outgoing logical link
    /// per entry.
    pub out_peers: Vec<(usize, Vec<VarId>)>,
    /// Permanently malicious: the node never executes program actions;
    /// at each heartbeat it overwrites its owned variables with the
    /// seeded stateless lie stream and broadcasts the lies.
    pub byzantine: bool,
}

/// Pacing and cadence knobs shared by every node (split out of
/// [`crate::NetConfig`] so the node machinery does not depend on
/// controller-only fields).
#[derive(Debug, Clone)]
pub(crate) struct NodeTiming {
    /// Wall-clock duration of one tick (the unit all deadlines are in).
    pub tick: Duration,
    /// Max actions executed per eligible service.
    pub steps_per_tick: usize,
    /// Ticks a node rests after executing actions (paces the protocol so
    /// report skew stays well below the inter-action gap).
    pub cooldown_ticks: u64,
    /// Heartbeat broadcast period in ticks (`0` disables).
    pub heartbeat_every: u64,
    /// Minimum ticks between state reports (reports are additionally
    /// gated on the state actually having changed).
    pub report_every: u64,
    /// Give up on startup dials/accepts after this long (a peer shard
    /// that died before connecting must not wedge the whole run).
    pub startup_timeout: Duration,
    /// Seed of the stateless lie stream Byzantine nodes draw from
    /// ([`nonmask_program::byzantine_lie_in`], keyed per node by its
    /// heartbeat sequence number — so the malicious message sequence is
    /// invariant under shard count, worker count, and batching).
    pub byzantine_seed: u64,
}

/// One outgoing logical link: the per-link fault injector plus the index
/// of the shard-pair stream (within the owning shard's data connections)
/// that carries its bytes.
#[derive(Debug)]
struct OutLink {
    injector: Injector,
    vars: Vec<VarId>,
    receiver: u16,
    conn: usize,
}

/// The per-node protocol state machine.
#[derive(Debug)]
pub(crate) struct NodeCore<'a> {
    program: &'a Program,
    spec: &'a NodeSpec,
    timing: &'a NodeTiming,
    step_log: Option<StepLog>,
    view: State,
    /// This node's transport/protocol counters (the report payload).
    pub counters: CounterSnapshot,
    crashed: bool,
    shutting: bool,
    finalized: bool,
    cursor: usize,
    /// Earliest tick the node may execute actions again (cooldown).
    next_exec_tick: u64,
    /// Next heartbeat deadline (absolute tick; staggered per node so a
    /// large population does not burst every period boundary at once).
    next_hb_tick: u64,
    /// Tick of the last periodic report.
    last_report_tick: u64,
    /// An authoritative variable changed since the last report.
    dirty: bool,
    data_seq: u64,
    report_seq: u64,
    links: Vec<OutLink>,
}

impl<'a> NodeCore<'a> {
    /// Build the state machine for one node. `conn_of_peer` maps a peer
    /// node index to the shard-stream index its frames travel on.
    pub fn new(
        program: &'a Program,
        spec: &'a NodeSpec,
        timing: &'a NodeTiming,
        initial_view: State,
        faults: &FaultConfig,
        conn_of_peer: impl Fn(usize) -> usize,
        step_log: Option<StepLog>,
    ) -> Self {
        let links = spec
            .out_peers
            .iter()
            .map(|(peer, vars)| OutLink {
                injector: Injector::new(usize::from(spec.node), *peer, faults.clone()),
                vars: vars.clone(),
                receiver: *peer as u16,
                conn: conn_of_peer(*peer),
            })
            .collect();
        let next_hb_tick = if timing.heartbeat_every > 0 {
            // Stagger heartbeat phases across nodes: cadence per node is
            // identical, but a 10^4-node population spreads its beats
            // across the period instead of bursting on every boundary.
            u64::from(spec.node) % timing.heartbeat_every
        } else {
            0
        };
        NodeCore {
            program,
            spec,
            timing,
            step_log,
            view: initial_view,
            counters: CounterSnapshot::default(),
            crashed: false,
            shutting: false,
            finalized: false,
            cursor: 0,
            next_exec_tick: 0,
            next_hb_tick,
            last_report_tick: 0,
            dirty: false,
            data_seq: 0,
            report_seq: 0,
            links,
        }
    }

    fn apply_var(&mut self, var: u32, value: i64) {
        // Out-of-range indices cannot come from CRC-checked frames, but a
        // misbehaving peer must not crash the node.
        if (var as usize) < self.program.var_count() {
            self.view.set(VarId::from_index(var as usize), value);
        }
    }

    /// Apply one incoming frame. Returns `true` when the node's
    /// *authoritative* state changed (a restart) — the shard bumps its
    /// freshness generation on that signal; cache refreshes from peers do
    /// not count (they never appear in reports).
    pub fn on_frame(&mut self, frame: Frame) -> bool {
        match frame {
            Frame::Update { var, value, .. } => {
                self.counters.received += 1;
                if !self.crashed {
                    self.apply_var(var, value);
                }
                false
            }
            Frame::Heartbeat { vars, .. } => {
                self.counters.received += 1;
                if !self.crashed {
                    for (var, value) in vars {
                        self.apply_var(var, value);
                    }
                }
                false
            }
            Frame::Crash => {
                self.crashed = true;
                self.counters.crashes += 1;
                false
            }
            Frame::Restart { vars } => {
                // The whole view — owned variables and caches — comes
                // back arbitrary: the nonmasking scenario. Large views
                // arrive as several chunks; each applies the same way.
                for (var, value) in vars {
                    self.apply_var(var, value);
                }
                self.crashed = false;
                self.next_exec_tick = 0;
                self.dirty = true;
                true
            }
            Frame::Shutdown => {
                self.shutting = true;
                false
            }
            // Stray frames on the data plane (opener Hellos, misrouted
            // control traffic) are ignored, exactly as the thread runtime
            // ignored them.
            _ => false,
        }
    }

    /// Count one frame the codec rejected on a stream carrying this
    /// node's traffic (corruption caught by CRC, bad tag…).
    pub fn on_rejected(&mut self) {
        self.counters.rejected += 1;
    }

    /// True once the node has seen [`Frame::Shutdown`].
    pub fn is_shutting(&self) -> bool {
        self.shutting
    }

    /// Route `frame` to every link whose receiver reads `w`, through each
    /// link's fault injector, batching wire bytes into the owning shard
    /// stream's out-buffer.
    fn send_to_readers(
        &mut self,
        w: VarId,
        frame: &Frame,
        tick: u64,
        partition: &PartitionMap,
        outs: &mut [Vec<u8>],
    ) {
        for link in &mut self.links {
            if !link.vars.contains(&w) {
                continue;
            }
            let routed = Frame::Routed {
                to: link.receiver,
                frame: Box::new(frame.clone()),
            };
            // Encoding cannot fail here (single-var Update, no nesting);
            // if it ever did, treat it as a dropped frame.
            if link
                .injector
                .admit(
                    &routed,
                    tick,
                    partition,
                    &mut self.counters,
                    &mut outs[link.conn],
                )
                .is_err()
            {
                self.counters.dropped += 1;
            }
        }
    }

    /// Execute enabled actions, round-robin, paced by the cooldown.
    fn try_exec(&mut self, tick: u64, partition: &PartitionMap, outs: &mut [Vec<u8>]) -> u64 {
        if tick < self.next_exec_tick || self.spec.actions.is_empty() {
            return 0;
        }
        let mut changes = 0u64;
        let mut executed = false;
        for _ in 0..self.timing.steps_per_tick {
            let k = self.spec.actions.len();
            let mut chosen = None;
            for off in 0..k {
                let idx = (self.cursor + off) % k;
                if self
                    .program
                    .action(self.spec.actions[idx])
                    .enabled(&self.view)
                {
                    chosen = Some(idx);
                    break;
                }
            }
            let Some(idx) = chosen else { break };
            self.cursor = (idx + 1) % k;
            let action_id = self.spec.actions[idx];
            let action = self.program.action(action_id);
            let before = self.step_log.as_ref().map(|_| self.view.clone());
            action.apply(&mut self.view);
            if let (Some(log), Some(before)) = (&self.step_log, before) {
                log.push(
                    usize::from(self.spec.node),
                    tick,
                    action_id,
                    before,
                    self.view.clone(),
                );
            }
            self.counters.steps += 1;
            if action.kind() != ActionKind::Closure {
                self.counters.convergence_steps += 1;
            }
            executed = true;
            let writes: Vec<VarId> = action.writes().to_vec();
            for w in writes {
                let value = self.view.get(w);
                self.data_seq += 1;
                let frame = Frame::Update {
                    node: self.spec.node,
                    seq: self.data_seq,
                    var: w.index() as u32,
                    value,
                };
                self.send_to_readers(w, &frame, tick, partition, outs);
                changes += 1;
            }
        }
        if executed {
            // `max(1)` keeps the event-driven loop from executing an
            // unbounded number of bursts within one tick when
            // cooldown_ticks is 0 (the thread runtime was implicitly
            // bounded to one burst per loop iteration).
            self.next_exec_tick = tick + self.timing.cooldown_ticks.max(1);
            self.dirty = true;
        }
        changes
    }

    /// Drive all due work at `tick`: action execution, heartbeats, the
    /// (dirty-gated) periodic report, and delayed-frame flushes. Returns
    /// the number of authoritative changes made, for the shard's
    /// freshness generation.
    pub fn service(
        &mut self,
        tick: u64,
        partition: &PartitionMap,
        outs: &mut [Vec<u8>],
        control: &mut Vec<u8>,
    ) -> u64 {
        if self.finalized || self.shutting {
            return 0;
        }
        let mut changes = 0u64;
        if !self.crashed {
            if !self.spec.byzantine {
                changes += self.try_exec(tick, partition, outs);
            }

            // Heartbeats: re-broadcast owned values to each reader.
            if self.timing.heartbeat_every > 0
                && tick >= self.next_hb_tick
                && !self.links.is_empty()
            {
                // A Byzantine node refreshes its owned variables from
                // the stateless lie stream before broadcasting: lies
                // travel as ordinary heartbeats, keyed by the heartbeat
                // sequence number — not the tick — so the k-th lie is
                // identical for every shard count and batching.
                if self.spec.byzantine {
                    let k = self.counters.heartbeats;
                    for i in 0..self.spec.owned.len() {
                        let v = self.spec.owned[i];
                        let lie = byzantine_lie_in(
                            self.program.var(v).domain(),
                            self.timing.byzantine_seed,
                            u64::from(self.spec.node),
                            v.index() as u64,
                            k,
                        );
                        self.view.set(v, lie);
                    }
                    self.dirty = true;
                    changes += 1;
                }
                self.counters.heartbeats += 1;
                for i in 0..self.links.len() {
                    let vars: Vec<(u32, i64)> = self.links[i]
                        .vars
                        .iter()
                        .map(|&v| (v.index() as u32, self.view.get(v)))
                        .collect();
                    self.data_seq += 1;
                    let routed = Frame::Routed {
                        to: self.links[i].receiver,
                        frame: Box::new(Frame::Heartbeat {
                            node: self.spec.node,
                            seq: self.data_seq,
                            vars,
                        }),
                    };
                    let link = &mut self.links[i];
                    if link
                        .injector
                        .admit(
                            &routed,
                            tick,
                            partition,
                            &mut self.counters,
                            &mut outs[link.conn],
                        )
                        .is_err()
                    {
                        self.counters.dropped += 1;
                    }
                }
                // Absolute cadence: skip missed beats rather than burst.
                while self.next_hb_tick <= tick {
                    self.next_hb_tick += self.timing.heartbeat_every;
                }
            }

            // Report authoritative values to the controller — only when
            // something changed (the controller already holds the initial
            // state, and re-sending identical values at 10^4 nodes would
            // drown the control plane).
            if self.timing.report_every > 0
                && self.dirty
                && tick >= self.last_report_tick + self.timing.report_every
            {
                self.emit_report(false, control);
                self.last_report_tick = tick;
                self.dirty = false;
            }
        }

        // Deliver delayed frames whose tick has come (in-flight frames
        // belong to the network, so this runs even while crashed).
        for link in &mut self.links {
            link.injector
                .flush_due(tick, &mut self.counters, &mut outs[link.conn]);
        }
        changes
    }

    /// The earliest tick at which this node needs service again, or
    /// `None` when it is fully event-driven idle (nothing due until a
    /// frame arrives).
    pub fn next_deadline(&self) -> Option<u64> {
        if self.finalized || self.shutting {
            return None;
        }
        let mut due: Option<u64> = None;
        let mut consider = |t: u64| due = Some(due.map_or(t, |d: u64| d.min(t)));
        if !self.crashed {
            if !self.spec.byzantine && !self.spec.actions.is_empty() && self.any_enabled() {
                consider(self.next_exec_tick);
            }
            if self.timing.heartbeat_every > 0 && !self.links.is_empty() {
                consider(self.next_hb_tick);
            }
            if self.timing.report_every > 0 && self.dirty {
                consider(self.last_report_tick + self.timing.report_every);
            }
        }
        for link in &self.links {
            if let Some(t) = link.injector.next_due() {
                consider(t);
            }
        }
        due
    }

    fn any_enabled(&self) -> bool {
        self.spec
            .actions
            .iter()
            .any(|&a| self.program.action(a).enabled(&self.view))
    }

    /// Emit the final (`last = true`) report into the control buffer.
    pub fn finalize(&mut self, control: &mut Vec<u8>) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        self.emit_report(true, control);
    }

    fn emit_report(&mut self, last: bool, control: &mut Vec<u8>) {
        self.report_seq += 1;
        self.counters.reports += 1;
        let frame = Frame::Report {
            node: self.spec.node,
            seq: self.report_seq,
            last,
            counters: self.counters,
            vars: self
                .spec
                .owned
                .iter()
                .map(|&v| (v.index() as u32, self.view.get(v)))
                .collect(),
        };
        // Reports never exceed MAX_PAYLOAD (validate() bounds per-node
        // owned variables); treat the impossible encode failure as a
        // skipped report rather than a panic.
        let _ = frame.encode_into(control);
    }
}
