//! Byzantine nodes over real TCP loopback: permanently malicious nodes
//! broadcast seeded arbitrary values forever, and the runtime still
//! stabilizes on the protocol's safe region — the containment property
//! the checker certifies symbolically, observed on sockets.
//!
//! The lie stream is a stateless function of (seed, node, slot,
//! heartbeat-sequence), so the k-th lie a node tells is identical for
//! every shard count and batching; the tests here pin that end to end
//! by checking the liar's final reported value against the stream at
//! its own heartbeat counter.

use std::time::Duration;

use nonmask_graph::Topology;
use nonmask_net::{run, DetectorConfig, FaultConfig, NetConfig, NetReport};
use nonmask_program::byzantine_lie_in;
use nonmask_protocols::MinPlusOne;

const LIE_SEED: u64 = 0xB12A;

fn byz_config(seed: u64, byzantine: Vec<usize>, shards: usize) -> NetConfig {
    NetConfig {
        seed,
        faults: FaultConfig::default(),
        byzantine,
        byzantine_seed: LIE_SEED,
        shards,
        detector: DetectorConfig {
            stable_for: Duration::from_millis(120),
            ..DetectorConfig::default()
        },
        timeout: Duration::from_secs(60),
        ..NetConfig::default()
    }
}

fn run_line_with_liar(shards: usize) -> (MinPlusOne, NetReport) {
    // line(6) with the root at 0 and the liar at 5: the safe set is
    // [T,T,T,F,F,F] and the containment radius 2.
    let topo = Topology::line(6);
    let proto = MinPlusOne::with_byzantine(&topo, 0, &[5]);
    let config = byz_config(7, vec![5], shards);
    let initial = proto.program().min_state();
    let report = run(proto.program(), &initial, &proto.safe_goal(), &config).expect("run starts");
    (proto, report)
}

#[test]
fn safe_region_stabilizes_despite_a_liar() {
    let (proto, report) = run_line_with_liar(0);
    assert!(
        report.converged,
        "safe region did not converge: {}",
        report.render()
    );
    let legit = proto.legit_distances();
    for (j, safe) in proto.safe_set().iter().enumerate() {
        if *safe {
            assert_eq!(
                report.final_state.get(proto.dist_var(j)) as u64,
                legit[j].unwrap(),
                "safe node {j} holds its legitimate distance"
            );
        }
    }
}

/// The liar's final reported value must be the stateless stream at its
/// own heartbeat counter — for every shard count. This is what makes
/// the adversary shard-invariant: the k-th lie depends only on
/// (seed, node, slot, k), never on which worker serviced the node.
#[test]
fn lie_stream_is_pinned_to_the_heartbeat_counter_across_shard_counts() {
    for shards in [1, 4, 7] {
        let (proto, report) = run_line_with_liar(shards);
        let liar = 5usize;
        let hb = report.nodes[liar].counters.heartbeats;
        assert!(
            hb > 0,
            "the liar heartbeated at least once (shards {shards})"
        );
        let var = proto.dist_var(liar);
        let expect = byzantine_lie_in(
            proto.program().var(var).domain(),
            LIE_SEED,
            liar as u64,
            var.index() as u64,
            hb - 1,
        );
        assert_eq!(
            report.final_state.get(var),
            expect,
            "liar's final value is lie #{} of the stream (shards {shards})",
            hb - 1
        );
        // And the liar executed no program action at any shard count.
        assert_eq!(report.nodes[liar].counters.steps, 0);
    }
}

/// A goal that reads the liars' own variables can never stabilize —
/// lies change at every heartbeat. The run must time out rather than
/// converge, and shut down cleanly (quiescence gates lying off).
#[test]
fn a_goal_reading_liar_variables_times_out_cleanly() {
    let topo = Topology::line(3);
    // Byzantine-free *program*: the invariant pins all three distances.
    // The net marks 1 and 2 as liars, so the pinned values flap forever.
    let proto = MinPlusOne::new(&topo, 0);
    let config = NetConfig {
        timeout: Duration::from_millis(900),
        ..byz_config(3, vec![1, 2], 2)
    };
    let initial = proto.program().min_state();
    let report = run(proto.program(), &initial, &proto.invariant(), &config).expect("run starts");
    assert!(report.timed_out, "lied-about variables cannot stabilize");
    assert_eq!(report.nodes[1].counters.steps, 0, "liars never step");
    assert_eq!(report.nodes[2].counters.steps, 0, "liars never step");
}

#[test]
fn byzantine_node_out_of_range_is_rejected() {
    let topo = Topology::line(3);
    let proto = MinPlusOne::new(&topo, 0);
    let config = byz_config(1, vec![9], 1);
    let initial = proto.program().min_state();
    let err = run(proto.program(), &initial, &proto.invariant(), &config).unwrap_err();
    assert!(err.to_string().contains("byzantine node 9"), "{err}");
}
