//! End-to-end tests: real protocols over real TCP loopback sockets,
//! converging under injected faults and crash-restarts.
//!
//! Seeds are fixed so the fault schedule on every link is deterministic;
//! wall-clock latencies still vary run to run, so assertions are on
//! outcomes (convergence, episode structure, counters), never on times.

use std::time::Duration;

use nonmask_net::{run, FaultConfig, NetConfig, NetEvent, NetReport};
use nonmask_program::{Predicate, Program, State};
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::Tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// ≥20% frame loss plus corruption, duplication, and delay/reorder.
fn hostile(seed: u64) -> FaultConfig {
    FaultConfig::hostile(seed, 0.25)
}

fn config(seed: u64, events: Vec<NetEvent>) -> NetConfig {
    NetConfig {
        seed,
        faults: hostile(seed),
        timeout: Duration::from_secs(60),
        events,
        ..NetConfig::default()
    }
}

fn crash_restart(node: usize) -> Vec<NetEvent> {
    vec![NetEvent::CrashRestart {
        node,
        at_least: Duration::ZERO,
        down: Duration::from_millis(30),
    }]
}

fn run_protocol(
    program: &Program,
    goal: &Predicate,
    seed: u64,
    events: Vec<NetEvent>,
) -> NetReport {
    run_protocol_journaled(program, goal, seed, events).0
}

/// Like [`run_protocol`], but also returns the parsed journal so tests
/// can assert on the *recorded* fault and episode lifecycle instead of
/// only the summary report.
fn run_protocol_journaled(
    program: &Program,
    goal: &Predicate,
    seed: u64,
    events: Vec<NetEvent>,
) -> (NetReport, Vec<nonmask_obs::Record>) {
    let initial = program.random_state(&mut StdRng::seed_from_u64(seed));
    let (journal, buffer) = nonmask_obs::Journal::memory();
    let config = NetConfig {
        journal,
        ..config(seed, events)
    };
    let report = run(program, &initial, goal, &config).expect("run starts");
    let records = nonmask_obs::parse_journal(&buffer.contents()).expect("journal is schema-clean");
    (report, records)
}

/// Position of the first journal record matching `pred`.
fn position_of(
    records: &[nonmask_obs::Record],
    pred: impl Fn(&nonmask_obs::Event) -> bool,
) -> Option<usize> {
    records.iter().position(|r| pred(&r.event))
}

fn assert_converged(report: &NetReport, episodes: usize) {
    assert!(report.converged, "did not converge: {}", report.render());
    assert!(!report.timed_out);
    assert_eq!(report.episodes.len(), episodes, "{}", report.render());
    for e in &report.episodes {
        let latency = e.latency().expect("converged episode has a latency");
        assert!(latency > Duration::ZERO);
    }
}

#[test]
fn token_ring_converges_under_loss_and_crash_restart() {
    use nonmask_obs::Event;

    let ring = TokenRing::new(5, 5);
    let (report, records) =
        run_protocol_journaled(ring.program(), &ring.invariant(), 42, crash_restart(2));
    assert_converged(&report, 2);
    assert!(ring.invariant().holds(&report.final_state));
    assert_eq!(ring.privileges(&report.final_state).len(), 1);

    // The faults actually fired and the nodes actually used the network.
    let total: u64 = report.nodes.iter().map(|n| n.counters.dropped).sum();
    assert!(total > 0, "no frames dropped at 25% loss?");
    let corrupted: u64 = report.nodes.iter().map(|n| n.counters.corrupted).sum();
    let rejected: u64 = report.nodes.iter().map(|n| n.counters.rejected).sum();
    assert!(corrupted > 0, "no frames corrupted?");
    assert!(
        rejected > 0,
        "corrupted frames must be rejected by the codec"
    );
    assert!(report.nodes.iter().all(|n| n.counters.sent > 0));
    assert!(report.nodes.iter().all(|n| n.counters.received > 0));
    // Exactly the crashed node records a crash.
    assert_eq!(report.nodes[2].counters.crashes, 1);
    let crashes: u64 = report.nodes.iter().map(|n| n.counters.crashes).sum();
    assert_eq!(crashes, 1);

    // The journal records the whole crash-restart lifecycle, in causal
    // order: crash fault, restart fault, episode open, episode converged.
    let crash = position_of(&records, |e| {
        matches!(e, Event::Fault { kind, detail } if kind == "crash" && detail.contains("node 2"))
    })
    .expect("crash fault journaled");
    let restart = position_of(&records, |e| {
        matches!(e, Event::Fault { kind, detail } if kind == "restart" && detail.contains("node 2"))
    })
    .expect("restart fault journaled");
    let opened = position_of(
        &records,
        |e| matches!(e, Event::EpisodeStarted { label } if label == "crash-restart node 2"),
    )
    .expect("crash episode opened");
    let converged = position_of(
        &records,
        |e| matches!(e, Event::EpisodeConverged { label, .. } if label == "crash-restart node 2"),
    )
    .expect("crash episode converged");
    assert!(
        crash < restart && restart < converged && opened < converged,
        "lifecycle out of order: crash@{crash} restart@{restart} opened@{opened} converged@{converged}"
    );
    // One EpisodeConverged per reported episode — detector and journal agree.
    let journaled_convergences = records
        .iter()
        .filter(|r| matches!(&r.event, Event::EpisodeConverged { .. }))
        .count();
    assert_eq!(journaled_convergences, report.episodes.len());
}

#[test]
fn diffusing_computation_converges_under_loss_and_crash_restart() {
    let dc = DiffusingComputation::new(&Tree::binary(7));
    let report = run_protocol(dc.program(), &dc.invariant(), 1337, crash_restart(3));
    assert_converged(&report, 2);
    assert!(dc.invariant().holds(&report.final_state));
    assert_eq!(report.nodes[3].counters.crashes, 1);
    assert!(report.nodes.iter().map(|n| n.counters.dropped).sum::<u64>() > 0);
}

#[test]
fn token_ring_survives_partition_and_heals() {
    use nonmask_obs::Event;

    let ring = TokenRing::new(4, 4);
    let events = vec![NetEvent::Partition {
        groups: vec![0, 0, 1, 1],
        at_least: Duration::ZERO,
        heal_after: Duration::from_millis(40),
    }];
    let (report, records) = run_protocol_journaled(ring.program(), &ring.invariant(), 7, events);
    assert_converged(&report, 2);
    assert_eq!(report.episodes[1].label, "partition heal");
    assert!(ring.invariant().holds(&report.final_state));

    // Journal lifecycle: the partition splits, later heals, and the heal
    // opens an episode that eventually converges — in that order.
    let split = position_of(
        &records,
        |e| matches!(e, Event::Fault { kind, .. } if kind == "partition"),
    )
    .expect("partition fault journaled");
    let heal = position_of(
        &records,
        |e| matches!(e, Event::Fault { kind, .. } if kind == "heal"),
    )
    .expect("heal fault journaled");
    let opened = position_of(
        &records,
        |e| matches!(e, Event::EpisodeStarted { label } if label == "partition heal"),
    )
    .expect("heal episode opened");
    let converged = position_of(
        &records,
        |e| matches!(e, Event::EpisodeConverged { label, .. } if label == "partition heal"),
    )
    .expect("heal episode converged");
    assert!(
        split < heal && heal <= opened && opened < converged,
        "lifecycle out of order: split@{split} heal@{heal} opened@{opened} converged@{converged}"
    );
}

#[test]
fn report_json_is_machine_readable() {
    let ring = TokenRing::new(3, 3);
    let report = run_protocol(ring.program(), &ring.invariant(), 5, crash_restart(0));
    let json = report.to_json();
    // Structure: episodes with latencies, per-node counters, final state.
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"converged\":true"));
    assert!(json.contains("\"episodes\":[{\"label\":\"initial convergence\""));
    assert!(json.contains("\"label\":\"crash-restart node 0\""));
    assert!(json.contains("\"latency_ms\":"));
    assert!(json.contains("\"final_state\":["));
    for node in 0..3 {
        assert!(json.contains(&format!("{{\"node\":{node},\"counters\":{{\"sent\":")));
    }
    for field in ["dropped", "corrupted", "rejected", "convergence_steps"] {
        assert!(json.contains(&format!("\"{field}\":")), "missing {field}");
    }
}

#[test]
fn faultless_run_reports_clean_counters() {
    let ring = TokenRing::new(3, 3);
    let initial = ring.program().state_from([2, 0, 1]).unwrap();
    let config = NetConfig {
        timeout: Duration::from_secs(60),
        ..NetConfig::default()
    };
    let report = run(ring.program(), &initial, &ring.invariant(), &config).unwrap();
    assert_converged(&report, 1);
    for n in &report.nodes {
        assert_eq!(n.counters.dropped, 0);
        assert_eq!(n.counters.corrupted, 0);
        assert_eq!(n.counters.rejected, 0);
        assert_eq!(n.counters.crashes, 0);
        assert_eq!(n.counters.sent, n.counters.sent.max(1));
    }
    // A lossless network delivers exactly what was sent.
    let sent: u64 = report.nodes.iter().map(|n| n.counters.sent).sum();
    let received: u64 = report.nodes.iter().map(|n| n.counters.received).sum();
    assert_eq!(sent, received);
}

#[test]
fn unrefinable_or_oversized_inputs_error_cleanly() {
    use nonmask_net::NetError;
    use nonmask_program::{Domain, ProcessId};
    // Unbounded domains cannot be crash-restarted into arbitrary states.
    let mut builder = Program::builder("unbounded");
    let x = builder.var_of("x", Domain::Unbounded, ProcessId(0));
    builder.convergence_action(
        "dec",
        [x],
        [x],
        move |s: &State| s.get(x) > 0,
        move |s| {
            let v = s.get(x);
            s.set(x, v - 1);
        },
    );
    let program = builder.build();
    let goal = Predicate::new("zero", [x], move |s: &State| s.get(x) == 0);
    let initial = program.state_from([3]).unwrap();
    let err = run(&program, &initial, &goal, &NetConfig::default()).unwrap_err();
    assert!(matches!(err, NetError::Unbounded), "{err}");

    // Events must reference real nodes.
    let ring = TokenRing::new(3, 3);
    let config = NetConfig {
        events: vec![NetEvent::CrashRestart {
            node: 9,
            at_least: Duration::ZERO,
            down: Duration::ZERO,
        }],
        ..NetConfig::default()
    };
    let initial = ring.initial_state();
    let err = run(ring.program(), &initial, &ring.invariant(), &config).unwrap_err();
    assert!(matches!(err, NetError::BadEvent(_)), "{err}");
}

/// A journaled run records the controller's view — hello frames, the
/// detector episode lifecycle, and final per-node counters — and the
/// journal parses back schema-clean.
#[test]
fn journal_captures_episodes_frames_and_counters() {
    use nonmask_obs::{parse_journal, Event, Journal};

    let ring = TokenRing::new(3, 3);
    let (journal, buffer) = Journal::memory();
    let config = NetConfig {
        journal,
        timeout: Duration::from_secs(60),
        ..NetConfig::default()
    };
    let initial = ring.initial_state();
    let report = run(ring.program(), &initial, &ring.invariant(), &config).expect("run starts");
    assert!(report.converged, "{}", report.render());

    let records = parse_journal(&buffer.contents()).expect("journal is schema-clean");
    assert!(records
        .iter()
        .any(|r| matches!(&r.event, Event::Frame { kind, .. } if kind == "hello")));
    assert!(records.iter().any(
        |r| matches!(&r.event, Event::EpisodeStarted { label } if label == "initial convergence")
    ));
    assert!(records
        .iter()
        .any(|r| matches!(&r.event, Event::EpisodeConverged { .. })));
    assert!(records.iter().any(
        |r| matches!(&r.event, Event::Counter { scope, name, .. } if scope == "net-node:0" && name == "sent")
    ));
}

/// Node ids are 16-bit on the wire; a program with more than 65535
/// processes must be rejected up front (`NetError::TooManyNodes`), never
/// panic in a worker thread mid-run.
#[test]
fn more_than_u16_max_nodes_errors_instead_of_panicking() {
    use nonmask_net::NetError;
    use nonmask_program::{Domain, ProcessId};

    let n = usize::from(u16::MAX) + 2;
    let mut builder = Program::builder("too-wide");
    let first = builder.var_of("x.0", Domain::range(0, 1), ProcessId(0));
    for p in 1..n {
        builder.var_of(format!("x.{p}"), Domain::range(0, 1), ProcessId(p));
    }
    let program = builder.build();
    let goal = Predicate::new("first-zero", [first], move |s: &State| s.get(first) == 0);
    let initial = program.state_from(vec![0; n]).unwrap();
    let err = run(&program, &initial, &goal, &NetConfig::default()).unwrap_err();
    assert!(
        matches!(err, NetError::TooManyNodes(count) if count == n),
        "{err}"
    );
}
