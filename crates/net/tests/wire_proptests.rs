//! Property-based tests of the wire codec: arbitrary frames roundtrip
//! bit-exactly, and corrupted byte streams are *rejected with errors* —
//! the decoder must never panic and never deliver a damaged frame.

use nonmask_net::wire::{read_frame, write_frame, Frame, WireError, MAX_PAYLOAD};
use nonmask_net::CounterSnapshot;
use proptest::prelude::*;
use proptest::strategy::{BoxedStrategy, Just};

fn any_vars() -> BoxedStrategy<Vec<(u32, i64)>> {
    proptest::collection::vec((any::<u32>(), any::<i64>()), 0..24)
}

fn any_counters() -> BoxedStrategy<CounterSnapshot> {
    proptest::collection::vec(any::<u64>(), CounterSnapshot::WORDS).prop_map(|words| {
        let mut array = [0u64; CounterSnapshot::WORDS];
        array.copy_from_slice(&words);
        CounterSnapshot::from_words(array)
    })
}

fn any_frame() -> BoxedStrategy<Frame> {
    prop_oneof![
        any::<u16>().prop_map(|node| Frame::Hello { node }),
        (any::<u16>(), any::<u64>(), any::<u32>(), any::<i64>()).prop_map(
            |(node, seq, var, value)| Frame::Update {
                node,
                seq,
                var,
                value
            }
        ),
        (any::<u16>(), any::<u64>(), any_vars()).prop_map(|(node, seq, vars)| Frame::Heartbeat {
            node,
            seq,
            vars
        }),
        (
            any::<u16>(),
            any::<u64>(),
            any::<bool>(),
            any_counters(),
            any_vars()
        )
            .prop_map(|(node, seq, last, counters, vars)| Frame::Report {
                node,
                seq,
                last,
                counters,
                vars
            }),
        Just(Frame::Crash),
        any_vars().prop_map(|vars| Frame::Restart { vars }),
        Just(Frame::Shutdown),
        (any::<u16>(), any::<u64>())
            .prop_map(|(shard, generation)| Frame::Pulse { shard, generation }),
    ]
}

/// Frames including one level of `Routed` wrapping (the shard-stream
/// envelope); `any_frame` stays flat because `Routed` may not nest.
fn any_wire_frame() -> BoxedStrategy<Frame> {
    prop_oneof![
        any_frame(),
        (any::<u16>(), any_frame()).prop_map(|(to, frame)| Frame::Routed {
            to,
            frame: Box::new(frame)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Encode → decode is the identity for every frame shape.
    #[test]
    fn frames_roundtrip(frame in any_wire_frame()) {
        let wire = frame.encode().expect("bounded frames encode");
        // The payload sits between the 4-byte length prefix and nothing:
        // decode consumes tag + body + trailing checksum.
        let decoded = Frame::decode(&wire[4..]).expect("own encoding decodes");
        prop_assert_eq!(decoded, frame);
    }

    /// Stream roundtrip: frames written back-to-back come out in order.
    #[test]
    fn streams_roundtrip(frames in proptest::collection::vec(any_wire_frame(), 1..8)) {
        let mut buf = Vec::new();
        for frame in &frames {
            write_frame(&mut buf, frame).expect("write to Vec");
        }
        let mut reader = &buf[..];
        for frame in &frames {
            let got = read_frame(&mut reader)
                .expect("io ok")
                .expect("frame present")
                .expect("valid frame");
            prop_assert_eq!(&got, frame);
        }
        prop_assert!(read_frame(&mut reader).expect("io ok").is_none(), "clean EOF");
    }

    /// Truncating the payload anywhere yields an error, not a panic and
    /// not a frame.
    #[test]
    fn truncated_payloads_are_rejected(frame in any_wire_frame(), cut in any::<u16>()) {
        let wire = frame.encode().expect("encodes");
        let payload = &wire[4..];
        let cut = usize::from(cut) % payload.len();
        prop_assert!(Frame::decode(&payload[..cut]).is_err());
    }

    /// Flipping any single bit of the payload is detected (CRC-32 detects
    /// all 1-bit errors) or, if it hits the length-sensitive var count,
    /// surfaces as a structural error — never a silently altered frame.
    #[test]
    fn bit_flips_are_rejected(frame in any_wire_frame(), pick in (any::<u32>(), 0u8..8)) {
        let wire = frame.encode().expect("encodes");
        let (byte, bit) = pick;
        let mut payload = wire[4..].to_vec();
        let idx = (byte as usize) % payload.len();
        payload[idx] ^= 1 << bit;
        prop_assert!(Frame::decode(&payload).is_err());
    }

    /// Random garbage never panics the decoder; it may only ever produce
    /// a frame if it happens to carry a valid checksum (astronomically
    /// unlikely — assert rejection outright for byte soup this small).
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert!(Frame::decode(&bytes).is_err());
    }

    /// A length prefix beyond the payload cap is refused before any
    /// allocation, as a fatal-for-stream `Oversized` error.
    #[test]
    fn oversized_length_prefixes_are_refused(extra in 1u32..=u32::MAX - MAX_PAYLOAD as u32) {
        let len = MAX_PAYLOAD as u32 + extra;
        let mut buf = Vec::from(len.to_be_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let mut reader = &buf[..];
        let result = read_frame(&mut reader).expect("io ok").expect("something read");
        prop_assert!(matches!(result, Err(WireError::Oversized { .. })), "{result:?}");
    }

    /// A stream cut mid-frame surfaces a `Truncated` framing error — the
    /// peer died with a frame in flight — while a cut at a frame boundary
    /// (zero bytes kept) is a clean end of stream. Silent `None` for a
    /// partial frame hid real disconnects from every caller.
    #[test]
    fn mid_frame_eof_is_a_framing_error(frame in any_wire_frame(), keep in any::<u16>()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).expect("write to Vec");
        let keep = usize::from(keep) % buf.len(); // strictly shorter
        let mut reader = &buf[..keep];
        let got = read_frame(&mut reader).expect("io ok");
        if keep == 0 {
            prop_assert!(got.is_none(), "boundary EOF is clean: {got:?}");
        } else {
            prop_assert!(
                matches!(got, Some(Err(WireError::Truncated { .. }))),
                "mid-frame EOF must be loud: {got:?}"
            );
        }
    }
}
