//! Reactor-runtime integration tests: typed surfacing of a dead worker,
//! wall-clock heartbeat cadence, and shard-count invariance of the
//! logical outcome.

use std::time::Duration;

use nonmask_net::{run, DetectorConfig, FaultConfig, NetConfig, NetError, NetEvent};
use nonmask_protocols::token_ring::TokenRing;

/// A worker thread that dies must surface as the typed
/// `ControlLoopFailed` error carrying the panic message — not as a
/// panic in `run`, and not masked by the controller's secondary timeout.
#[test]
fn sabotaged_worker_is_a_typed_control_loop_failure() {
    let ring = TokenRing::new(4, 4);
    let initial = ring.program().state_from([0, 0, 0, 0]).expect("in domain");
    let config = NetConfig {
        timeout: Duration::from_millis(400),
        sabotage_worker: Some(0),
        ..NetConfig::default()
    };
    match run(ring.program(), &initial, &ring.invariant(), &config) {
        Err(NetError::ControlLoopFailed(msg)) => {
            assert!(msg.contains("sabotaged"), "panic payload preserved: {msg}");
        }
        other => panic!("expected ControlLoopFailed, got {other:?}"),
    }
}

/// Heartbeat cadence is pinned to the wall clock: over a fixed window,
/// each node's beat count must match `window / (tick * heartbeat_every)`
/// closely in both directions. Absolute next-deadline scheduling holds
/// this under load; per-iteration sleeps would drift low by the loop's
/// work time every tick.
#[test]
fn heartbeat_cadence_holds_against_wall_clock() {
    let ring = TokenRing::new(3, 3);
    let initial = ring.program().state_from([0, 0, 0]).expect("in domain");
    let window = Duration::from_millis(500);
    let tick = Duration::from_micros(500);
    let hb_every = 4u64;
    let config = NetConfig {
        tick,
        heartbeat_every: hb_every,
        // A detector window longer than the timeout keeps the run open
        // for the whole measurement window.
        detector: DetectorConfig {
            stable_for: Duration::from_secs(60),
            ..DetectorConfig::default()
        },
        timeout: window,
        ..NetConfig::default()
    };
    let report = run(ring.program(), &initial, &ring.invariant(), &config).expect("runs");
    assert!(report.timed_out, "the run must span the whole window");
    let expected = (window.as_micros() / (tick * hb_every as u32).as_micros()) as u64;
    for node in &report.nodes {
        let beats = node.counters.heartbeats;
        assert!(
            beats >= expected * 3 / 5,
            "node {} beat {beats} times in {window:?}, expected ~{expected}: cadence drifted",
            node.node
        );
        assert!(
            beats <= expected * 6 / 5,
            "node {} beat {beats} times in {window:?}, expected ~{expected}: cadence ran hot",
            node.node
        );
    }
}

/// A 12-node ring spread over 4 shard workers converges through hostile
/// faults, a crash-restart, and a partition/heal — every episode, with
/// the fault bookkeeping intact.
#[test]
fn four_shards_converge_under_churn() {
    let ring = TokenRing::new(12, 12);
    let initial = ring
        .program()
        .state_from([3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8])
        .expect("in domain");
    let mut groups = vec![0usize; 6];
    groups.extend(vec![1usize; 6]);
    let config = NetConfig {
        seed: 7,
        shards: 4,
        faults: FaultConfig::hostile(21, 0.15),
        events: vec![
            NetEvent::CrashRestart {
                node: 5,
                at_least: Duration::ZERO,
                down: Duration::from_millis(10),
            },
            NetEvent::Partition {
                groups,
                at_least: Duration::ZERO,
                heal_after: Duration::from_millis(20),
            },
        ],
        timeout: Duration::from_secs(30),
        ..NetConfig::default()
    };
    let report = run(ring.program(), &initial, &ring.invariant(), &config).expect("runs");
    assert!(
        report.converged,
        "every episode converged:\n{}",
        report.render()
    );
    assert_eq!(report.episodes.len(), 3);
    assert!(report.episodes.iter().all(|e| e.latency().is_some()));
    assert!(ring.invariant().holds(&report.final_state));
    let crashes: u64 = report.nodes.iter().map(|n| n.counters.crashes).sum();
    assert_eq!(crashes, 1, "exactly the scheduled crash");
    let dropped: u64 = report.nodes.iter().map(|n| n.counters.dropped).sum();
    assert!(dropped > 0, "hostile faults actually fired");
}

/// The shard count is physical transport only: a faultless run reaches
/// the same logical outcome (convergence, exact sent == received
/// balance, invariant final state) whether the nodes share one worker or
/// are spread over several.
#[test]
fn shard_count_is_invisible_to_logical_outcomes() {
    for shards in [1usize, 3] {
        let ring = TokenRing::new(9, 9);
        let initial = ring
            .program()
            .state_from([8, 6, 7, 5, 3, 0, 1, 2, 4])
            .expect("in domain");
        let config = NetConfig {
            seed: 11,
            shards,
            faults: FaultConfig::default(),
            timeout: Duration::from_secs(20),
            ..NetConfig::default()
        };
        let report = run(ring.program(), &initial, &ring.invariant(), &config).expect("runs");
        assert!(report.converged, "shards={shards}:\n{}", report.render());
        assert!(ring.invariant().holds(&report.final_state));
        let sent: u64 = report.nodes.iter().map(|n| n.counters.sent).sum();
        let received: u64 = report.nodes.iter().map(|n| n.counters.received).sum();
        assert_eq!(
            sent, received,
            "shards={shards}: a faultless run loses nothing in flight"
        );
    }
}
