//! The journal sink: buffered JSON-lines output behind a cheap handle.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::Event;

/// A sink that discards everything. [`Journal::disabled`] never even
/// formats an event, so this type exists for callers that need a `Write`
/// placeholder (e.g. to silence a journal mid-run without re-plumbing).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Write for NullSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct Inner {
    start: Instant,
    sink: Mutex<Box<dyn Write + Send>>,
}

/// A handle to a JSON-lines event journal, shared by cloning.
///
/// The disabled journal ([`Journal::disabled`], also the `Default`) holds
/// no sink at all: [`emit`](Journal::emit) is a single branch and
/// [`emit_with`](Journal::emit_with) never runs its closure, so
/// instrumented hot paths cost near-nothing when observability is off.
/// Enabled journals stamp each event with microseconds since the journal
/// was opened, format the line *outside* the sink lock, and write through
/// a buffered writer that is flushed when the last handle drops.
#[derive(Clone, Default)]
pub struct Journal {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Journal {
    /// The no-op journal: nothing is formatted, locked, or written.
    pub fn disabled() -> Self {
        Journal { inner: None }
    }

    /// A journal writing JSON-lines to `sink` (wrap files in your own
    /// buffering if needed; [`Journal::to_file`] buffers for you).
    pub fn to_writer(sink: impl Write + Send + 'static) -> Self {
        Journal {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                sink: Mutex::new(Box::new(sink)),
            })),
        }
    }

    /// A journal writing buffered JSON-lines to the file at `path`
    /// (truncating it).
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from creating the file.
    pub fn to_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::to_writer(std::io::BufWriter::new(file)))
    }

    /// An in-memory journal plus the buffer to read it back from — for
    /// tests and for replaying a run without touching the filesystem.
    pub fn memory() -> (Self, MemoryBuffer) {
        let buffer = MemoryBuffer {
            bytes: Arc::new(Mutex::new(Vec::new())),
        };
        (Self::to_writer(buffer.clone()), buffer)
    }

    /// Whether events are recorded at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record `event`, stamped with the current journal-relative time.
    /// Disabled journals return immediately.
    pub fn emit(&self, event: Event) {
        let Some(inner) = &self.inner else { return };
        let t_us = inner.start.elapsed().as_micros() as u64;
        let mut line = event.to_json_line(t_us);
        line.push('\n');
        let mut sink = inner.sink.lock().expect("journal sink poisoned");
        // Journals are diagnostics: a full disk must not take the checked
        // program down with it.
        let _ = sink.write_all(line.as_bytes());
    }

    /// Record the event built by `f`, skipping the closure entirely when
    /// the journal is disabled — use this when *constructing* the event
    /// costs something (formatting, cloning).
    #[inline]
    pub fn emit_with(&self, f: impl FnOnce() -> Event) {
        if self.is_enabled() {
            self.emit(f());
        }
    }

    /// Flush the underlying sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            let _ = inner.sink.lock().expect("journal sink poisoned").flush();
        }
    }

    /// Open a named span: emits [`Event::SpanOpen`] now and the matching
    /// [`Event::SpanClose`] (with the measured duration) when the returned
    /// guard drops.
    pub fn span(&self, name: impl Into<String>) -> Span<'_> {
        let name = name.into();
        self.emit_with(|| Event::SpanOpen { name: name.clone() });
        Span {
            journal: self,
            name,
            started: Instant::now(),
        }
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        if let Ok(mut sink) = self.sink.lock() {
            let _ = sink.flush();
        }
    }
}

/// RAII guard for a journal span; see [`Journal::span`].
#[derive(Debug)]
pub struct Span<'a> {
    journal: &'a Journal,
    name: String,
    started: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let micros = self.started.elapsed().as_micros() as u64;
        self.journal.emit_with(|| Event::SpanClose {
            name: std::mem::take(&mut self.name),
            micros,
        });
    }
}

/// The shared byte buffer behind [`Journal::memory`].
#[derive(Debug, Clone)]
pub struct MemoryBuffer {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl MemoryBuffer {
    /// The journal contents written so far, as UTF-8 text.
    pub fn contents(&self) -> String {
        String::from_utf8(self.bytes.lock().expect("journal buffer poisoned").clone())
            .expect("journal lines are UTF-8")
    }
}

impl Write for MemoryBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes
            .lock()
            .expect("journal buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Record;

    #[test]
    fn disabled_journal_never_runs_the_closure() {
        let journal = Journal::disabled();
        assert!(!journal.is_enabled());
        journal.emit_with(|| unreachable!("disabled journals must not build events"));
        journal.flush();
    }

    #[test]
    fn memory_journal_records_lines_in_order() {
        let (journal, buffer) = Journal::memory();
        assert!(journal.is_enabled());
        journal.emit(Event::SpanOpen {
            name: "a".to_string(),
        });
        journal.emit(Event::Stabilized { rounds: 3 });
        journal.flush();
        let records: Vec<Record> = buffer
            .contents()
            .lines()
            .map(|l| Event::parse_line(l).unwrap())
            .collect();
        assert_eq!(records.len(), 2);
        assert!(matches!(&records[0].event, Event::SpanOpen { name } if name == "a"));
        assert_eq!(records[1].event, Event::Stabilized { rounds: 3 });
        assert!(records[0].t_us <= records[1].t_us, "timestamps ascend");
    }

    #[test]
    fn span_guard_emits_open_and_close() {
        let (journal, buffer) = Journal::memory();
        {
            let _span = journal.span("phase");
            journal.emit(Event::Stabilized { rounds: 0 });
        }
        let records: Vec<Record> = buffer
            .contents()
            .lines()
            .map(|l| Event::parse_line(l).unwrap())
            .collect();
        assert_eq!(records.len(), 3);
        assert!(matches!(&records[0].event, Event::SpanOpen { name } if name == "phase"));
        assert!(matches!(&records[2].event, Event::SpanClose { name, .. } if name == "phase"));
    }

    #[test]
    fn clones_share_the_sink_and_clock() {
        let (journal, buffer) = Journal::memory();
        let clone = journal.clone();
        clone.emit(Event::Stabilized { rounds: 1 });
        journal.emit(Event::Stabilized { rounds: 2 });
        drop(clone);
        drop(journal);
        assert_eq!(buffer.contents().lines().count(), 2);
    }

    #[test]
    fn file_journal_writes_and_flushes_on_drop() {
        let path =
            std::env::temp_dir().join(format!("nonmask-obs-test-{}.jsonl", std::process::id()));
        {
            let journal = Journal::to_file(&path).unwrap();
            journal.emit(Event::Stabilized { rounds: 9 });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let record = Event::parse_line(text.trim()).unwrap();
        assert_eq!(record.event, Event::Stabilized { rounds: 9 });
    }

    #[test]
    fn null_sink_accepts_everything() {
        let journal = Journal::to_writer(NullSink);
        journal.emit(Event::Stabilized { rounds: 1 });
        journal.flush();
    }
}
