//! The event taxonomy and its stable JSON-lines wire format.
//!
//! Every journal line is one flat JSON object: an `"ev"` tag naming the
//! event kind, a `"t_us"` timestamp (microseconds since the journal was
//! opened), and the kind's own fields, all of which are strings or `u64`
//! integers. The format is hand-rolled on both directions (this crate has
//! no dependencies) and locked by round-trip plus golden-file tests — a
//! renamed tag or field is schema drift and fails both the tests and the
//! CI replay gate.

/// One structured observation. See each variant for the producing
/// subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A named phase began (checker pass, net control phase, …).
    SpanOpen {
        /// Phase name, e.g. `"enumerate"` or `"convergence:weakly-fair"`.
        name: String,
    },
    /// The matching phase ended.
    SpanClose {
        /// Phase name (same as the opening event).
        name: String,
        /// Wall-clock duration of the phase in microseconds.
        micros: u64,
    },
    /// A named counter value, scoped to the subsystem that produced it.
    Counter {
        /// Producing scope, e.g. `"checker"` or `"net-node:3"`.
        scope: String,
        /// Counter name, e.g. `"states_decoded"`.
        name: String,
        /// Counter value.
        value: u64,
    },
    /// One phase of the checker's two-phase CSR transition build.
    CsrPhase {
        /// `"count"` (phase 1) or `"fill"` (phase 2).
        phase: String,
        /// States processed by the phase.
        states: u64,
        /// Transitions known after the phase.
        transitions: u64,
        /// Wall-clock duration of the phase in microseconds.
        micros: u64,
    },
    /// One segment processed by an out-of-core pass (a segmented scan or a
    /// frontier-convergence round). Deliberately carries **no** wall-clock
    /// field: segment events are emitted in segment order regardless of
    /// which worker built the segment, so journals are bit-identical for
    /// every thread count.
    Segment {
        /// Producing pass: `"scan"` for full-relation sweeps,
        /// `"frontier-round"` for one convergence round.
        phase: String,
        /// Segment index within the plan (or round number for
        /// `"frontier-round"`).
        index: u64,
        /// States covered by the segment (or resolved this round).
        states: u64,
        /// Transitions materialized in the segment (or successor
        /// evaluations this round).
        transitions: u64,
    },
    /// Progress of one convergence-wave analysis (region build, peel,
    /// residual SCCs) under one fairness assumption.
    Wave {
        /// The daemon assumption, `"unfair"` or `"weakly-fair"`.
        fairness: String,
        /// States in the region `T ∧ ¬S`.
        region: u64,
        /// States removed by the Kahn-style peel (they cannot stay in the
        /// region forever).
        peeled: u64,
        /// Strongly connected components found in the residual.
        sccs: u64,
    },
    /// A constraint of the design does not hold at a replay step.
    ConstraintViolated {
        /// Zero-based step index in the replayed computation.
        step: u64,
        /// Constraint name, e.g. `"x.1>=x.2"`.
        constraint: String,
    },
    /// A constraint was re-established by the action executed at a step.
    ConstraintRepaired {
        /// Zero-based step index in the replayed computation.
        step: u64,
        /// Constraint name.
        constraint: String,
        /// Name of the action whose execution repaired the constraint.
        action: String,
    },
    /// A fault was injected (net runtime or simulator).
    Fault {
        /// Fault kind, e.g. `"crash-restart"`, `"partition"`,
        /// `"corrupt-var"`.
        kind: String,
        /// Free-form detail, e.g. the node index or variable name.
        detail: String,
    },
    /// A control-plane frame was observed by the net runtime.
    Frame {
        /// Reporting node index.
        node: u64,
        /// Frame kind, e.g. `"report"` or `"hello"`.
        kind: String,
    },
    /// The stabilization detector opened a new convergence episode.
    EpisodeStarted {
        /// Episode label, e.g. `"initial"` or `"crash-restart node 2"`.
        label: String,
    },
    /// The stabilization detector declared an episode converged.
    EpisodeConverged {
        /// Episode label.
        label: String,
        /// Convergence latency in microseconds.
        micros: u64,
    },
    /// The simulator reached a globally stable configuration.
    Stabilized {
        /// Rounds executed before stabilization.
        rounds: u64,
    },
    /// One phase of a design-synthesis run (`nonmask-synth`): candidate
    /// enumeration, lattice classification, attribution pruning, oracle
    /// certification, or selection. Deliberately carries **no** wall-clock
    /// field: synthesis events are emitted in constraint/phase order from
    /// the driving thread, so journals are bit-identical for every worker
    /// count and candidate-chunk size.
    Synth {
        /// Pipeline phase: `"grammar"`, `"classify"`, `"prune"`,
        /// `"certify"`, `"select"`, or `"verify"`.
        phase: String,
        /// Free-form detail — the constraint name, layer list, chosen
        /// action, or final verdict.
        detail: String,
        /// Candidates entering the phase.
        candidates: u64,
        /// Candidates surviving the phase.
        survivors: u64,
    },
    /// A conformance verdict from the cross-layer harness
    /// (`crates/conform`): the outcome of differentially replaying one
    /// execution through the checker's step oracle.
    Verdict {
        /// Execution layer the run came from, `"sim"` or `"net"`.
        layer: String,
        /// Protocol instance, e.g. `"token-ring-4x4"`.
        protocol: String,
        /// Seed the run (and its fault schedule) was derived from.
        seed: u64,
        /// Steps validated against the transition relation.
        steps: u64,
        /// `"conforms"` or `"diverged"`.
        verdict: String,
        /// Free-form detail: empty when conforming, the first divergence
        /// otherwise.
        detail: String,
    },
    /// A per-node Byzantine-containment verdict: after a run with
    /// permanently malicious nodes, whether one correct node stabilized
    /// to its legitimate value, keyed by its graph distance to the
    /// nearest liar. The run's containment radius is the largest
    /// `distance` carrying an `"unstable"` verdict (zero when every
    /// correct node stabilized). Deliberately carries **no** wall-clock
    /// field: verdicts are emitted in node order after the run, so
    /// journals are bit-identical for every shard and worker count.
    Containment {
        /// Execution layer the run came from, `"sim"` or `"net"`.
        layer: String,
        /// Protocol instance, e.g. `"bfs-64"`.
        protocol: String,
        /// Seed the run (and its lie streams) was derived from.
        seed: u64,
        /// The judged node's index.
        node: u64,
        /// Hop distance from the node to the nearest Byzantine node.
        distance: u64,
        /// `"stabilized"` or `"unstable"`.
        verdict: String,
    },
}

impl Event {
    /// The `"ev"` tag naming this event kind on the wire.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::SpanOpen { .. } => "span-open",
            Event::SpanClose { .. } => "span-close",
            Event::Counter { .. } => "counter",
            Event::CsrPhase { .. } => "csr-phase",
            Event::Segment { .. } => "segment",
            Event::Wave { .. } => "wave",
            Event::ConstraintViolated { .. } => "constraint-violated",
            Event::ConstraintRepaired { .. } => "constraint-repaired",
            Event::Fault { .. } => "fault",
            Event::Frame { .. } => "frame",
            Event::EpisodeStarted { .. } => "episode-started",
            Event::EpisodeConverged { .. } => "episode-converged",
            Event::Stabilized { .. } => "stabilized",
            Event::Synth { .. } => "synth",
            Event::Verdict { .. } => "verdict",
            Event::Containment { .. } => "containment",
        }
    }

    /// Serialize as one JSON-lines record (no trailing newline), stamped
    /// with `t_us` microseconds.
    pub fn to_json_line(&self, t_us: u64) -> String {
        let mut w = LineWriter::new(self.tag(), t_us);
        match self {
            Event::SpanOpen { name } => w.str_field("name", name),
            Event::SpanClose { name, micros } => {
                w.str_field("name", name);
                w.num_field("micros", *micros);
            }
            Event::Counter { scope, name, value } => {
                w.str_field("scope", scope);
                w.str_field("name", name);
                w.num_field("value", *value);
            }
            Event::CsrPhase {
                phase,
                states,
                transitions,
                micros,
            } => {
                w.str_field("phase", phase);
                w.num_field("states", *states);
                w.num_field("transitions", *transitions);
                w.num_field("micros", *micros);
            }
            Event::Segment {
                phase,
                index,
                states,
                transitions,
            } => {
                w.str_field("phase", phase);
                w.num_field("index", *index);
                w.num_field("states", *states);
                w.num_field("transitions", *transitions);
            }
            Event::Wave {
                fairness,
                region,
                peeled,
                sccs,
            } => {
                w.str_field("fairness", fairness);
                w.num_field("region", *region);
                w.num_field("peeled", *peeled);
                w.num_field("sccs", *sccs);
            }
            Event::ConstraintViolated { step, constraint } => {
                w.num_field("step", *step);
                w.str_field("constraint", constraint);
            }
            Event::ConstraintRepaired {
                step,
                constraint,
                action,
            } => {
                w.num_field("step", *step);
                w.str_field("constraint", constraint);
                w.str_field("action", action);
            }
            Event::Fault { kind, detail } => {
                w.str_field("kind", kind);
                w.str_field("detail", detail);
            }
            Event::Frame { node, kind } => {
                w.num_field("node", *node);
                w.str_field("kind", kind);
            }
            Event::EpisodeStarted { label } => w.str_field("label", label),
            Event::EpisodeConverged { label, micros } => {
                w.str_field("label", label);
                w.num_field("micros", *micros);
            }
            Event::Stabilized { rounds } => w.num_field("rounds", *rounds),
            Event::Synth {
                phase,
                detail,
                candidates,
                survivors,
            } => {
                w.str_field("phase", phase);
                w.str_field("detail", detail);
                w.num_field("candidates", *candidates);
                w.num_field("survivors", *survivors);
            }
            Event::Verdict {
                layer,
                protocol,
                seed,
                steps,
                verdict,
                detail,
            } => {
                w.str_field("layer", layer);
                w.str_field("protocol", protocol);
                w.num_field("seed", *seed);
                w.num_field("steps", *steps);
                w.str_field("verdict", verdict);
                w.str_field("detail", detail);
            }
            Event::Containment {
                layer,
                protocol,
                seed,
                node,
                distance,
                verdict,
            } => {
                w.str_field("layer", layer);
                w.str_field("protocol", protocol);
                w.num_field("seed", *seed);
                w.num_field("node", *node);
                w.num_field("distance", *distance);
                w.str_field("verdict", verdict);
            }
        }
        w.finish()
    }

    /// Parse one JSON-lines record produced by [`Event::to_json_line`].
    ///
    /// # Errors
    ///
    /// [`ParseError`] on malformed JSON, an unknown `"ev"` tag, or a
    /// missing/mistyped field — i.e. on any schema drift.
    pub fn parse_line(line: &str) -> Result<Record, ParseError> {
        let fields = parse_flat_object(line)?;
        let get_str = |key: &'static str| -> Result<String, ParseError> {
            match fields.iter().find(|(k, _)| k == key) {
                Some((_, Value::Str(s))) => Ok(s.clone()),
                Some((_, Value::Num(_))) => {
                    Err(ParseError::new(format!("field `{key}` should be a string")))
                }
                None => Err(ParseError::new(format!("missing field `{key}`"))),
            }
        };
        let get_num = |key: &'static str| -> Result<u64, ParseError> {
            match fields.iter().find(|(k, _)| k == key) {
                Some((_, Value::Num(n))) => Ok(*n),
                Some((_, Value::Str(_))) => {
                    Err(ParseError::new(format!("field `{key}` should be a number")))
                }
                None => Err(ParseError::new(format!("missing field `{key}`"))),
            }
        };
        let tag = get_str("ev")?;
        let t_us = get_num("t_us")?;
        let event = match tag.as_str() {
            "span-open" => Event::SpanOpen {
                name: get_str("name")?,
            },
            "span-close" => Event::SpanClose {
                name: get_str("name")?,
                micros: get_num("micros")?,
            },
            "counter" => Event::Counter {
                scope: get_str("scope")?,
                name: get_str("name")?,
                value: get_num("value")?,
            },
            "csr-phase" => Event::CsrPhase {
                phase: get_str("phase")?,
                states: get_num("states")?,
                transitions: get_num("transitions")?,
                micros: get_num("micros")?,
            },
            "segment" => Event::Segment {
                phase: get_str("phase")?,
                index: get_num("index")?,
                states: get_num("states")?,
                transitions: get_num("transitions")?,
            },
            "wave" => Event::Wave {
                fairness: get_str("fairness")?,
                region: get_num("region")?,
                peeled: get_num("peeled")?,
                sccs: get_num("sccs")?,
            },
            "constraint-violated" => Event::ConstraintViolated {
                step: get_num("step")?,
                constraint: get_str("constraint")?,
            },
            "constraint-repaired" => Event::ConstraintRepaired {
                step: get_num("step")?,
                constraint: get_str("constraint")?,
                action: get_str("action")?,
            },
            "fault" => Event::Fault {
                kind: get_str("kind")?,
                detail: get_str("detail")?,
            },
            "frame" => Event::Frame {
                node: get_num("node")?,
                kind: get_str("kind")?,
            },
            "episode-started" => Event::EpisodeStarted {
                label: get_str("label")?,
            },
            "episode-converged" => Event::EpisodeConverged {
                label: get_str("label")?,
                micros: get_num("micros")?,
            },
            "stabilized" => Event::Stabilized {
                rounds: get_num("rounds")?,
            },
            "synth" => Event::Synth {
                phase: get_str("phase")?,
                detail: get_str("detail")?,
                candidates: get_num("candidates")?,
                survivors: get_num("survivors")?,
            },
            "verdict" => Event::Verdict {
                layer: get_str("layer")?,
                protocol: get_str("protocol")?,
                seed: get_num("seed")?,
                steps: get_num("steps")?,
                verdict: get_str("verdict")?,
                detail: get_str("detail")?,
            },
            "containment" => Event::Containment {
                layer: get_str("layer")?,
                protocol: get_str("protocol")?,
                seed: get_num("seed")?,
                node: get_num("node")?,
                distance: get_num("distance")?,
                verdict: get_str("verdict")?,
            },
            other => return Err(ParseError::new(format!("unknown event tag `{other}`"))),
        };
        Ok(Record { t_us, event })
    }
}

/// A parsed journal record: the event plus its timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Microseconds since the journal was opened.
    pub t_us: u64,
    /// The parsed event.
    pub event: Event,
}

/// A journal line that does not conform to the wire format — malformed
/// JSON, an unknown event tag, or a missing/mistyped field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "journal schema error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// Incremental writer for one flat JSON record.
struct LineWriter {
    out: String,
}

impl LineWriter {
    fn new(tag: &str, t_us: u64) -> Self {
        let mut w = LineWriter {
            out: String::with_capacity(96),
        };
        w.out.push_str("{\"ev\":");
        write_json_string(&mut w.out, tag);
        w.out.push_str(",\"t_us\":");
        w.out.push_str(&t_us.to_string());
        w
    }

    fn str_field(&mut self, key: &str, value: &str) {
        self.out.push(',');
        write_json_string(&mut self.out, key);
        self.out.push(':');
        write_json_string(&mut self.out, value);
    }

    fn num_field(&mut self, key: &str, value: u64) {
        self.out.push(',');
        write_json_string(&mut self.out, key);
        self.out.push(':');
        self.out.push_str(&value.to_string());
    }

    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A field value in a flat record: the wire format only has strings and
/// unsigned integers.
enum Value {
    Str(String),
    Num(u64),
}

/// Parse a single-level JSON object of string/u64 fields.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Value)>, ParseError> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = Vec::new();
    if chars.next() != Some('{') {
        return Err(ParseError::new("expected `{`"));
    }
    loop {
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            Some(',') => {
                chars.next();
                continue;
            }
            _ => return Err(ParseError::new("expected `\"`, `,` or `}`")),
        }
        let key = parse_string(&mut chars)?;
        if chars.next() != Some(':') {
            return Err(ParseError::new(format!("expected `:` after key `{key}`")));
        }
        let value = match chars.peek() {
            Some('"') => Value::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(c) = chars.peek() {
                    let Some(d) = c.to_digit(10) else { break };
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(d as u64))
                        .ok_or_else(|| ParseError::new("number overflows u64"))?;
                    chars.next();
                }
                Value::Num(n)
            }
            _ => {
                return Err(ParseError::new(format!(
                    "expected string or number value for key `{key}`"
                )))
            }
        };
        fields.push((key, value));
    }
    if chars.next().is_some() {
        return Err(ParseError::new("trailing characters after `}`"));
    }
    Ok(fields)
}

fn parse_string(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<String, ParseError> {
    if chars.next() != Some('"') {
        return Err(ParseError::new("expected `\"`"));
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err(ParseError::new("unterminated string")),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars
                            .next()
                            .and_then(|c| c.to_digit(16))
                            .ok_or_else(|| ParseError::new("bad \\u escape"))?;
                        code = code * 16 + d;
                    }
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| ParseError::new("bad \\u code point"))?,
                    );
                }
                _ => return Err(ParseError::new("unknown escape")),
            },
            Some(c) => out.push(c),
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// One instance of every event kind, exercising every field type.
    pub(crate) fn one_of_each() -> Vec<Event> {
        vec![
            Event::SpanOpen {
                name: "enumerate".into(),
            },
            Event::SpanClose {
                name: "enumerate".into(),
                micros: 1234,
            },
            Event::Counter {
                scope: "checker".into(),
                name: "states_decoded".into(),
                value: 98765,
            },
            Event::CsrPhase {
                phase: "count".into(),
                states: 3125,
                transitions: 15625,
                micros: 42,
            },
            Event::Segment {
                phase: "scan".into(),
                index: 2,
                states: 4096,
                transitions: 20480,
            },
            Event::Wave {
                fairness: "weakly-fair".into(),
                region: 3120,
                peeled: 3120,
                sccs: 0,
            },
            Event::ConstraintViolated {
                step: 0,
                constraint: "x.1>=x.2".into(),
            },
            Event::ConstraintRepaired {
                step: 3,
                constraint: "x.1>=x.2".into(),
                action: "fix.2".into(),
            },
            Event::Fault {
                kind: "crash-restart".into(),
                detail: "node 2".into(),
            },
            Event::Frame {
                node: 4,
                kind: "report".into(),
            },
            Event::EpisodeStarted {
                label: "initial".into(),
            },
            Event::EpisodeConverged {
                label: "initial".into(),
                micros: 150000,
            },
            Event::Stabilized { rounds: 17 },
            Event::Synth {
                phase: "prune".into(),
                detail: "token-ring".into(),
                candidates: 420,
                survivors: 38,
            },
            Event::Verdict {
                layer: "sim".into(),
                protocol: "token-ring-4x4".into(),
                seed: 11,
                steps: 640,
                verdict: "conforms".into(),
                detail: String::new(),
            },
            Event::Containment {
                layer: "net".into(),
                protocol: "bfs-64".into(),
                seed: 3,
                node: 19,
                distance: 2,
                verdict: "unstable".into(),
            },
        ]
    }

    /// The committed wire format, one line per event kind. Changing any tag
    /// or field name is schema drift: update this golden block *and* every
    /// consumer deliberately.
    const GOLDEN: &str = r#"{"ev":"span-open","t_us":7,"name":"enumerate"}
{"ev":"span-close","t_us":7,"name":"enumerate","micros":1234}
{"ev":"counter","t_us":7,"scope":"checker","name":"states_decoded","value":98765}
{"ev":"csr-phase","t_us":7,"phase":"count","states":3125,"transitions":15625,"micros":42}
{"ev":"segment","t_us":7,"phase":"scan","index":2,"states":4096,"transitions":20480}
{"ev":"wave","t_us":7,"fairness":"weakly-fair","region":3120,"peeled":3120,"sccs":0}
{"ev":"constraint-violated","t_us":7,"step":0,"constraint":"x.1>=x.2"}
{"ev":"constraint-repaired","t_us":7,"step":3,"constraint":"x.1>=x.2","action":"fix.2"}
{"ev":"fault","t_us":7,"kind":"crash-restart","detail":"node 2"}
{"ev":"frame","t_us":7,"node":4,"kind":"report"}
{"ev":"episode-started","t_us":7,"label":"initial"}
{"ev":"episode-converged","t_us":7,"label":"initial","micros":150000}
{"ev":"stabilized","t_us":7,"rounds":17}
{"ev":"synth","t_us":7,"phase":"prune","detail":"token-ring","candidates":420,"survivors":38}
{"ev":"verdict","t_us":7,"layer":"sim","protocol":"token-ring-4x4","seed":11,"steps":640,"verdict":"conforms","detail":""}
{"ev":"containment","t_us":7,"layer":"net","protocol":"bfs-64","seed":3,"node":19,"distance":2,"verdict":"unstable"}"#;

    #[test]
    fn golden_wire_format_is_stable() {
        let rendered: Vec<String> = one_of_each().iter().map(|e| e.to_json_line(7)).collect();
        assert_eq!(rendered.join("\n"), GOLDEN);
    }

    #[test]
    fn every_event_kind_round_trips() {
        for event in one_of_each() {
            let line = event.to_json_line(99);
            let record = Event::parse_line(&line).unwrap_or_else(|e| {
                panic!("round-trip failed for {}: {e}", event.tag());
            });
            assert_eq!(record.t_us, 99);
            assert_eq!(record.event, event, "round-trip for {}", event.tag());
        }
    }

    #[test]
    fn strings_with_specials_round_trip() {
        let event = Event::Fault {
            kind: "quote\" backslash\\ newline\n tab\t".into(),
            detail: "control\u{1} unicode λ".into(),
        };
        let line = event.to_json_line(0);
        assert_eq!(Event::parse_line(&line).unwrap().event, event);
    }

    #[test]
    fn drifted_lines_are_rejected() {
        // Unknown tag.
        assert!(Event::parse_line(r#"{"ev":"new-kind","t_us":0}"#).is_err());
        // Missing field.
        assert!(Event::parse_line(r#"{"ev":"frame","t_us":0,"node":1}"#).is_err());
        // Mistyped field.
        assert!(Event::parse_line(r#"{"ev":"frame","t_us":0,"node":"1","kind":"x"}"#).is_err());
        // Malformed JSON.
        assert!(Event::parse_line(r#"{"ev":"frame""#).is_err());
        assert!(Event::parse_line("").is_err());
        assert!(Event::parse_line(r#"{"ev":"frame","t_us":0}junk"#).is_err());
    }

    #[test]
    fn parse_error_renders() {
        let err = Event::parse_line("nope").unwrap_err();
        assert!(err.to_string().contains("journal schema error"));
    }
}
