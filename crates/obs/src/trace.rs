//! Journal replay: parse a JSON-lines journal and render it as a
//! human-readable timeline.
//!
//! The renderer is schema-strict on purpose: [`parse_journal`] fails on
//! the first malformed or drifted line, which is what lets a CI step use
//! `trace` as a wire-format gate — if any producer silently changes the
//! journal schema, replaying its output breaks loudly.

use crate::event::{Event, ParseError, Record};

/// Parse a whole JSON-lines journal (blank lines are skipped).
///
/// # Errors
///
/// The first [`ParseError`] hit — any schema drift fails the whole
/// replay.
pub fn parse_journal(text: &str) -> Result<Vec<Record>, ParseError> {
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .map(Event::parse_line)
        .collect()
}

fn fmt_time(t_us: u64) -> String {
    format!("{:>10.3}ms", t_us as f64 / 1e3)
}

/// Render parsed records as a timeline, one line per event, in journal
/// order. Constraint violations and repairs — the §4 repair timeline —
/// are marked with `✗` / `✓` so the constraint-graph order is scannable.
pub fn render_timeline(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        let line = match &r.event {
            Event::SpanOpen { name } => format!("▶ {name}"),
            Event::SpanClose { name, micros } => {
                format!("◀ {name} ({:.3}ms)", *micros as f64 / 1e3)
            }
            Event::Counter { scope, name, value } => {
                format!("  {scope}.{name} = {value}")
            }
            Event::CsrPhase {
                phase,
                states,
                transitions,
                micros,
            } => format!(
                "  csr {phase}: {states} states, {transitions} transitions ({:.3}ms)",
                *micros as f64 / 1e3
            ),
            Event::Segment {
                phase,
                index,
                states,
                transitions,
            } => format!("  segment {phase} #{index}: {states} states, {transitions} transitions"),
            Event::Wave {
                fairness,
                region,
                peeled,
                sccs,
            } => format!(
                "  wave [{fairness}]: region {region}, peeled {peeled}, residual sccs {sccs}"
            ),
            Event::ConstraintViolated { step, constraint } => {
                format!("✗ step {step}: constraint `{constraint}` violated")
            }
            Event::ConstraintRepaired {
                step,
                constraint,
                action,
            } => format!("✓ step {step}: constraint `{constraint}` repaired by `{action}`"),
            Event::Fault { kind, detail } => format!("⚡ fault {kind}: {detail}"),
            Event::Frame { node, kind } => format!("  frame [{kind}] from node {node}"),
            Event::EpisodeStarted { label } => format!("… episode `{label}` started"),
            Event::EpisodeConverged { label, micros } => format!(
                "✔ episode `{label}` converged ({:.3}ms)",
                *micros as f64 / 1e3
            ),
            Event::Stabilized { rounds } => format!("✔ stabilized after {rounds} rounds"),
            Event::Synth {
                phase,
                detail,
                candidates,
                survivors,
            } => format!("  synth {phase} [{detail}]: {candidates} -> {survivors}"),
            Event::Verdict {
                layer,
                protocol,
                seed,
                steps,
                verdict,
                detail,
            } => {
                let suffix = if detail.is_empty() {
                    String::new()
                } else {
                    format!(": {detail}")
                };
                let mark = if verdict == "conforms" { '✔' } else { '✗' };
                format!("{mark} conform [{layer}] {protocol} seed {seed}: {verdict} after {steps} steps{suffix}")
            }
            Event::Containment {
                layer,
                protocol,
                seed,
                node,
                distance,
                verdict,
            } => {
                let mark = if verdict == "stabilized" {
                    '✔'
                } else {
                    '✗'
                };
                format!("{mark} containment [{layer}] {protocol} seed {seed}: node {node} at distance {distance} {verdict}")
            }
        };
        out.push_str(&fmt_time(r.t_us));
        out.push_str("  ");
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// The §4 repair timeline distilled from a journal: the constraint names
/// of every [`Event::ConstraintRepaired`] record, in journal order.
pub fn repair_order(records: &[Record]) -> Vec<String> {
    records
        .iter()
        .filter_map(|r| match &r.event {
            Event::ConstraintRepaired { constraint, .. } => Some(constraint.clone()),
            _ => None,
        })
        .collect()
}

/// The Byzantine containment radius recorded in a journal: the largest
/// distance-to-liar among [`Event::Containment`] records whose verdict is
/// not `"stabilized"`, or `Some(0)` when every judged node stabilized.
/// `None` when the journal carries no containment verdicts at all.
pub fn containment_radius(records: &[Record]) -> Option<u64> {
    let mut any = false;
    let mut radius = 0;
    for r in records {
        if let Event::Containment {
            distance, verdict, ..
        } = &r.event
        {
            any = true;
            if verdict != "stabilized" {
                radius = radius.max(*distance);
            }
        }
    }
    any.then_some(radius)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal_text() -> String {
        [
            Event::SpanOpen {
                name: "enumerate".into(),
            },
            Event::ConstraintViolated {
                step: 0,
                constraint: "c.2".into(),
            },
            Event::ConstraintRepaired {
                step: 3,
                constraint: "c.2".into(),
                action: "fix.2".into(),
            },
            Event::ConstraintRepaired {
                step: 5,
                constraint: "c.1".into(),
                action: "fix.1".into(),
            },
            Event::Stabilized { rounds: 5 },
        ]
        .iter()
        .enumerate()
        .map(|(i, e)| e.to_json_line(i as u64 * 1000))
        .collect::<Vec<_>>()
        .join("\n")
    }

    #[test]
    fn parse_and_render_round_trip() {
        let records = parse_journal(&journal_text()).unwrap();
        assert_eq!(records.len(), 5);
        let rendered = render_timeline(&records);
        assert!(rendered.contains("constraint `c.2` violated"));
        assert!(rendered.contains("repaired by `fix.2`"));
        assert!(rendered.contains("stabilized after 5 rounds"));
        assert_eq!(rendered.lines().count(), 5);
    }

    #[test]
    fn repair_order_follows_the_journal() {
        let records = parse_journal(&journal_text()).unwrap();
        assert_eq!(repair_order(&records), vec!["c.2", "c.1"]);
    }

    #[test]
    fn blank_lines_are_skipped_but_drift_is_fatal() {
        assert_eq!(parse_journal("\n\n").unwrap().len(), 0);
        let mut text = journal_text();
        text.push_str("\n{\"ev\":\"renamed-kind\",\"t_us\":0}");
        assert!(parse_journal(&text).is_err(), "schema drift must fail");
    }

    #[test]
    fn containment_radius_takes_the_largest_unstable_distance() {
        let mk = |node: u64, distance: u64, verdict: &str| Record {
            t_us: 0,
            event: Event::Containment {
                layer: "sim".into(),
                protocol: "bfs-8".into(),
                seed: 1,
                node,
                distance,
                verdict: verdict.into(),
            },
        };
        assert_eq!(containment_radius(&[]), None);
        assert_eq!(
            containment_radius(&[mk(0, 5, "stabilized"), mk(1, 4, "stabilized")]),
            Some(0),
            "all nodes stable: radius 0"
        );
        assert_eq!(
            containment_radius(&[
                mk(0, 5, "stabilized"),
                mk(1, 2, "unstable"),
                mk(2, 1, "unstable"),
            ]),
            Some(2)
        );
    }

    #[test]
    fn every_event_kind_renders_one_line() {
        let records: Vec<Record> = crate::event::tests::one_of_each()
            .into_iter()
            .map(|event| Record { t_us: 1, event })
            .collect();
        assert_eq!(render_timeline(&records).lines().count(), records.len());
    }
}
