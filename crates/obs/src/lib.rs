//! Structured observability shared by the checker, simulator, and net
//! runtime.
//!
//! The paper's central claim is that convergence is *observable* structure:
//! constraints `c.1 .. c.n` are violated by faults and repaired by their
//! convergence actions in a witnessable order (Theorems 1–3). This crate is
//! the event layer that makes that order visible at runtime instead of only
//! in a final verdict:
//!
//! - [`Event`] — the closed taxonomy of things worth recording: span
//!   open/close, counters, per-constraint violation/repair transitions,
//!   convergence-wave progress, CSR-build phase timings, and net
//!   fault/frame/detector-episode events. Every event serializes to one
//!   stable JSON-lines record ([`Event::to_json_line`]) and parses back
//!   ([`Event::parse_line`]), so journals are machine-checkable and any
//!   schema drift is caught by round-tripping.
//! - [`Journal`] — a cheap, cloneable sink handle. A disabled journal
//!   ([`Journal::disabled`]) is a `None` behind the handle: emission is one
//!   branch, no formatting, no locking, no allocation — near-zero overhead
//!   for instrumented hot paths. Enabled journals stamp each event with
//!   microseconds since the journal was opened and write buffered
//!   JSON-lines.
//! - [`CounterSet`] — the shared counter abstraction: any pass or node that
//!   accumulates named `u64` counters can render them to JSON and emit them
//!   as [`Event::Counter`] records with one implementation.
//! - [`parse_journal`] / [`render_timeline`] / [`repair_order`] — replay: a
//!   journal parses back into [`Record`]s and renders as a human-readable
//!   timeline, the `nonmask-run trace` subcommand in one call each.
//!
//! The crate is deliberately dependency-free (std only) so every other
//! crate in the workspace can use it without weight.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod journal;
mod trace;

pub use event::{Event, ParseError, Record};
pub use journal::{Journal, MemoryBuffer, NullSink, Span};
pub use trace::{containment_radius, parse_journal, render_timeline, repair_order};

/// A named set of `u64` counters that can be rendered to JSON and emitted
/// into a [`Journal`].
///
/// Implementors supply a scope label and the `(name, value)` pairs; the
/// JSON rendering and journal emission are shared. This replaces per-crate
/// ad-hoc `to_json` counter code with one abstraction.
pub trait CounterSet {
    /// Label identifying what the counters describe (e.g. `"net-node"`,
    /// `"checker"`). Used as the [`Event::Counter`] scope.
    fn scope(&self) -> String;

    /// The counters, in a stable order.
    fn fields(&self) -> Vec<(&'static str, u64)>;

    /// Render the counters as a flat JSON object in field order.
    fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.fields().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push('}');
        out
    }

    /// Emit one [`Event::Counter`] record per field.
    fn emit(&self, journal: &Journal) {
        if !journal.is_enabled() {
            return;
        }
        let scope = self.scope();
        for (name, value) in self.fields() {
            journal.emit(Event::Counter {
                scope: scope.clone(),
                name: name.to_string(),
                value,
            });
        }
    }

    /// Snapshot the counters as a mergeable [`Counters`] value, so any
    /// implementor can participate in lock-free per-worker aggregation
    /// (accumulate one `Counters` per worker, [`Counters::merge`] the
    /// results afterwards).
    fn to_counters(&self) -> Counters {
        let mut out = Counters::new(self.scope());
        for (name, value) in self.fields() {
            out.add(name, value);
        }
        out
    }
}

/// A concrete, mergeable bundle of named `u64` counters.
///
/// Fields are kept **sorted by name**, so two `Counters` built by adding
/// the same names in different orders are identical, and
/// [`merge`](Counters::merge) is associative *and* commutative:
/// `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)` and `a ⊕ b == b ⊕ a` for any scopes'
/// worth of fields. That is what lets per-worker counters aggregate
/// without a shared lock on the hot path — each worker owns a private
/// `Counters`, and the reduction order cannot change the result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counters {
    scope: String,
    /// `(name, value)`, sorted by name.
    fields: Vec<(&'static str, u64)>,
}

impl Counters {
    /// An empty counter bundle labelled `scope`.
    pub fn new(scope: impl Into<String>) -> Self {
        Counters {
            scope: scope.into(),
            fields: Vec::new(),
        }
    }

    /// Add `delta` to the counter `name` (creating it at zero first).
    pub fn add(&mut self, name: &'static str, delta: u64) {
        match self.fields.binary_search_by(|(n, _)| n.cmp(&name)) {
            Ok(i) => self.fields[i].1 += delta,
            Err(i) => self.fields.insert(i, (name, delta)),
        }
    }

    /// Current value of `name` (zero when never added).
    pub fn get(&self, name: &str) -> u64 {
        self.fields
            .binary_search_by(|(n, _)| (*n).cmp(name))
            .map(|i| self.fields[i].1)
            .unwrap_or(0)
    }

    /// Field-wise sum of `other` into `self` (union of names; missing
    /// names count as zero). Associative and order-independent — see the
    /// type-level docs.
    ///
    /// # Panics
    ///
    /// Panics if the two bundles carry different non-empty scopes:
    /// merging counters that describe different things is a bug at the
    /// call site, not a reduction step.
    pub fn merge(&mut self, other: &Counters) {
        if self.scope.is_empty() {
            self.scope = other.scope.clone();
        } else {
            assert!(
                other.scope.is_empty() || self.scope == other.scope,
                "merging counters of scope {:?} into scope {:?}",
                other.scope,
                self.scope
            );
        }
        for &(name, value) in &other.fields {
            self.add(name, value);
        }
    }
}

impl CounterSet for Counters {
    fn scope(&self) -> String {
        self.scope.clone()
    }

    fn fields(&self) -> Vec<(&'static str, u64)> {
        self.fields.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Demo;

    impl CounterSet for Demo {
        fn scope(&self) -> String {
            "demo".to_string()
        }
        fn fields(&self) -> Vec<(&'static str, u64)> {
            vec![("alpha", 1), ("beta", 22)]
        }
    }

    #[test]
    fn counter_set_renders_json_in_field_order() {
        assert_eq!(Demo.to_json(), r#"{"alpha":1,"beta":22}"#);
    }

    #[test]
    fn counter_set_emits_one_event_per_field() {
        let (journal, buffer) = Journal::memory();
        Demo.emit(&journal);
        journal.flush();
        let lines = buffer.contents();
        let records: Vec<Record> = lines
            .lines()
            .map(|l| Event::parse_line(l).unwrap())
            .collect();
        assert_eq!(records.len(), 2);
        assert!(matches!(
            &records[0].event,
            Event::Counter { scope, name, value: 1 } if scope == "demo" && name == "alpha"
        ));
        assert!(matches!(
            &records[1].event,
            Event::Counter { scope, name, value: 22 } if scope == "demo" && name == "beta"
        ));
    }

    #[test]
    fn emit_on_disabled_journal_is_a_no_op() {
        Demo.emit(&Journal::disabled());
    }

    fn counters(pairs: &[(&'static str, u64)]) -> Counters {
        let mut c = Counters::new("t");
        for &(n, v) in pairs {
            c.add(n, v);
        }
        c
    }

    #[test]
    fn counters_add_get_roundtrip() {
        let mut c = Counters::new("t");
        assert_eq!(c.get("x"), 0);
        c.add("x", 3);
        c.add("x", 4);
        c.add("a", 1);
        assert_eq!(c.get("x"), 7);
        assert_eq!(c.get("a"), 1);
        // Name-sorted regardless of insertion order.
        assert_eq!(c.fields(), vec![("a", 1), ("x", 7)]);
    }

    #[test]
    fn counters_merge_is_commutative() {
        let a = counters(&[("steps", 10), ("faults", 2)]);
        let b = counters(&[("steps", 5), ("ticks", 9)]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get("steps"), 15);
        assert_eq!(ab.get("faults"), 2);
        assert_eq!(ab.get("ticks"), 9);
    }

    #[test]
    fn counters_merge_is_associative() {
        let a = counters(&[("x", 1), ("y", 100)]);
        let b = counters(&[("y", 20), ("z", 7)]);
        let c = counters(&[("x", 4), ("z", 3)]);
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.fields(), vec![("x", 5), ("y", 120), ("z", 10)]);
    }

    #[test]
    fn counters_merge_identity_and_insertion_order() {
        let a = counters(&[("b", 2), ("a", 1)]);
        let mut merged = Counters::new("");
        merged.merge(&a);
        assert_eq!(merged, a, "empty bundle is a merge identity");
        // Insertion order cannot matter.
        let mut reordered = Counters::new("t");
        reordered.add("a", 1);
        reordered.add("b", 2);
        assert_eq!(reordered, a);
    }

    #[test]
    #[should_panic(expected = "merging counters of scope")]
    fn counters_merge_rejects_mismatched_scopes() {
        let mut a = Counters::new("alpha");
        a.merge(&Counters::new("beta"));
    }

    #[test]
    fn counter_set_snapshots_to_mergeable_counters() {
        let c = Demo.to_counters();
        assert_eq!(c.scope(), "demo");
        assert_eq!(c.get("alpha"), 1);
        assert_eq!(c.get("beta"), 22);
    }
}
