//! Structured observability shared by the checker, simulator, and net
//! runtime.
//!
//! The paper's central claim is that convergence is *observable* structure:
//! constraints `c.1 .. c.n` are violated by faults and repaired by their
//! convergence actions in a witnessable order (Theorems 1–3). This crate is
//! the event layer that makes that order visible at runtime instead of only
//! in a final verdict:
//!
//! - [`Event`] — the closed taxonomy of things worth recording: span
//!   open/close, counters, per-constraint violation/repair transitions,
//!   convergence-wave progress, CSR-build phase timings, and net
//!   fault/frame/detector-episode events. Every event serializes to one
//!   stable JSON-lines record ([`Event::to_json_line`]) and parses back
//!   ([`Event::parse_line`]), so journals are machine-checkable and any
//!   schema drift is caught by round-tripping.
//! - [`Journal`] — a cheap, cloneable sink handle. A disabled journal
//!   ([`Journal::disabled`]) is a `None` behind the handle: emission is one
//!   branch, no formatting, no locking, no allocation — near-zero overhead
//!   for instrumented hot paths. Enabled journals stamp each event with
//!   microseconds since the journal was opened and write buffered
//!   JSON-lines.
//! - [`CounterSet`] — the shared counter abstraction: any pass or node that
//!   accumulates named `u64` counters can render them to JSON and emit them
//!   as [`Event::Counter`] records with one implementation.
//! - [`parse_journal`] / [`render_timeline`] / [`repair_order`] — replay: a
//!   journal parses back into [`Record`]s and renders as a human-readable
//!   timeline, the `nonmask-run trace` subcommand in one call each.
//!
//! The crate is deliberately dependency-free (std only) so every other
//! crate in the workspace can use it without weight.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod journal;
mod trace;

pub use event::{Event, ParseError, Record};
pub use journal::{Journal, MemoryBuffer, NullSink, Span};
pub use trace::{parse_journal, render_timeline, repair_order};

/// A named set of `u64` counters that can be rendered to JSON and emitted
/// into a [`Journal`].
///
/// Implementors supply a scope label and the `(name, value)` pairs; the
/// JSON rendering and journal emission are shared. This replaces per-crate
/// ad-hoc `to_json` counter code with one abstraction.
pub trait CounterSet {
    /// Label identifying what the counters describe (e.g. `"net-node"`,
    /// `"checker"`). Used as the [`Event::Counter`] scope.
    fn scope(&self) -> String;

    /// The counters, in a stable order.
    fn fields(&self) -> Vec<(&'static str, u64)>;

    /// Render the counters as a flat JSON object in field order.
    fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.fields().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push('}');
        out
    }

    /// Emit one [`Event::Counter`] record per field.
    fn emit(&self, journal: &Journal) {
        if !journal.is_enabled() {
            return;
        }
        let scope = self.scope();
        for (name, value) in self.fields() {
            journal.emit(Event::Counter {
                scope: scope.clone(),
                name: name.to_string(),
                value,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Demo;

    impl CounterSet for Demo {
        fn scope(&self) -> String {
            "demo".to_string()
        }
        fn fields(&self) -> Vec<(&'static str, u64)> {
            vec![("alpha", 1), ("beta", 22)]
        }
    }

    #[test]
    fn counter_set_renders_json_in_field_order() {
        assert_eq!(Demo.to_json(), r#"{"alpha":1,"beta":22}"#);
    }

    #[test]
    fn counter_set_emits_one_event_per_field() {
        let (journal, buffer) = Journal::memory();
        Demo.emit(&journal);
        journal.flush();
        let lines = buffer.contents();
        let records: Vec<Record> = lines
            .lines()
            .map(|l| Event::parse_line(l).unwrap())
            .collect();
        assert_eq!(records.len(), 2);
        assert!(matches!(
            &records[0].event,
            Event::Counter { scope, name, value: 1 } if scope == "demo" && name == "alpha"
        ));
        assert!(matches!(
            &records[1].event,
            Event::Counter { scope, name, value: 22 } if scope == "demo" && name == "beta"
        ));
    }

    #[test]
    fn emit_on_disabled_journal_is_a_no_op() {
        Demo.emit(&Journal::disabled());
    }
}
