//! Cross-layer conformance: a corpus-sized differential sweep.
//!
//! The CI-scale corpus (≥100 runs per protocol) runs behind
//! `nonmask-run conform --smoke`; this integration test keeps the same
//! structure at unit-test cost — every simulator and socket-runtime
//! step replayed through the checker's transition relation, designated
//! repairs verified, convergence envelope asserted.

use nonmask_conform::{
    check_run, default_specs, run_corpus, run_net, CorpusConfig, NetRunConfig, ProtocolOracle,
    ProtocolSpec,
};
use nonmask_obs::{parse_journal, Journal};

#[test]
fn sim_corpus_has_zero_divergences() {
    let specs = default_specs();
    let config = CorpusConfig {
        base_seed: 100,
        sim_runs: 12,
        net_runs: 0,
        sim_only: true,
    };
    let (journal, buffer) = Journal::memory();
    let report = run_corpus(&specs, &config, &journal).expect("corpus infrastructure");
    journal.flush();
    assert_eq!(
        report.divergent_runs(),
        0,
        "divergences:\n{}",
        report.render()
    );
    assert!(report.steps_checked() > 0);

    // One verdict event per run, all conforming, journaled on the wire.
    let records = parse_journal(&buffer.contents()).expect("wire-stable journal");
    let verdicts: Vec<_> = records
        .iter()
        .filter_map(|r| match &r.event {
            nonmask_obs::Event::Verdict { verdict, .. } => Some(verdict.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(verdicts.len(), report.total_runs());
    assert!(verdicts.iter().all(|v| *v == "conforms"));
}

#[test]
fn every_protocol_bound_is_finite() {
    // The envelope check is only meaningful while the checker can bound
    // convergence; both corpus protocols must keep cycle-free repair
    // regions (a regression here would silently skip the envelope).
    for spec in default_specs() {
        let oracle = ProtocolOracle::build(&spec).expect("oracle");
        assert!(
            oracle.bound.is_some(),
            "{}: convergence bound became unavailable",
            spec.name
        );
    }
}

#[test]
fn net_layer_conforms_on_a_reliable_run() {
    let spec = ProtocolSpec::token_ring(3, 3);
    let oracle = ProtocolOracle::build(&spec).expect("oracle");
    let outcome = run_net(&spec.program, &spec.goal, 41, &NetRunConfig::default())
        .expect("net infrastructure");
    let report = check_run(&oracle, &spec, &outcome, true);
    assert!(
        report.conforms(),
        "net divergences: {:?}",
        report.divergences
    );
    assert!(report.steps_checked > 0, "net run recorded no steps");
    // Reliable, event-free run: the linearized envelope must have been
    // measured, not skipped.
    assert!(report.observed.is_some());
}
