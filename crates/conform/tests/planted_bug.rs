//! Planted-bug self-test: prove the harness can actually catch a
//! divergent implementation, not merely bless healthy ones.
//!
//! Built only with `--features planted-bug`: the token-ring mutant whose
//! root increments by two is executed by the simulator while the healthy
//! ring serves as the oracle. The harness must (a) flag the divergence
//! as an invalid step the moment the mutated action fires, (b) shrink
//! the seeded fault schedule to a ≤5-event reproducer, and (c) replay
//! the shrunk schedule to the bit-identical divergence — twice.
#![cfg(feature = "planted-bug")]

use nonmask_conform::{
    check_run, run_sim, shrink_schedule, FaultSchedule, ProtocolOracle, ProtocolSpec, SimRunConfig,
};
use nonmask_program::Predicate;

fn harness() -> (ProtocolSpec, nonmask_program::Program, ProtocolOracle) {
    let spec = ProtocolSpec::token_ring(4, 4);
    let mutant = ProtocolSpec::token_ring_mutant_program(4, 4);
    let oracle = ProtocolOracle::build(&spec).expect("oracle");
    (spec, mutant, oracle)
}

/// Fixed horizon so the token always revisits the mutated root action.
fn horizon_cfg() -> (Predicate, SimRunConfig) {
    (
        Predicate::always_false(),
        SimRunConfig {
            max_rounds: 60,
            ..SimRunConfig::default()
        },
    )
}

#[test]
fn the_mutant_is_detected_as_a_wrong_effect() {
    let (spec, mutant, oracle) = harness();
    let (never, cfg) = horizon_cfg();
    let outcome = run_sim(&mutant, &never, 7, &FaultSchedule::empty(), &cfg).unwrap();
    let report = check_run(&oracle, &spec, &outcome, false);
    assert!(!report.conforms(), "planted bug went undetected");
    let first = &report.divergences[0];
    assert_eq!(first.kind, "invalid-step");
    assert!(
        first.detail.contains("pass@0"),
        "divergence should name the mutated root action: {first}"
    );
}

#[test]
fn the_schedule_shrinks_to_at_most_five_events_and_replays_deterministically() {
    let (spec, mutant, oracle) = harness();
    let (never, cfg) = horizon_cfg();
    let seed = 11;
    let divergences_of = |schedule: &FaultSchedule| {
        let outcome = run_sim(&mutant, &never, seed, schedule, &cfg).unwrap();
        check_run(&oracle, &spec, &outcome, false).divergences
    };

    let schedule = FaultSchedule::random(&spec.program, 4, seed, 8, 40);
    assert!(
        !divergences_of(&schedule).is_empty(),
        "the full schedule must already diverge"
    );
    let shrunk = shrink_schedule(&schedule, |s| !divergences_of(s).is_empty());
    assert!(
        shrunk.len() <= 5,
        "shrunk schedule has {} events (> 5):\n{}",
        shrunk.len(),
        shrunk.render()
    );
    // The root misfires with no faults at all, so ddmin should reach
    // the true minimum.
    assert!(shrunk.is_empty(), "expected the empty schedule");

    // Deterministic reproducer: two replays, bit-identical divergences.
    let first = divergences_of(&shrunk);
    let second = divergences_of(&shrunk);
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "replay of the shrunk schedule must be deterministic"
    );

    // And the triple survives serialization: parse(render(s)) replays
    // to the same divergences.
    let reparsed = FaultSchedule::parse(&shrunk.render()).unwrap();
    assert_eq!(divergences_of(&reparsed), first);
}

/// The second planted bug, on the spanning tree: node 2 adopts node 1
/// as its parent unconditionally — the "Byzantine node accepted as
/// parent" mistake. The healthy 4-ring spec is the oracle; the wrong
/// effect surfaces the first time node 2 repairs while its other
/// neighbor is strictly closer to the root.
#[test]
fn the_trusting_parent_mutant_is_detected_as_a_wrong_effect() {
    let spec = ProtocolSpec::spanning_tree();
    let mutant = ProtocolSpec::spanning_tree_mutant_program(2, 1);
    let oracle = ProtocolOracle::build(&spec).expect("oracle");
    let (never, cfg) = horizon_cfg();
    let outcome = run_sim(&mutant, &never, 1, &FaultSchedule::empty(), &cfg).unwrap();
    let report = check_run(&oracle, &spec, &outcome, false);
    assert!(!report.conforms(), "planted parent bug went undetected");
    let first = &report.divergences[0];
    assert_eq!(first.kind, "invalid-step");
    assert!(
        first.detail.contains("adopt@2"),
        "divergence should name the trusting node's repair: {first}"
    );
}

#[test]
fn the_trusting_parent_schedule_shrinks_and_replays_deterministically() {
    let spec = ProtocolSpec::spanning_tree();
    let mutant = ProtocolSpec::spanning_tree_mutant_program(2, 1);
    let oracle = ProtocolOracle::build(&spec).expect("oracle");
    let (never, cfg) = horizon_cfg();
    let seed = 4;
    let divergences_of = |schedule: &FaultSchedule| {
        let outcome = run_sim(&mutant, &never, seed, schedule, &cfg).unwrap();
        check_run(&oracle, &spec, &outcome, false).divergences
    };

    let schedule = FaultSchedule::random(&spec.program, 4, seed, 8, 40);
    assert!(
        !divergences_of(&schedule).is_empty(),
        "the full schedule must already diverge"
    );
    let shrunk = shrink_schedule(&schedule, |s| !divergences_of(s).is_empty());
    assert!(
        shrunk.len() <= 5,
        "shrunk schedule has {} events (> 5):\n{}",
        shrunk.len(),
        shrunk.render()
    );
    // Seed 4's initial state already has node 3 closer to the root
    // than node 1, so the trusting repair misfires with no faults at
    // all and ddmin reaches the true minimum.
    assert!(shrunk.is_empty(), "expected the empty schedule");

    let first = divergences_of(&shrunk);
    let second = divergences_of(&shrunk);
    assert!(!first.is_empty());
    assert_eq!(first, second, "shrunk replay must be deterministic");
}
