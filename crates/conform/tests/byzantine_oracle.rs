//! The conformance oracle must tolerate Byzantine runs: liars never
//! execute program actions (their lies ride the coherence layer, not
//! the step log), and every correct node's repair validates against
//! the reference transition relation even when its view holds lied
//! values — a lie is an in-domain value of the liar's variable, so a
//! correct min+1 repair computed from it is still a legal step.

use nonmask_conform::{
    check_run, run_sim, FaultSchedule, ProtocolOracle, ProtocolSpec, SimRunConfig,
};
use nonmask_graph::Topology;
use nonmask_protocols::MinPlusOne;

/// min+1 BFS on a 4-line with the liar at the far end: the safe region
/// is {0, 1} and node 2 flaps with the lie stream forever.
fn byzantine_spec() -> (MinPlusOne, ProtocolSpec) {
    let topo = Topology::line(4);
    let proto = MinPlusOne::with_byzantine(&topo, 0, &[3]);
    let mut constraints = Vec::new();
    let mut designated = Vec::new();
    for j in 0..topo.len() {
        if let Some(action) = proto.fix_action(j) {
            designated.push((action, constraints.len()));
            constraints.push(proto.constraint(j));
        }
    }
    let spec = ProtocolSpec {
        name: "bfs-4-byz".to_string(),
        program: proto.program().clone(),
        goal: proto.safe_goal(),
        constraints,
        designated,
    };
    (proto, spec)
}

#[test]
fn byzantine_runs_conform_without_divergence() {
    let (proto, spec) = byzantine_spec();
    let oracle = ProtocolOracle::build(&spec).expect("oracle");
    let cfg = SimRunConfig {
        byzantine: vec![3],
        byzantine_seed: 0xB12A,
        ..SimRunConfig::default()
    };
    assert!(!cfg.envelope_applies(), "liars never heal");
    let outcome = run_sim(&spec.program, &spec.goal, 23, &FaultSchedule::empty(), &cfg)
        .expect("sim infrastructure");
    assert!(outcome.stabilized, "the safe region stabilizes");
    let report = check_run(&oracle, &spec, &outcome, true);
    assert!(
        report.conforms(),
        "byzantine run flagged: {:?}",
        report.divergences
    );
    assert!(report.steps_checked > 0, "correct nodes did repair");
    // The liar's steps are absent from the log by construction: every
    // validated step was executed by a correct node.
    assert!(outcome.steps.iter().all(|s| s.site != 3));
    // Safe nodes hold their legitimate distances in the final state.
    let legit = proto.legit_distances();
    for (j, safe) in proto.safe_set().iter().enumerate() {
        if *safe {
            assert_eq!(
                outcome.final_state.get(proto.dist_var(j)) as u64,
                legit[j].unwrap()
            );
        }
    }
}

#[test]
fn byzantine_sim_runs_are_bit_identical_for_the_same_input() {
    let (_, spec) = byzantine_spec();
    let cfg = SimRunConfig {
        byzantine: vec![3],
        byzantine_seed: 7,
        ..SimRunConfig::default()
    };
    let a = run_sim(&spec.program, &spec.goal, 5, &FaultSchedule::empty(), &cfg).unwrap();
    let b = run_sim(&spec.program, &spec.goal, 5, &FaultSchedule::empty(), &cfg).unwrap();
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.final_state, b.final_state);
}
