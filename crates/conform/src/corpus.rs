//! The fixed-seed conformance corpus.
//!
//! [`run_corpus`] sweeps every protocol spec through both execution
//! layers: a large batch of simulator runs under seeded fault schedules
//! (two thirds with reliable coherence messages — envelope asserted —
//! and one third lossy/delayed for step-validation coverage), plus a
//! small batch of socket-runtime runs (reliable, hostile-link, crash,
//! and partition variants). Every run is judged by [`crate::check`] and
//! journaled as a [`Event::Verdict`]; the report carries enough to
//! reproduce any divergent run: its layer, seed, and fault schedule.

use std::time::Duration;

use nonmask_net::{FaultConfig, NetEvent};
use nonmask_obs::{Event, Journal};

use crate::check::{check_run, ProtocolOracle, RunReport};
use crate::runner::{run_net, run_sim, NetRunConfig, SimRunConfig};
use crate::schedule::FaultSchedule;
use crate::spec::ProtocolSpec;

/// How much corpus to run.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Master seed; run `i` derives its seed via
    /// [`rand::split_seed`] on a per-layer stream index, so runs never
    /// share seed material across runs or layers.
    pub base_seed: u64,
    /// Simulator runs per protocol.
    pub sim_runs: usize,
    /// Socket-runtime runs per protocol (cycled through the four
    /// variants: reliable, hostile links, crash event, partition event).
    pub net_runs: usize,
    /// Skip the socket-runtime layer entirely (unit-test speed).
    pub sim_only: bool,
}

impl CorpusConfig {
    /// The CI smoke corpus: ≥100 runs per protocol, time-boxed.
    pub fn smoke(base_seed: u64) -> Self {
        CorpusConfig {
            base_seed,
            sim_runs: 96,
            net_runs: 6,
            sim_only: false,
        }
    }

    /// The full corpus: double the simulator sweep.
    pub fn full(base_seed: u64) -> Self {
        CorpusConfig {
            base_seed,
            sim_runs: 194,
            net_runs: 6,
            sim_only: false,
        }
    }
}

/// The complete fault input of one corpus run — everything needed to
/// re-execute it bit-identically (sim) or replay its fault schedule
/// deterministically (net).
#[derive(Debug, Clone)]
pub enum RunInput {
    /// A simulator run: its schedule and knobs.
    Sim {
        /// The seeded fault schedule.
        schedule: FaultSchedule,
        /// The simulator knobs.
        cfg: SimRunConfig,
    },
    /// A socket-runtime run: its fault/event configuration.
    Net {
        /// The runtime knobs.
        cfg: NetRunConfig,
    },
}

/// One corpus run and its verdict.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// `sim` or `net`.
    pub layer: &'static str,
    /// The run's seed.
    pub seed: u64,
    /// Human-readable fault variant (`reliable`, `hostile`, `crash`,
    /// `partition` for net; `clean`/`lossy` for sim).
    pub variant: &'static str,
    /// The run's complete fault input.
    pub input: RunInput,
    /// The conformance verdict.
    pub report: RunReport,
}

/// Every run of one protocol.
#[derive(Debug)]
pub struct ProtocolResult {
    /// The protocol's corpus name.
    pub name: String,
    /// The checker's worst-case convergence bound.
    pub bound: Option<u64>,
    /// Size of the enumerated state space.
    pub states: usize,
    /// All runs, in execution order.
    pub runs: Vec<RunRecord>,
}

impl ProtocolResult {
    /// Runs that diverged.
    pub fn divergent(&self) -> impl Iterator<Item = &RunRecord> {
        self.runs.iter().filter(|r| !r.report.conforms())
    }
}

/// The whole corpus sweep.
#[derive(Debug)]
pub struct CorpusReport {
    /// Per-protocol results.
    pub protocols: Vec<ProtocolResult>,
}

impl CorpusReport {
    /// Total divergent runs across every protocol and layer.
    pub fn divergent_runs(&self) -> usize {
        self.protocols.iter().map(|p| p.divergent().count()).sum()
    }

    /// Total runs.
    pub fn total_runs(&self) -> usize {
        self.protocols.iter().map(|p| p.runs.len()).sum()
    }

    /// Total steps validated against the transition relation.
    pub fn steps_checked(&self) -> u64 {
        self.protocols
            .iter()
            .flat_map(|p| &p.runs)
            .map(|r| r.report.steps_checked)
            .sum()
    }

    /// Render a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for protocol in &self.protocols {
            let bound = match protocol.bound {
                Some(b) => b.to_string(),
                None => "unavailable (cycle outside goal)".to_string(),
            };
            out.push_str(&format!(
                "{}: {} states, worst-case bound {bound}\n",
                protocol.name, protocol.states
            ));
            let (mut sim, mut net, mut repairs, mut steps) = (0usize, 0usize, 0u64, 0u64);
            let mut worst: Option<(u64, u64)> = None;
            for run in &protocol.runs {
                match run.layer {
                    "sim" => sim += 1,
                    _ => net += 1,
                }
                repairs += run.report.repairs_observed;
                steps += run.report.steps_checked;
                if let Some(observed) = run.report.observed {
                    if worst.is_none_or(|(o, _)| observed > o) {
                        worst = Some((observed, run.seed));
                    }
                }
            }
            out.push_str(&format!(
                "  {sim} sim + {net} net runs, {steps} steps validated, {repairs} designated repairs observed\n"
            ));
            if let Some((observed, seed)) = worst {
                out.push_str(&format!(
                    "  worst observed convergence: {observed} steps (seed {seed})\n"
                ));
            }
            for run in protocol.divergent() {
                out.push_str(&format!(
                    "  DIVERGES [{} {} seed {}]:\n",
                    run.layer, run.variant, run.seed
                ));
                for d in &run.report.divergences {
                    out.push_str(&format!("    {d}\n"));
                }
            }
        }
        out.push_str(&format!(
            "total: {} runs, {} steps validated, {} divergent\n",
            self.total_runs(),
            self.steps_checked(),
            self.divergent_runs()
        ));
        out
    }
}

/// The default corpus protocols: the worked designs of the paper that
/// both execution layers can refine.
pub fn default_specs() -> Vec<ProtocolSpec> {
    vec![
        ProtocolSpec::token_ring(4, 4),
        ProtocolSpec::diffusing(7),
        ProtocolSpec::coloring(7, 3),
        ProtocolSpec::bfs(),
        ProtocolSpec::spanning_tree(),
    ]
}

/// The simulator configuration of corpus run `i`: two clean runs
/// (envelope asserted) for every lossy one (step checks only).
fn sim_variant(i: usize) -> (SimRunConfig, &'static str) {
    if i % 3 == 2 {
        (
            SimRunConfig {
                loss_rate: 0.2,
                max_delay: 3,
                heartbeat_period: 2,
                ..SimRunConfig::default()
            },
            "lossy",
        )
    } else {
        (SimRunConfig::default(), "clean")
    }
}

/// The socket-runtime configuration of corpus run `i`.
fn net_variant(i: usize, seed: u64, nodes: usize) -> (NetRunConfig, &'static str) {
    match i % 4 {
        0 | 1 => (NetRunConfig::default(), "reliable"),
        2 => (
            NetRunConfig {
                faults: FaultConfig::hostile(seed, 0.15),
                ..NetRunConfig::default()
            },
            "hostile",
        ),
        3 if i % 8 == 3 => (
            NetRunConfig {
                events: vec![NetEvent::CrashRestart {
                    node: 1 % nodes,
                    at_least: Duration::from_millis(30),
                    down: Duration::from_millis(40),
                }],
                ..NetRunConfig::default()
            },
            "crash",
        ),
        _ => (
            NetRunConfig {
                events: vec![NetEvent::Partition {
                    groups: (0..nodes).map(|p| p % 2).collect(),
                    at_least: Duration::from_millis(30),
                    heal_after: Duration::from_millis(60),
                }],
                ..NetRunConfig::default()
            },
            "partition",
        ),
    }
}

/// Sweep the corpus. Emits one [`Event::Verdict`] per run into
/// `journal` and returns the full report. Errors are infrastructure
/// failures (enumeration, refinement, sockets), not divergences.
pub fn run_corpus(
    specs: &[ProtocolSpec],
    config: &CorpusConfig,
    journal: &Journal,
) -> Result<CorpusReport, String> {
    let mut protocols = Vec::with_capacity(specs.len());
    for spec in specs {
        let oracle = ProtocolOracle::build(spec)?;
        let nodes = nonmask_sim::Refinement::new(&spec.program)
            .map_err(|e| format!("{}: not refinable: {e}", spec.name))?
            .process_count();
        let mut runs = Vec::with_capacity(config.sim_runs + config.net_runs);

        // Sim runs take even streams, net runs odd — disjoint stream
        // spaces under one master seed, with full avalanche between
        // neighbouring runs (`split_seed` never collides, unlike the
        // old `base_seed + i` pattern).
        for i in 0..config.sim_runs {
            let seed = rand::split_seed(config.base_seed, 2 * i as u64);
            let (sim_cfg, variant) = sim_variant(i);
            let schedule = FaultSchedule::random(&spec.program, nodes, seed, 4, 20);
            let outcome = run_sim(&spec.program, &spec.goal, seed, &schedule, &sim_cfg)?;
            let report = check_run(&oracle, spec, &outcome, true);
            emit_verdict(journal, "sim", &spec.name, seed, &report);
            runs.push(RunRecord {
                layer: "sim",
                seed,
                variant,
                input: RunInput::Sim {
                    schedule,
                    cfg: sim_cfg,
                },
                report,
            });
        }

        if !config.sim_only {
            for i in 0..config.net_runs {
                let seed = rand::split_seed(config.base_seed, 2 * i as u64 + 1);
                let (net_cfg, variant) = net_variant(i, seed, nodes);
                let outcome = run_net(&spec.program, &spec.goal, seed, &net_cfg)
                    .map_err(|e| format!("{}: net run failed: {e}", spec.name))?;
                let report = check_run(&oracle, spec, &outcome, true);
                emit_verdict(journal, "net", &spec.name, seed, &report);
                runs.push(RunRecord {
                    layer: "net",
                    seed,
                    variant,
                    input: RunInput::Net { cfg: net_cfg },
                    report,
                });
            }
        }

        protocols.push(ProtocolResult {
            name: spec.name.clone(),
            bound: oracle.bound,
            states: oracle.space.len(),
            runs,
        });
    }
    Ok(CorpusReport { protocols })
}

fn emit_verdict(journal: &Journal, layer: &str, protocol: &str, seed: u64, report: &RunReport) {
    journal.emit_with(|| Event::Verdict {
        layer: layer.to_string(),
        protocol: protocol.to_string(),
        seed,
        steps: report.steps_checked,
        verdict: report.verdict().to_string(),
        detail: report
            .divergences
            .first()
            .map(|d| d.to_string())
            .unwrap_or_default(),
    });
}
