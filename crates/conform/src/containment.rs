//! Containment-radius measurement: per-node stabilization verdicts
//! keyed by graph distance to the nearest Byzantine node, emitted as
//! locked [`Event::Containment`] journal records.
//!
//! A correct node's verdict is `stabilized` when it holds its
//! legitimate value at shutdown **and** sits outside every liar's
//! influence region (the protocol's safe set) — i.e. its value is
//! provably immune to any further lie, not merely coincident with the
//! legitimate one at sample time. Everything else is `unstable`: nodes
//! the theory places inside the influence region, and — the case the
//! cross-layer tests exist to catch — any supposedly safe node an
//! execution layer let the liars perturb. The **measured containment
//! radius** is the largest distance-to-liar among unstable nodes
//! (`0` when every correct node stabilized), so a containment
//! violation in either layer inflates that layer's radius and breaks
//! the sim/net/checker agreement loudly.
//!
//! Events are emitted in node order with no wall-clock content beyond
//! the journal's monotone stamp, so two runs that agree on verdicts
//! produce identical containment suffixes regardless of shard count or
//! thread interleaving.

use nonmask_obs::{Event, Journal};
use nonmask_program::{State, VarId};
use nonmask_protocols::{MinPlusOne, SpanningTree};

/// What one correct node must hold to count as stabilized.
#[derive(Debug, Clone)]
struct NodeExpect {
    node: usize,
    /// Hop distance to the nearest Byzantine node.
    distance: u64,
    /// Whether the node is outside every liar's influence region.
    safe: bool,
    /// The legitimate values the node must pin (empty for nodes the
    /// liars cut off from the root — those can never stabilize).
    pins: Vec<(VarId, i64)>,
}

/// The containment expectations of one Byzantine protocol instance:
/// every correct node's distance-to-liar, safety, and legitimate
/// values, ready to judge a final state from any execution layer.
#[derive(Debug, Clone)]
pub struct ContainmentMap {
    /// The corpus-facing protocol name carried into every event.
    pub protocol: String,
    /// The theory's predicted radius for this instance.
    pub predicted_radius: u64,
    byzantine: Vec<usize>,
    nodes: Vec<NodeExpect>,
}

impl ContainmentMap {
    /// Expectations for a Byzantine min+1 BFS instance.
    ///
    /// # Panics
    ///
    /// Panics when the instance has no Byzantine nodes (every distance
    /// would be infinite and the radius meaningless).
    pub fn bfs(proto: &MinPlusOne) -> Self {
        assert!(
            !proto.byzantine().is_empty(),
            "containment needs at least one Byzantine node"
        );
        let legit = proto.legit_distances();
        let to_byz = proto.distance_to_byzantine();
        let safe = proto.safe_set();
        let nodes = (0..proto.topology().len())
            .filter(|v| proto.byzantine().binary_search(v).is_err())
            .map(|v| NodeExpect {
                node: v,
                distance: to_byz[v],
                safe: safe[v],
                pins: legit[v]
                    .map(|l| vec![(proto.dist_var(v), l as i64)])
                    .unwrap_or_default(),
            })
            .collect();
        ContainmentMap {
            protocol: format!("bfs-{}", proto.topology().len()),
            predicted_radius: proto.predicted_radius(),
            byzantine: proto.byzantine().to_vec(),
            nodes,
        }
    }

    /// Expectations for a Byzantine spanning-tree instance: a node
    /// must pin both its distance and its parent pointer.
    ///
    /// # Panics
    ///
    /// Panics when the instance has no Byzantine nodes.
    pub fn spanning_tree(proto: &SpanningTree) -> Self {
        assert!(
            !proto.byzantine().is_empty(),
            "containment needs at least one Byzantine node"
        );
        let legit = proto.legit_distances();
        let to_byz = proto.distance_to_byzantine();
        let safe = proto.safe_set();
        let nodes = (0..proto.topology().len())
            .filter(|v| proto.byzantine().binary_search(v).is_err())
            .map(|v| {
                let pins = match (legit[v], proto.legit_parent(v)) {
                    (Some(l), Some(p)) => vec![
                        (proto.dist_var(v), l as i64),
                        (proto.parent_var(v), p as i64),
                    ],
                    _ => Vec::new(),
                };
                NodeExpect {
                    node: v,
                    distance: to_byz[v],
                    safe: safe[v],
                    pins,
                }
            })
            .collect();
        ContainmentMap {
            protocol: format!("spanning-tree-{}", proto.topology().len()),
            predicted_radius: proto.predicted_radius(),
            byzantine: proto.byzantine().to_vec(),
            nodes,
        }
    }

    /// The sorted Byzantine node set of the judged instance.
    pub fn byzantine(&self) -> &[usize] {
        &self.byzantine
    }

    /// Whether `node` stabilized in `final_state`.
    fn stabilized(&self, expect: &NodeExpect, final_state: &State) -> bool {
        expect.safe
            && !expect.pins.is_empty()
            && expect
                .pins
                .iter()
                .all(|&(var, value)| final_state.get(var) == value)
    }

    /// Judge `final_state` and emit one [`Event::Containment`] per
    /// correct node, in node order; returns the measured radius.
    pub fn emit(&self, final_state: &State, layer: &str, seed: u64, journal: &Journal) -> u64 {
        let mut radius = 0;
        for expect in &self.nodes {
            let stabilized = self.stabilized(expect, final_state);
            if !stabilized {
                radius = radius.max(expect.distance);
            }
            journal.emit_with(|| Event::Containment {
                layer: layer.to_string(),
                protocol: self.protocol.clone(),
                seed,
                node: expect.node as u64,
                distance: expect.distance,
                verdict: if stabilized { "stabilized" } else { "unstable" }.to_string(),
            });
        }
        radius
    }

    /// The measured radius of `final_state` without journaling.
    pub fn measure(&self, final_state: &State) -> u64 {
        self.nodes
            .iter()
            .filter(|e| !self.stabilized(e, final_state))
            .map(|e| e.distance)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_graph::Topology;
    use nonmask_obs::{containment_radius, parse_journal};

    /// line(6), root 0, liar 5: safe set [T,T,T,F,F], radius 2.
    fn line_map() -> (MinPlusOne, ContainmentMap) {
        let proto = MinPlusOne::with_byzantine(&Topology::line(6), 0, &[5]);
        let map = ContainmentMap::bfs(&proto);
        (proto, map)
    }

    #[test]
    fn a_fully_legitimate_state_measures_the_predicted_radius() {
        let (proto, map) = line_map();
        // Even with every correct node on its legitimate value, the
        // unsafe nodes count as unstable: the next lie can move them.
        let mut state = proto.program().min_state();
        for (v, l) in proto.legit_distances().iter().enumerate() {
            if let Some(l) = l {
                state.set(proto.dist_var(v), *l as i64);
            }
        }
        assert_eq!(map.predicted_radius, proto.predicted_radius());
        assert_eq!(map.measure(&state), map.predicted_radius);
    }

    #[test]
    fn a_perturbed_safe_node_inflates_the_radius() {
        let (proto, map) = line_map();
        let mut state = proto.program().min_state();
        for (v, l) in proto.legit_distances().iter().enumerate() {
            if let Some(l) = l {
                state.set(proto.dist_var(v), *l as i64);
            }
        }
        // Node 1 is safe at distance 4 from the liar; a wrong value
        // there is a containment violation and must dominate.
        state.set(proto.dist_var(1), 3);
        assert_eq!(map.measure(&state), 4);
    }

    #[test]
    fn emitted_events_round_trip_to_the_same_radius() {
        let (proto, map) = line_map();
        let mut state = proto.program().min_state();
        for (v, l) in proto.legit_distances().iter().enumerate() {
            if let Some(l) = l {
                state.set(proto.dist_var(v), *l as i64);
            }
        }
        let (journal, buffer) = Journal::memory();
        let radius = map.emit(&state, "sim", 9, &journal);
        journal.flush();
        let records = parse_journal(&buffer.contents()).expect("locked schema");
        assert_eq!(records.len(), 5, "one event per correct node");
        assert_eq!(containment_radius(&records), Some(radius));
        assert_eq!(radius, map.predicted_radius);
    }
}
