//! Deterministic delta-debugging over fault schedules.
//!
//! Classic `ddmin` (Zeller & Hildebrandt): given a failing input and a
//! deterministic test, repeatedly try chunks and chunk-complements at
//! increasing granularity until the surviving entry list is 1-minimal —
//! removing any single remaining entry makes the divergence disappear.
//! Determinism of the test callback is what makes the result a true
//! minimal *reproducer* rather than a flaky witness; the harness asserts
//! it by replaying the shrunk schedule twice.

use crate::schedule::FaultSchedule;

/// Minimize `items` while `fails` keeps returning `true`.
///
/// `fails(subset)` must be deterministic and must return `true` for the
/// full input; the result is a 1-minimal subsequence (original order
/// preserved) that still fails. If the full input does *not* fail, it is
/// returned unchanged.
pub fn ddmin<T: Clone, F: FnMut(&[T]) -> bool>(items: &[T], mut fails: F) -> Vec<T> {
    if fails(&[]) {
        return Vec::new();
    }
    let mut current: Vec<T> = items.to_vec();
    if current.is_empty() || !fails(&current) {
        return current;
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;

        // Try each chunk on its own (big jumps first), then each
        // complement (remove one chunk at a time).
        let mut start = 0;
        while start < current.len() {
            let end = usize::min(start + chunk, current.len());
            let subset: Vec<T> = current[start..end].to_vec();
            if subset.len() < current.len() && fails(&subset) {
                current = subset;
                granularity = 2;
                reduced = true;
                break;
            }
            start = end;
        }
        if reduced {
            continue;
        }

        let mut start = 0;
        while start < current.len() {
            let end = usize::min(start + chunk, current.len());
            let complement: Vec<T> = current[..start]
                .iter()
                .chain(&current[end..])
                .cloned()
                .collect();
            if !complement.is_empty() && complement.len() < current.len() && fails(&complement) {
                current = complement;
                granularity = usize::max(granularity - 1, 2);
                reduced = true;
                break;
            }
            start = end;
        }
        if reduced {
            continue;
        }

        if granularity >= current.len() {
            break;
        }
        granularity = usize::min(granularity * 2, current.len());
    }
    current
}

/// [`ddmin`] specialized to fault schedules: shrink `schedule` to a
/// 1-minimal schedule for which `fails` still reports a divergence.
pub fn shrink_schedule<F: FnMut(&FaultSchedule) -> bool>(
    schedule: &FaultSchedule,
    mut fails: F,
) -> FaultSchedule {
    let entries = ddmin(&schedule.entries, |subset| {
        fails(&FaultSchedule {
            entries: subset.to_vec(),
        })
    });
    FaultSchedule { entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_a_single_culprit() {
        let items: Vec<u32> = (0..32).collect();
        let shrunk = ddmin(&items, |s| s.contains(&17));
        assert_eq!(shrunk, vec![17]);
    }

    #[test]
    fn finds_a_scattered_pair() {
        let items: Vec<u32> = (0..20).collect();
        let shrunk = ddmin(&items, |s| s.contains(&3) && s.contains(&18));
        assert_eq!(shrunk, vec![3, 18]);
    }

    #[test]
    fn empty_failure_shrinks_to_nothing() {
        let items: Vec<u32> = (0..8).collect();
        let shrunk = ddmin(&items, |_| true);
        assert!(shrunk.is_empty());
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let items: Vec<u32> = (0..8).collect();
        let shrunk = ddmin(&items, |s| s.len() > 100);
        assert_eq!(shrunk, items);
    }

    #[test]
    fn result_is_one_minimal() {
        // Fails iff the subset keeps at least 3 even numbers.
        let items: Vec<u32> = (0..16).collect();
        let shrunk = ddmin(&items, |s| s.iter().filter(|v| *v % 2 == 0).count() >= 3);
        assert_eq!(shrunk.len(), 3);
        for i in 0..shrunk.len() {
            let mut without: Vec<u32> = shrunk.clone();
            without.remove(i);
            assert!(without.iter().filter(|v| *v % 2 == 0).count() < 3);
        }
    }
}
