//! The differential conformance checks.
//!
//! A [`ProtocolOracle`] is the checker-side ground truth for one
//! protocol: the exhaustively enumerated state space, the worst-case
//! convergence bound, and the constraint attribution matrix. A
//! [`check_run`] call replays one instrumented execution
//! ([`crate::runner::RunOutcome`]) through that oracle and reports every
//! [`Divergence`]:
//!
//! 1. **Step validity** — every recorded `(before, action, after)` view
//!    transition must be a transition of the reference program: the
//!    state enumerable, the guard enabled, the effect exact.
//! 2. **Repair attribution** — every step by a *designated* repair
//!    action must leave its attributed constraint holding; the
//!    designation itself is cross-validated against the checker's
//!    attribution matrix when the oracle is built.
//! 3. **Convergence envelope** — once faults stop, the observed
//!    stabilization step count must not exceed the checker's worst-case
//!    bound plus an explicit granularity slack.

use nonmask_checker::oracle::{attribute_constraints, ConstraintAttribution, StepOracle};
use nonmask_checker::{worst_case_moves, CheckOptions, StateSpace};
use nonmask_program::Predicate;

use crate::runner::RunOutcome;
use crate::spec::ProtocolSpec;

/// Checker-side ground truth for one protocol, built once and reused
/// across every run of the corpus.
pub struct ProtocolOracle {
    /// The exhaustively enumerated state space of the reference program.
    pub space: StateSpace,
    /// Worst-case convergence bound (moves to the goal from anywhere),
    /// or `None` when the transition relation admits a cycle outside the
    /// goal (the envelope check is then skipped and reported as such).
    pub bound: Option<u64>,
    /// The checker's action-by-constraint attribution matrix.
    pub attribution: ConstraintAttribution,
}

impl ProtocolOracle {
    /// Enumerate the space, compute the bound, and attribute constraints.
    ///
    /// Fails if the spec *designates* a repair pair the checker does not
    /// attribute — a disagreement between the design and the transition
    /// relation that would make every downstream trace check vacuous.
    pub fn build(spec: &ProtocolSpec) -> Result<Self, String> {
        let opts = CheckOptions::default();
        let space = StateSpace::enumerate_with_options(&spec.program, opts)
            .map_err(|e| format!("{}: enumeration failed: {e}", spec.name))?;
        let bound = worst_case_moves(&space, &spec.program, &Predicate::always_true(), &spec.goal)
            .map_err(|e| format!("{}: bound computation failed: {e}", spec.name))?;
        let attribution = attribute_constraints(&space, &spec.program, &spec.constraints, opts)
            .map_err(|e| format!("{}: attribution failed: {e}", spec.name))?;
        for &(action, c) in &spec.designated {
            let name = spec.program.action(action).name();
            if !attribution.establishes(action, c) {
                return Err(format!(
                    "{}: designated pair ({name}, {}) is not established per the checker",
                    spec.name,
                    spec.constraints[c].name()
                ));
            }
            if !attribution.repairs(action, c) {
                return Err(format!(
                    "{}: designated pair ({name}, {}) never repairs per the checker",
                    spec.name,
                    spec.constraints[c].name()
                ));
            }
        }
        Ok(ProtocolOracle {
            space,
            bound,
            attribution,
        })
    }
}

/// One disagreement between an executed run and the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Global sequence number of the offending step, when step-local.
    pub seq: Option<u64>,
    /// Short machine-readable kind: `invalid-step`, `repair-attribution`,
    /// `envelope`, or `non-stabilizing`.
    pub kind: &'static str,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.seq {
            Some(seq) => write!(f, "[{}] step {seq}: {}", self.kind, self.detail),
            None => write!(f, "[{}] {}", self.kind, self.detail),
        }
    }
}

/// The verdict on one instrumented run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Steps validated against the transition relation.
    pub steps_checked: u64,
    /// Designated repair events observed (a designated action firing
    /// from a state violating its constraint and re-establishing it).
    pub repairs_observed: u64,
    /// Observed post-fault convergence steps, when measured.
    pub observed: Option<u64>,
    /// The oracle's worst-case bound.
    pub bound: Option<u64>,
    /// Every disagreement found, in step order.
    pub divergences: Vec<Divergence>,
}

impl RunReport {
    /// Whether the run conforms (no divergences).
    pub fn conforms(&self) -> bool {
        self.divergences.is_empty()
    }

    /// `conforms` / `diverges` for journaling.
    pub fn verdict(&self) -> &'static str {
        if self.conforms() {
            "conforms"
        } else {
            "diverges"
        }
    }
}

/// Replay one execution through the oracle and collect divergences.
///
/// `require_stabilization` should be `true` for corpus runs (every
/// corpus protocol is checker-verified to converge, so a non-stabilizing
/// run *is* a divergence) and `false` for exploratory replays.
pub fn check_run(
    oracle: &ProtocolOracle,
    spec: &ProtocolSpec,
    outcome: &RunOutcome,
    require_stabilization: bool,
) -> RunReport {
    // Replay only needs domain membership and guard/effect re-execution
    // (`validate_step`), so the index-backed oracle suffices: no CSR
    // arrays are touched, and the check works even when the transition
    // table was never materialized or has been dropped.
    let step_oracle = StepOracle::over_index(oracle.space.index(), &spec.program);
    let mut divergences = Vec::new();
    let mut repairs_observed = 0u64;

    for step in &outcome.steps {
        if let Err(fault) = step_oracle.validate_step(step.action, &step.before, &step.after) {
            divergences.push(Divergence {
                seq: Some(step.seq),
                kind: "invalid-step",
                detail: format!(
                    "site {} tick {} action `{}`: {fault}",
                    step.site,
                    step.tick,
                    spec.program.action(step.action).name()
                ),
            });
            continue;
        }
        for &(action, c) in &spec.designated {
            if action != step.action {
                continue;
            }
            let constraint = &spec.constraints[c];
            if !constraint.holds(&step.after) {
                divergences.push(Divergence {
                    seq: Some(step.seq),
                    kind: "repair-attribution",
                    detail: format!(
                        "site {} action `{}` left its attributed constraint `{}` violated",
                        step.site,
                        spec.program.action(action).name(),
                        constraint.name()
                    ),
                });
            } else if !constraint.holds(&step.before) {
                repairs_observed += 1;
            }
        }
    }

    if require_stabilization && !outcome.stabilized {
        divergences.push(Divergence {
            seq: None,
            kind: "non-stabilizing",
            detail: "run exhausted its budget without re-establishing the goal".into(),
        });
    }

    if let (Some(observed), Some(bound)) = (outcome.observed_convergence_steps, oracle.bound) {
        let ceiling = bound + outcome.envelope_slack;
        if observed > ceiling {
            divergences.push(Divergence {
                seq: None,
                kind: "envelope",
                detail: format!(
                    "observed {observed} convergence steps after faults stopped, \
                     checker bound {bound} + slack {} = {ceiling}",
                    outcome.envelope_slack
                ),
            });
        }
    }

    RunReport {
        steps_checked: outcome.steps.len() as u64,
        repairs_observed,
        observed: outcome.observed_convergence_steps,
        bound: oracle.bound,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_sim, SimRunConfig};
    use crate::schedule::FaultSchedule;

    #[test]
    fn oracle_build_validates_the_designations() {
        let spec = ProtocolSpec::token_ring(3, 3);
        let oracle = ProtocolOracle::build(&spec).unwrap();
        assert!(
            oracle.bound.is_some(),
            "token ring convergence is cycle-free outside the invariant"
        );
    }

    #[test]
    fn a_mislabeled_designation_is_rejected() {
        let mut spec = ProtocolSpec::token_ring(3, 3);
        // Claim pass@1 repairs c.2 — the checker knows better.
        let (action, _) = spec.designated[0];
        spec.designated[0] = (action, 1);
        let err = match ProtocolOracle::build(&spec) {
            Ok(_) => panic!("a mislabeled designation must be rejected"),
            Err(err) => err,
        };
        assert!(err.contains("designated pair"), "{err}");
    }

    #[test]
    fn a_clean_run_conforms() {
        let spec = ProtocolSpec::token_ring(3, 3);
        let oracle = ProtocolOracle::build(&spec).unwrap();
        let schedule = FaultSchedule::random(&spec.program, 3, 1, 3, 10);
        let outcome = run_sim(
            &spec.program,
            &spec.goal,
            1,
            &schedule,
            &SimRunConfig::default(),
        )
        .unwrap();
        let report = check_run(&oracle, &spec, &outcome, true);
        assert!(report.conforms(), "divergences: {:?}", report.divergences);
        assert!(report.steps_checked > 0);
    }

    #[test]
    fn a_forged_step_is_flagged() {
        let spec = ProtocolSpec::token_ring(3, 3);
        let oracle = ProtocolOracle::build(&spec).unwrap();
        let outcome = run_sim(
            &spec.program,
            &spec.goal,
            2,
            &FaultSchedule::empty(),
            &SimRunConfig::default(),
        )
        .unwrap();
        let mut forged = outcome.clone();
        if let Some(step) = forged.steps.first_mut() {
            // Pretend the step did nothing: unless the action is a
            // self-loop, the effect no longer matches.
            step.after = step.before.clone();
        }
        if !forged.steps.is_empty() {
            let report = check_run(&oracle, &spec, &forged, true);
            assert!(
                !report.conforms(),
                "a no-op forgery of a real step must diverge"
            );
            assert_eq!(report.divergences[0].kind, "invalid-step");
        }
    }
}
