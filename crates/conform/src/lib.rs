//! Cross-layer conformance: differential testing of the exhaustive
//! checker against the round-based simulator and the socket runtime.
//!
//! The repository has three independent implementations of the same
//! semantics — the checker's enumerated transition relation
//! (`nonmask-checker`), the round-based simulator (`nonmask-sim`), and
//! the socket runtime (`nonmask-net`). This crate makes their agreement
//! a *checked* property rather than an assumption:
//!
//! - every action an execution layer takes is captured in a
//!   [`nonmask_program::StepLog`] and replayed through the checker's
//!   [`nonmask_checker::StepOracle`] — the state must be enumerable, the
//!   guard enabled, the effect exact ([`check`]);
//! - every step by a *designated* repair action must re-establish the
//!   constraint the checker attributes to it;
//! - once faults stop, the observed stabilization step count must stay
//!   inside the checker's worst-case convergence bound (plus an explicit
//!   granularity slack);
//! - when a run diverges, a deterministic delta-debugging shrinker
//!   ([`shrink`]) minimizes the seeded fault schedule ([`schedule`]) to
//!   a 1-minimal reproducing `(protocol, seed, schedule)` triple.
//!
//! The fixed-seed corpus ([`corpus`]) sweeps the worked protocols of the
//! paper through both layers; `nonmask-run conform` is the CLI entry.

pub mod check;
pub mod containment;
pub mod corpus;
pub mod runner;
pub mod schedule;
pub mod shrink;
pub mod spec;

pub use check::{check_run, Divergence, ProtocolOracle, RunReport};
pub use containment::ContainmentMap;
pub use corpus::{
    default_specs, run_corpus, CorpusConfig, CorpusReport, ProtocolResult, RunInput, RunRecord,
};
pub use runner::{
    run_net, run_net_journaled, run_sim, run_sim_journaled, NetRunConfig, RunOutcome, SimRunConfig,
};
pub use schedule::{FaultSchedule, ScheduleEntry};
pub use shrink::{ddmin, shrink_schedule};
pub use spec::ProtocolSpec;
