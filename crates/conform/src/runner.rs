//! Instrumented executions: drive the simulator round-by-round under a
//! [`FaultSchedule`], or launch the socket runtime, with every executed
//! action captured in a [`StepLog`] for the differential checks in
//! [`crate::check`].
//!
//! Both runners are deterministic in their fault input: the simulator is
//! bit-identical given `(program, seed, schedule)`; the socket runtime is
//! deterministic *in its fault schedule* (seeded frame faults, seeded
//! restart states, events pinned to detector-idle points) while thread
//! interleaving may vary — which is exactly why its conformance checks
//! are per-step and timing-independent.

use std::time::Duration;

use nonmask_net::{run as net_run, FaultConfig, NetConfig, NetError, NetEvent};
use nonmask_obs::Journal;
use nonmask_program::{Predicate, Program, State, StepLog, StepRecord, VarId};
use nonmask_sim::{Refinement, SimConfig, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::schedule::{FaultSchedule, ScheduleEntry};

/// Simulator knobs for one conformance run.
#[derive(Debug, Clone)]
pub struct SimRunConfig {
    /// Per-round probability that a coherence message is dropped. The
    /// convergence-envelope check only applies when this is `0.0`: a
    /// lossy channel is a fault source that never stops, so "once faults
    /// stop" never holds.
    pub loss_rate: f64,
    /// Maximum message delay in rounds.
    pub max_delay: u64,
    /// Heartbeat period in rounds.
    pub heartbeat_period: u64,
    /// Round budget before the run is declared non-stabilizing.
    pub max_rounds: u64,
    /// Processes to run as Byzantine liars: they never execute a
    /// program action and broadcast the seeded stateless lie stream
    /// every round. A liar never heals, so the convergence envelope is
    /// not assertable and `goal` must read only safe-region variables.
    pub byzantine: Vec<usize>,
    /// Seed of the Byzantine lie stream.
    pub byzantine_seed: u64,
}

impl Default for SimRunConfig {
    fn default() -> Self {
        SimRunConfig {
            loss_rate: 0.0,
            max_delay: 1,
            heartbeat_period: 1,
            max_rounds: 10_000,
            byzantine: Vec::new(),
            byzantine_seed: 0,
        }
    }
}

impl SimRunConfig {
    /// Whether the post-schedule execution is free of ongoing message
    /// faults, i.e. whether the convergence envelope is assertable.
    /// Byzantine liars are a fault source that never stops.
    pub fn envelope_applies(&self) -> bool {
        self.loss_rate == 0.0 && self.byzantine.is_empty()
    }
}

/// What one instrumented run produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Every executed action, in execution order.
    pub steps: Vec<StepRecord>,
    /// Whether the goal was (re-)established within budget.
    pub stabilized: bool,
    /// Steps executed after the last fault until the goal first held, if
    /// the run stabilized *and* the configuration makes the measurement
    /// meaningful (no ongoing message faults, no runtime events).
    pub observed_convergence_steps: Option<u64>,
    /// Slack the envelope check should allow on top of the checker
    /// bound, covering round/concurrency granularity (the goal is only
    /// sampled at boundaries, so up to one round's worth of legitimate
    /// post-convergence steps lands inside the measurement).
    pub envelope_slack: u64,
    /// Ground truth at the end of the run.
    pub final_state: State,
}

/// Drive one simulator run under `schedule`, capturing every step.
///
/// Entries fire before the round they are pinned to; the run ends at the
/// first round boundary (after all entries have fired) where `goal`
/// holds on ground truth, or when `cfg.max_rounds` is exhausted.
pub fn run_sim(
    exec: &Program,
    goal: &Predicate,
    seed: u64,
    schedule: &FaultSchedule,
    cfg: &SimRunConfig,
) -> Result<RunOutcome, String> {
    run_sim_journaled(exec, goal, seed, schedule, cfg, &Journal::disabled())
}

/// [`run_sim`] with the simulator's fault/stabilization events written
/// to `journal` — the artifact path for divergence reproductions.
pub fn run_sim_journaled(
    exec: &Program,
    goal: &Predicate,
    seed: u64,
    schedule: &FaultSchedule,
    cfg: &SimRunConfig,
    journal: &Journal,
) -> Result<RunOutcome, String> {
    let refinement = Refinement::new(exec).map_err(|e| format!("{}: {e}", exec.name()))?;
    let processes = refinement.process_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let initial = exec.random_state(&mut rng);
    let log = StepLog::new();
    let sim_config = SimConfig {
        seed,
        loss_rate: cfg.loss_rate,
        max_rounds: cfg.max_rounds,
        steps_per_round: 1,
        heartbeat_period: cfg.heartbeat_period,
        max_delay: cfg.max_delay,
    };
    let mut sim = Simulation::new(exec, refinement, initial, sim_config)
        .with_step_log(log.clone())
        .with_journal(journal.clone());
    if !cfg.byzantine.is_empty() {
        sim = sim.with_byzantine(cfg.byzantine.iter().copied(), cfg.byzantine_seed);
    }

    let mut entries = schedule.entries.clone();
    entries.sort_by_key(ScheduleEntry::round);
    let mut next = 0;
    // Steps executed up to (and including) the final fault injection;
    // convergence is measured from here.
    let mut steps_at_quiet = 0u64;
    let mut observed = None;
    loop {
        while next < entries.len() && entries[next].round() <= sim.rounds() {
            apply_entry(&mut sim, &entries[next]);
            next += 1;
            steps_at_quiet = sim.steps();
        }
        if next == entries.len() && goal.holds(&sim.ground_truth()) {
            observed = Some(sim.steps() - steps_at_quiet);
            break;
        }
        if sim.rounds() >= cfg.max_rounds {
            break;
        }
        sim.round();
    }

    let stabilized = observed.is_some();
    Ok(RunOutcome {
        steps: log.snapshot(),
        stabilized,
        observed_convergence_steps: if cfg.envelope_applies() {
            observed
        } else {
            None
        },
        envelope_slack: processes as u64,
        final_state: sim.ground_truth(),
    })
}

fn apply_entry(sim: &mut Simulation<'_>, entry: &ScheduleEntry) {
    match entry {
        ScheduleEntry::CorruptVar { var, value, .. } => {
            sim.corrupt_var(VarId::from_index(*var), *value);
        }
        ScheduleEntry::CorruptProcess { process, .. } => sim.corrupt_process(*process),
        ScheduleEntry::CrashRestart { process, .. } => sim.crash_restart(*process),
        ScheduleEntry::Partition { groups, rounds, .. } => sim.partition(groups, *rounds),
    }
}

/// Socket-runtime knobs for one conformance run.
#[derive(Debug, Clone)]
pub struct NetRunConfig {
    /// Frame-level fault rates (all-zero = reliable links).
    pub faults: FaultConfig,
    /// Runtime events (crash-restarts, partitions) fired at
    /// detector-idle points.
    pub events: Vec<NetEvent>,
    /// Abort threshold for the whole run.
    pub timeout: Duration,
    /// Nodes to run as Byzantine liars: they never execute a program
    /// action and heartbeat the seeded stateless lie stream forever.
    /// A liar never heals, so the convergence envelope is not
    /// assertable and `goal` must read only safe-region variables.
    pub byzantine: Vec<usize>,
    /// Seed of the Byzantine lie stream.
    pub byzantine_seed: u64,
}

impl Default for NetRunConfig {
    fn default() -> Self {
        NetRunConfig {
            faults: FaultConfig::default(),
            events: Vec::new(),
            timeout: Duration::from_secs(60),
            byzantine: Vec::new(),
            byzantine_seed: 0,
        }
    }
}

impl NetRunConfig {
    /// Whether the run's only fault is its random initial state, making
    /// the step-count envelope assertable via linearization.
    pub fn envelope_applies(&self) -> bool {
        let f = &self.faults;
        self.events.is_empty()
            && self.byzantine.is_empty()
            && f.drop_rate == 0.0
            && f.corrupt_rate == 0.0
            && f.duplicate_rate == 0.0
            && f.delay_rate == 0.0
    }
}

/// Launch one socket-runtime run with step capture.
///
/// The observed convergence count is reconstructed by *linearizing* the
/// step log: steps are folded over the initial state in global
/// sequence-number order (each step contributes its executor's owned
/// variables), and the count is the number of folded steps before the
/// goal first holds. Owned variables are single-writer, so the fold's
/// final state is exact; intermediate states are one valid interleaving,
/// which is why the envelope gets a concurrency slack of `2 × nodes`.
pub fn run_net(
    exec: &Program,
    goal: &Predicate,
    seed: u64,
    cfg: &NetRunConfig,
) -> Result<RunOutcome, NetError> {
    run_net_journaled(exec, goal, seed, cfg, &Journal::disabled())
}

/// [`run_net`] with the runtime's fault/episode events written to
/// `journal` — the artifact path for divergence reproductions.
pub fn run_net_journaled(
    exec: &Program,
    goal: &Predicate,
    seed: u64,
    cfg: &NetRunConfig,
    journal: &Journal,
) -> Result<RunOutcome, NetError> {
    let refinement = Refinement::new(exec).map_err(NetError::Refine)?;
    let nodes = refinement.process_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let initial = exec.random_state(&mut rng);
    let log = StepLog::new();
    let config = NetConfig {
        seed,
        faults: FaultConfig {
            seed,
            ..cfg.faults.clone()
        },
        events: cfg.events.clone(),
        timeout: cfg.timeout,
        byzantine: cfg.byzantine.clone(),
        byzantine_seed: cfg.byzantine_seed,
        step_log: Some(log.clone()),
        journal: journal.clone(),
        ..NetConfig::default()
    };
    let report = net_run(exec, &initial, goal, &config)?;
    let steps = log.snapshot();

    let observed = if cfg.envelope_applies() && report.converged {
        let mut truth = initial.clone();
        let mut count = 0u64;
        let mut found = goal.holds(&truth);
        for step in &steps {
            if found {
                break;
            }
            for &var in refinement.vars_of(step.site) {
                truth.set(var, step.after.get(var));
            }
            count += 1;
            found = goal.holds(&truth);
        }
        found.then_some(count)
    } else {
        None
    };

    Ok(RunOutcome {
        steps,
        stabilized: report.converged,
        observed_convergence_steps: observed,
        envelope_slack: 2 * nodes as u64,
        final_state: report.final_state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProtocolSpec;

    #[test]
    fn sim_runs_are_bit_identical_for_the_same_triple() {
        let spec = ProtocolSpec::token_ring(4, 4);
        let schedule = FaultSchedule::random(&spec.program, 4, 3, 4, 12);
        let cfg = SimRunConfig::default();
        let a = run_sim(&spec.program, &spec.goal, 9, &schedule, &cfg).unwrap();
        let b = run_sim(&spec.program, &spec.goal, 9, &schedule, &cfg).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.observed_convergence_steps, b.observed_convergence_steps);
        assert_eq!(a.final_state, b.final_state);
        assert!(a.stabilized, "clean token ring should stabilize");
    }

    #[test]
    fn lossy_runs_opt_out_of_the_envelope() {
        let spec = ProtocolSpec::token_ring(3, 3);
        let cfg = SimRunConfig {
            loss_rate: 0.3,
            max_delay: 3,
            heartbeat_period: 2,
            ..SimRunConfig::default()
        };
        let out = run_sim(&spec.program, &spec.goal, 5, &FaultSchedule::empty(), &cfg).unwrap();
        assert!(out.observed_convergence_steps.is_none());
    }
}
