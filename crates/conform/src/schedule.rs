//! Seeded, serializable fault schedules for simulator runs.
//!
//! A [`FaultSchedule`] is the *entire* fault input of a simulator run:
//! given the same `(program, seed, schedule)` triple the run is
//! bit-identical, which is what lets the delta-debugging shrinker
//! ([`crate::shrink`]) re-execute subsets and trust the outcome. The text
//! form (one entry per line, [`FaultSchedule::render`] /
//! [`FaultSchedule::parse`] round-trip exactly) is what divergence
//! artifacts are written in.

use nonmask_program::Program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fault injection, pinned to the simulator round it fires before.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleEntry {
    /// Set ground-truth variable `var` (a slot index) to `value`.
    CorruptVar {
        /// Round the fault fires before.
        round: u64,
        /// Slot index of the variable.
        var: usize,
        /// The injected value (always within the variable's domain).
        value: i64,
    },
    /// Corrupt every variable of process `process` to random in-domain
    /// values (drawn from the simulator's own seeded stream).
    CorruptProcess {
        /// Round the fault fires before.
        round: u64,
        /// The target process.
        process: usize,
    },
    /// Crash `process` and restart it from domain-minimum values.
    CrashRestart {
        /// Round the fault fires before.
        round: u64,
        /// The target process.
        process: usize,
    },
    /// Partition the network into groups for a number of rounds.
    Partition {
        /// Round the fault fires before.
        round: u64,
        /// Group id per process (same id = same side).
        groups: Vec<usize>,
        /// How many rounds the partition lasts.
        rounds: u64,
    },
}

impl ScheduleEntry {
    /// The round this entry fires before.
    pub fn round(&self) -> u64 {
        match self {
            ScheduleEntry::CorruptVar { round, .. }
            | ScheduleEntry::CorruptProcess { round, .. }
            | ScheduleEntry::CrashRestart { round, .. }
            | ScheduleEntry::Partition { round, .. } => *round,
        }
    }
}

/// An ordered list of fault injections (kept sorted by round).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// The entries, sorted by [`ScheduleEntry::round`] (stable order for
    /// entries sharing a round).
    pub entries: Vec<ScheduleEntry>,
}

impl FaultSchedule {
    /// The empty schedule: no faults beyond the random initial state.
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    /// Derive a random schedule from a seed. Deterministic: the same
    /// `(program, processes, seed, max_entries, horizon)` always yields
    /// the same schedule. Corrupt values are drawn from the variable's
    /// own domain so every injected state stays enumerable.
    pub fn random(
        program: &Program,
        processes: usize,
        seed: u64,
        max_entries: usize,
        horizon: u64,
    ) -> Self {
        // Decouple the schedule stream from the simulator's seed stream.
        let mut rng = StdRng::seed_from_u64(rand::split_seed(seed, 0x5EED_5C8E_D01E));
        let vars: Vec<_> = program.var_ids().collect();
        let count = if max_entries == 0 {
            0
        } else {
            rng.gen_range(0..=max_entries)
        };
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let round = rng.gen_range(0..=horizon);
            let kind = rng.gen_range(0..10u32);
            let entry = match kind {
                0..=3 => {
                    let var = rng.gen_range(0..vars.len());
                    let value = program.var(vars[var]).domain().sample(&mut rng);
                    ScheduleEntry::CorruptVar { round, var, value }
                }
                4..=6 => ScheduleEntry::CorruptProcess {
                    round,
                    process: rng.gen_range(0..processes),
                },
                7..=8 => ScheduleEntry::CrashRestart {
                    round,
                    process: rng.gen_range(0..processes),
                },
                _ => {
                    let groups = (0..processes).map(|_| rng.gen_range(0..2usize)).collect();
                    ScheduleEntry::Partition {
                        round,
                        groups,
                        rounds: rng.gen_range(1..=5),
                    }
                }
            };
            entries.push(entry);
        }
        let mut schedule = FaultSchedule { entries };
        schedule.sort();
        schedule
    }

    /// Restore the sorted-by-round ordering (stable).
    pub fn sort(&mut self) {
        self.entries.sort_by_key(ScheduleEntry::round);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the schedule has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The round of the last entry, if any.
    pub fn last_round(&self) -> Option<u64> {
        self.entries.iter().map(ScheduleEntry::round).max()
    }

    /// Render as text, one entry per line. Round-trips through
    /// [`FaultSchedule::parse`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            match entry {
                ScheduleEntry::CorruptVar { round, var, value } => {
                    out.push_str(&format!("corrupt-var {round} {var} {value}\n"));
                }
                ScheduleEntry::CorruptProcess { round, process } => {
                    out.push_str(&format!("corrupt-process {round} {process}\n"));
                }
                ScheduleEntry::CrashRestart { round, process } => {
                    out.push_str(&format!("crash-restart {round} {process}\n"));
                }
                ScheduleEntry::Partition {
                    round,
                    groups,
                    rounds,
                } => {
                    let groups: Vec<String> = groups.iter().map(ToString::to_string).collect();
                    out.push_str(&format!(
                        "partition {round} {rounds} {}\n",
                        groups.join(",")
                    ));
                }
            }
        }
        out
    }

    /// Parse the [`FaultSchedule::render`] text form. Blank lines and
    /// `#`-comments are ignored.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("schedule line {}: {what}: `{line}`", lineno + 1);
            let fields: Vec<&str> = line.split_whitespace().collect();
            let parse_u64 = |s: &str, what: &str| {
                s.parse::<u64>()
                    .map_err(|_| err(&format!("bad {what} `{s}`")))
            };
            let parse_usize = |s: &str, what: &str| {
                s.parse::<usize>()
                    .map_err(|_| err(&format!("bad {what} `{s}`")))
            };
            let entry = match fields.as_slice() {
                ["corrupt-var", round, var, value] => ScheduleEntry::CorruptVar {
                    round: parse_u64(round, "round")?,
                    var: parse_usize(var, "var")?,
                    value: value
                        .parse::<i64>()
                        .map_err(|_| err(&format!("bad value `{value}`")))?,
                },
                ["corrupt-process", round, process] => ScheduleEntry::CorruptProcess {
                    round: parse_u64(round, "round")?,
                    process: parse_usize(process, "process")?,
                },
                ["crash-restart", round, process] => ScheduleEntry::CrashRestart {
                    round: parse_u64(round, "round")?,
                    process: parse_usize(process, "process")?,
                },
                ["partition", round, rounds, groups] => ScheduleEntry::Partition {
                    round: parse_u64(round, "round")?,
                    rounds: parse_u64(rounds, "duration")?,
                    groups: groups
                        .split(',')
                        .map(|g| parse_usize(g, "group"))
                        .collect::<Result<_, _>>()?,
                },
                _ => return Err(err("unrecognized entry")),
            };
            entries.push(entry);
        }
        let mut schedule = FaultSchedule { entries };
        schedule.sort();
        Ok(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_protocols::token_ring::TokenRing;

    #[test]
    fn render_parse_round_trips() {
        let ring = TokenRing::new(4, 4);
        for seed in 0..32 {
            let schedule = FaultSchedule::random(ring.program(), 4, seed, 6, 20);
            let parsed = FaultSchedule::parse(&schedule.render()).unwrap();
            assert_eq!(schedule, parsed, "seed {seed}");
        }
    }

    #[test]
    fn random_is_deterministic_and_in_domain() {
        let ring = TokenRing::new(4, 4);
        let a = FaultSchedule::random(ring.program(), 4, 7, 6, 20);
        let b = FaultSchedule::random(ring.program(), 4, 7, 6, 20);
        assert_eq!(a, b);
        for entry in &a.entries {
            if let ScheduleEntry::CorruptVar { var, value, .. } = entry {
                let vars: Vec<_> = ring.program().var_ids().collect();
                assert!(ring.program().var(vars[*var]).domain().contains(*value));
            }
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultSchedule::parse("meteor-strike 3 1").is_err());
        assert!(FaultSchedule::parse("corrupt-var 3").is_err());
        assert!(FaultSchedule::parse("corrupt-var x 0 0").is_err());
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# a comment\n\ncorrupt-var 3 0 1\n";
        let schedule = FaultSchedule::parse(text).unwrap();
        assert_eq!(schedule.len(), 1);
    }
}
