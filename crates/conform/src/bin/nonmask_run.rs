//! `nonmask-run`: launch a protocol as distributed TCP-loopback nodes
//! under configurable fault rates, or replay/produce observability
//! journals.
//!
//! ```text
//! nonmask-run token-ring --nodes 5 --k 5 --loss 0.2 --seed 1
//! nonmask-run diffusing --nodes 7 --loss 0.3 --crash 2 --json out.json
//! nonmask-run token-ring --crash 2 --journal run.jsonl
//! nonmask-run check --nodes 5 --journal check.jsonl
//! nonmask-run conform --smoke --out conform-out
//! nonmask-run trace check.jsonl
//! nonmask-run --list
//! ```
//!
//! A protocol run starts from a seeded random (usually illegitimate)
//! state, waits for the runtime detector to observe convergence,
//! optionally crash-restarts one node into an arbitrary state and waits
//! for reconvergence, then prints the observability report. `check` runs
//! the exhaustive checker on the token ring and journals a convergence
//! witness as a per-constraint repair timeline; `trace` replays any
//! journal as human-readable text (and fails on schema drift, which is
//! what the CI gate leans on).

use std::process::ExitCode;
use std::time::Duration;

use nonmask_checker::convergence::{check_convergence_stats, shortest_path_to};
use nonmask_checker::{replay_constraints, CheckOptions, Fairness, StateSpace};
use nonmask_net::{run, FaultConfig, Journal, NetConfig, NetEvent};
use nonmask_obs::{parse_journal, render_timeline};
use nonmask_program::{Predicate, Program, State};
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::Tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

const USAGE: &str = "\
usage: nonmask-run <protocol> [options]
       nonmask-run check [options]
       nonmask-run conform [--smoke] [--seed S] [--out DIR] [--sim-only]
       nonmask-run synth --protocol P [--out FILE] [--golden FILE] [--conform]
       nonmask-run fleet [--tenants N] [--protocols ring|mixed] [--out FILE]
       nonmask-run byzantine [--protocol bfs|spanning-tree] [--nodes N] [--byz A,B]
       nonmask-run trace <journal.jsonl>

protocols:
  token-ring        Dijkstra's K-state token ring (--nodes, --k)
  diffusing         diffusing computation on a binary tree (--nodes)

subcommands:
  check             model-check the token ring and journal a convergence
                    witness as a per-constraint repair timeline
  conform           differential conformance: replay every simulator and
                    socket-runtime step through the checker's transition
                    relation over a fixed-seed corpus; on divergence,
                    shrink the fault schedule and write repro artifacts
                    (--smoke: CI-sized corpus; --out: artifact dir;
                    --journal: verdict journal; --sim-only: skip sockets;
                    --planted-bug: self-test, needs feature planted-bug)
  synth             derive the convergence actions of a protocol from its
                    constraint decomposition alone and print the
                    checker-certified design
                    (--protocol token-ring|diffusing|coloring;
                    --nodes/--window/--colors: instance size;
                    --threads: certification workers; --out: write the
                    rendered design; --journal: synthesis event journal;
                    --golden FILE: diff against a committed design, exit
                    nonzero on drift; --conform: feed the synthesized
                    design through the smoke conformance corpus)
  fleet             batch-step a population of protocol instances to
                    stabilization over the verdict cache and report
                    throughput, cache hit rate, and latency percentiles
                    versus the certified bounds
                    (--tenants: population size; --protocols ring|mixed;
                    --seed: master seed; --workers/--slab-size:
                    scheduling knobs, bit-identical results either way;
                    --faults: transient faults per tenant; --journal:
                    population-summary journal; --out: JSON report)
  byzantine         containment-radius agreement battery: run one
                    Byzantine instance through the simulator and the
                    socket runtime on the same seed, measure the
                    containment radius from each journal's per-node
                    verdicts, and certify the radius with the checker's
                    restricted-region convergence sweep on a small
                    instance of the same family; exit 2 on any radius
                    violation
                    (--protocol bfs|spanning-tree; --nodes: graph size;
                    --degree/--topo-seed: random-graph shape; --byz:
                    comma-separated liar nodes; --seed: run seed;
                    --check-nodes: checker instance size; --out DIR:
                    write sim/net/small journals and a JSON summary)
  trace             replay a JSON-lines journal as a readable timeline
                    (exits nonzero on any schema drift)

options:
  --nodes N         number of processes            (default 5; diffusing: tree size)
  --k K             token-ring counter modulus     (default = nodes)
  --loss P          frame drop probability         (default 0.2)
  --corrupt P       frame bit-flip probability     (default loss/4)
  --dup P           frame duplication probability  (default loss/4)
  --delay P         frame delay probability        (default loss/2)
  --seed S          RNG seed (faults, initial and restart states)  (default 1)
  --crash NODE      crash-restart NODE into an arbitrary state mid-run
  --down-ms MS      crash downtime                 (default 50)
  --timeout-ms MS   abort threshold                (default 30000)
  --shards S        reactor worker shards          (default 0 = auto)
  --json PATH       also write the machine-readable report to PATH
  --journal PATH    write a JSON-lines event journal to PATH
                    (for `check`: default prints the timeline instead)
  --list            list protocols and exit
  --help            this text";

struct Args {
    protocol: String,
    nodes: usize,
    k: Option<i64>,
    loss: f64,
    corrupt: Option<f64>,
    dup: Option<f64>,
    delay: Option<f64>,
    seed: u64,
    crash: Option<usize>,
    down_ms: u64,
    timeout_ms: u64,
    json: Option<String>,
    journal: Option<String>,
    shards: usize,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        protocol: String::new(),
        nodes: 5,
        k: None,
        loss: 0.2,
        corrupt: None,
        dup: None,
        delay: None,
        seed: 1,
        crash: None,
        down_ms: 50,
        timeout_ms: 30_000,
        json: None,
        journal: None,
        shards: 0,
    };
    let mut i = 0;
    while i < argv.len() {
        let arg = argv[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg {
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--k" => args.k = Some(value("--k")?.parse().map_err(|e| format!("--k: {e}"))?),
            "--loss" => {
                args.loss = value("--loss")?
                    .parse()
                    .map_err(|e| format!("--loss: {e}"))?
            }
            "--corrupt" => {
                args.corrupt = Some(
                    value("--corrupt")?
                        .parse()
                        .map_err(|e| format!("--corrupt: {e}"))?,
                )
            }
            "--dup" => args.dup = Some(value("--dup")?.parse().map_err(|e| format!("--dup: {e}"))?),
            "--delay" => {
                args.delay = Some(
                    value("--delay")?
                        .parse()
                        .map_err(|e| format!("--delay: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--crash" => {
                args.crash = Some(
                    value("--crash")?
                        .parse()
                        .map_err(|e| format!("--crash: {e}"))?,
                )
            }
            "--down-ms" => {
                args.down_ms = value("--down-ms")?
                    .parse()
                    .map_err(|e| format!("--down-ms: {e}"))?
            }
            "--timeout-ms" => {
                args.timeout_ms = value("--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--timeout-ms: {e}"))?
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--json" => args.json = Some(value("--json")?),
            "--journal" => args.journal = Some(value("--journal")?),
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            other if args.protocol.is_empty() => args.protocol = other.to_owned(),
            other => return Err(format!("unexpected argument `{other}`")),
        }
        i += 1;
    }
    if args.protocol.is_empty() {
        return Err("missing protocol".to_owned());
    }
    Ok(args)
}

/// The protocol's program, goal predicate, and seeded initial state.
fn build_protocol(args: &Args) -> Result<(Program, Predicate, State), String> {
    let mut rng = StdRng::seed_from_u64(args.seed);
    match args.protocol.as_str() {
        "token-ring" => {
            if args.nodes < 2 {
                return Err("token-ring needs --nodes >= 2".to_owned());
            }
            let k = args.k.unwrap_or(args.nodes as i64);
            if k < 2 {
                return Err("token-ring needs --k >= 2".to_owned());
            }
            let ring = TokenRing::new(args.nodes, k);
            let initial = ring.program().random_state(&mut rng);
            Ok((ring.program().clone(), ring.invariant(), initial))
        }
        "diffusing" => {
            if args.nodes < 1 {
                return Err("diffusing needs --nodes >= 1".to_owned());
            }
            let dc = DiffusingComputation::new(&Tree::binary(args.nodes));
            let initial = dc.program().random_state(&mut rng);
            Ok((dc.program().clone(), dc.invariant(), initial))
        }
        other => Err(format!("unknown protocol `{other}`; try --list")),
    }
}

/// `trace <journal.jsonl>`: replay a journal as a readable timeline;
/// any schema drift is a hard failure.
fn trace_main(argv: &[String]) -> ExitCode {
    let [path] = argv else {
        eprintln!("error: trace takes exactly one journal path\n\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match parse_journal(&text) {
        Ok(records) => {
            print!("{}", render_timeline(&records));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `check`: model-check the token ring, then journal a witness
/// computation from a corrupt state as a §4 constraint-repair timeline.
fn check_main(args: &Args) -> ExitCode {
    match check_ring(args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn check_ring(args: &Args) -> Result<ExitCode, String> {
    let n = args.nodes;
    if n < 2 {
        return Err("check needs --nodes >= 2".to_owned());
    }
    let k = args.k.unwrap_or(n as i64);
    if k < 2 {
        return Err("check needs --k >= 2".to_owned());
    }
    let ring = TokenRing::new(n, k);
    let program = ring.program();

    // Journal to the requested file, or to memory (rendered at the end).
    let (journal, memory) = match &args.journal {
        Some(path) => (
            Journal::to_file(path).map_err(|e| format!("cannot create {path}: {e}"))?,
            None,
        ),
        None => {
            let (journal, buffer) = Journal::memory();
            (journal, Some(buffer))
        }
    };

    let opts = CheckOptions::default();
    let space = StateSpace::enumerate_journaled(program, opts, &journal)
        .map_err(|e| format!("enumeration failed: {e}"))?;
    let (convergence, _) = check_convergence_stats(
        &space,
        program,
        &Predicate::always_true(),
        &ring.invariant(),
        Fairness::WeaklyFair,
        opts,
        &journal,
    )
    .map_err(|e| format!("convergence check failed: {e}"))?;

    // §4 constraint decomposition of the ring: c.j ≡ `x.j = x.(j-1)`.
    // The constraint graph is the ring's chain (c.j reads only c.(j-1)'s
    // variables), and on the all-agree states only the root holds the
    // privilege — the paper's Theorem 2 shape.
    let constraints: Vec<Predicate> = (1..n)
        .map(|j| {
            let xj = ring.counter_var(j);
            let xp = ring.counter_var(j - 1);
            Predicate::new(format!("c.{j}"), [xj, xp], move |s| s.get(xj) == s.get(xp))
        })
        .collect();

    // A maximally disagreeing start: every boundary violates its
    // constraint, so the witness shows the whole repair cascade.
    let corrupt = program
        .state_from((0..n).map(|j| ((n - j) as i64) % k).collect::<Vec<_>>())
        .map_err(|e| format!("corrupt state: {e}"))?;
    let all_vars: Vec<_> = program.var_ids().collect();
    let corrupt_eq = corrupt.clone();
    let from = Predicate::new("corrupt-start", all_vars.clone(), move |s| *s == corrupt_eq);
    let agree = Predicate::new("all-agree", all_vars, {
        let constraints = constraints.clone();
        move |s| constraints.iter().all(|c| c.holds(s))
    });
    let targets: Vec<State> = space
        .satisfying(&agree)
        .map_err(|e| format!("target scan failed: {e}"))?
        .into_iter()
        .map(|id| space.state(id))
        .collect();
    let path = shortest_path_to(&space, &from, &targets)
        .map_err(|e| format!("path search failed: {e}"))?
        .ok_or("no path from the corrupt state to the all-agree states")?;
    let transitions = replay_constraints(program, &path, &constraints, &journal);
    journal.flush();

    println!(
        "token ring n={n} k={k}: {} states, converges: {}, witness path {} steps, {} constraint transitions",
        space.len(),
        convergence.converges(),
        path.len() - 1,
        transitions.len()
    );
    match (&args.journal, memory) {
        (Some(path), _) => println!("journal written to {path}"),
        (None, Some(buffer)) => {
            let records = parse_journal(&buffer.contents())
                .map_err(|e| format!("journal replay failed: {e}"))?;
            print!("{}", render_timeline(&records));
        }
        (None, None) => unreachable!("memory journal exists when no path is given"),
    }
    Ok(if convergence.converges() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if argv.iter().any(|a| a == "--list") {
        println!("token-ring\ndiffusing");
        return ExitCode::SUCCESS;
    }
    if argv.first().map(String::as_str) == Some("trace") {
        return trace_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("conform") {
        return conform::main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("synth") {
        return synth::main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("fleet") {
        return fleet::main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("byzantine") {
        return byzantine::main(&argv[1..]);
    }
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.protocol == "check" {
        return check_main(&args);
    }

    let (program, goal, initial) = match build_protocol(&args) {
        Ok(built) => built,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let faults = FaultConfig {
        seed: args.seed,
        drop_rate: args.loss,
        corrupt_rate: args.corrupt.unwrap_or(args.loss / 4.0),
        duplicate_rate: args.dup.unwrap_or(args.loss / 4.0),
        delay_rate: args.delay.unwrap_or(args.loss / 2.0),
        max_delay_ticks: 8,
    };
    let events = match args.crash {
        Some(node) => vec![NetEvent::CrashRestart {
            node,
            at_least: Duration::ZERO,
            down: Duration::from_millis(args.down_ms),
        }],
        None => Vec::new(),
    };
    let journal = match &args.journal {
        Some(path) => match Journal::to_file(path) {
            Ok(journal) => journal,
            Err(e) => {
                eprintln!("error: cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Journal::disabled(),
    };
    let config = NetConfig {
        seed: args.seed,
        faults,
        timeout: Duration::from_millis(args.timeout_ms),
        events,
        journal,
        shards: args.shards,
        ..NetConfig::default()
    };

    println!(
        "launching `{}` as {} socket nodes (loss {:.0}%, seed {})",
        program.name(),
        args.nodes,
        args.loss * 100.0,
        args.seed
    );
    let report = match run(&program, &initial, &goal, &config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = &args.journal {
        eprintln!("journal written to {path}");
    }
    if report.converged {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `conform`: the fixed-seed differential conformance corpus, plus the
/// planted-bug self-test when built with `--features planted-bug`.
mod conform {
    use std::process::ExitCode;

    use nonmask_conform::{
        check_run, default_specs, run_corpus, run_net_journaled, run_sim, run_sim_journaled,
        shrink_schedule, CorpusConfig, CorpusReport, ProtocolOracle, ProtocolSpec, RunInput,
    };
    use nonmask_obs::{Event, Journal};

    struct Args {
        smoke: bool,
        seed: u64,
        out: String,
        journal: Option<String>,
        sim_only: bool,
        planted: bool,
    }

    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args {
            smoke: false,
            seed: 1,
            out: "conform-out".to_owned(),
            journal: None,
            sim_only: false,
            planted: false,
        };
        let mut i = 0;
        while i < argv.len() {
            let arg = argv[i].as_str();
            let mut value = |name: &str| -> Result<String, String> {
                i += 1;
                argv.get(i)
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg {
                "--smoke" => args.smoke = true,
                "--sim-only" => args.sim_only = true,
                "--planted-bug" => args.planted = true,
                "--seed" => {
                    args.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--out" => args.out = value("--out")?,
                "--journal" => args.journal = Some(value("--journal")?),
                other => return Err(format!("unknown conform option `{other}`")),
            }
            i += 1;
        }
        Ok(args)
    }

    pub fn main(argv: &[String]) -> ExitCode {
        let args = match parse(argv) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}\n\n{}", super::USAGE);
                return ExitCode::FAILURE;
            }
        };
        if args.planted {
            return planted_main(&args);
        }

        let specs = default_specs();
        let mut config = if args.smoke {
            CorpusConfig::smoke(args.seed)
        } else {
            CorpusConfig::full(args.seed)
        };
        config.sim_only = args.sim_only;
        let journal = match &args.journal {
            Some(path) => match Journal::to_file(path) {
                Ok(journal) => journal,
                Err(e) => {
                    eprintln!("error: cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => Journal::disabled(),
        };
        println!(
            "conformance corpus: {} protocols, {} sim + {} net runs each (base seed {})",
            specs.len(),
            config.sim_runs,
            if config.sim_only { 0 } else { config.net_runs },
            args.seed
        );
        let report = match run_corpus(&specs, &config, &journal) {
            Ok(report) => report,
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        };
        journal.flush();
        print!("{}", report.render());
        if let Some(path) = &args.journal {
            eprintln!("verdict journal written to {path}");
        }
        if report.divergent_runs() == 0 {
            ExitCode::SUCCESS
        } else {
            if let Err(msg) = write_artifacts(&report, &specs, &args.out) {
                eprintln!("error writing artifacts: {msg}");
            }
            // Distinct from infrastructure failure (1): the layers ran,
            // but they disagree with the checker.
            ExitCode::from(2)
        }
    }

    /// For every divergent run: shrink its fault schedule (sim) to a
    /// 1-minimal reproducer and write the `(protocol, seed, schedule)`
    /// triple plus a re-execution journal under `out`.
    fn write_artifacts(
        report: &CorpusReport,
        specs: &[ProtocolSpec],
        out: &str,
    ) -> Result<(), String> {
        std::fs::create_dir_all(out).map_err(|e| format!("cannot create {out}: {e}"))?;
        for protocol in &report.protocols {
            if protocol.divergent().next().is_none() {
                continue;
            }
            let spec = specs
                .iter()
                .find(|s| s.name == protocol.name)
                .ok_or_else(|| format!("no spec named {}", protocol.name))?;
            let oracle = ProtocolOracle::build(spec)?;
            for run in protocol.divergent() {
                let stem = format!("{out}/{}-{}-seed{}", protocol.name, run.layer, run.seed);
                let journal = Journal::to_file(format!("{stem}.journal.jsonl"))
                    .map_err(|e| format!("cannot create {stem}.journal.jsonl: {e}"))?;
                match &run.input {
                    RunInput::Sim { schedule, cfg } => {
                        let shrunk = shrink_schedule(schedule, |candidate| {
                            run_sim(&spec.program, &spec.goal, run.seed, candidate, cfg)
                                .map(|o| !check_run(&oracle, spec, &o, true).conforms())
                                .unwrap_or(false)
                        });
                        let outcome = run_sim_journaled(
                            &spec.program,
                            &spec.goal,
                            run.seed,
                            &shrunk,
                            cfg,
                            &journal,
                        )?;
                        let verdict = check_run(&oracle, spec, &outcome, true);
                        emit_verdict(&journal, "sim", &protocol.name, run.seed, &verdict);
                        let text = format!(
                            "# minimal reproducing fault schedule\n# protocol {}\n# layer sim ({})\n# seed {}\n# replay: deterministic given (protocol, seed, schedule)\n{}",
                            protocol.name,
                            run.variant,
                            run.seed,
                            shrunk.render()
                        );
                        std::fs::write(format!("{stem}.schedule"), text)
                            .map_err(|e| format!("cannot write {stem}.schedule: {e}"))?;
                        println!(
                            "repro: {} sim seed {} shrunk to {} fault(s) -> {stem}.schedule",
                            protocol.name,
                            run.seed,
                            shrunk.len()
                        );
                    }
                    RunInput::Net { cfg } => {
                        let outcome =
                            run_net_journaled(&spec.program, &spec.goal, run.seed, cfg, &journal)
                                .map_err(|e| format!("net replay failed: {e}"))?;
                        let verdict = check_run(&oracle, spec, &outcome, true);
                        emit_verdict(&journal, "net", &protocol.name, run.seed, &verdict);
                        println!(
                            "repro: {} net seed {} ({}) -> {stem}.journal.jsonl",
                            protocol.name, run.seed, run.variant
                        );
                    }
                }
                journal.flush();
            }
        }
        Ok(())
    }

    fn emit_verdict(
        journal: &Journal,
        layer: &str,
        protocol: &str,
        seed: u64,
        report: &nonmask_conform::RunReport,
    ) {
        journal.emit_with(|| Event::Verdict {
            layer: layer.to_string(),
            protocol: protocol.to_string(),
            seed,
            steps: report.steps_checked,
            verdict: report.verdict().to_string(),
            detail: report
                .divergences
                .first()
                .map(ToString::to_string)
                .unwrap_or_default(),
        });
    }

    /// Self-test: execute the planted token-ring mutant against the
    /// healthy oracle — the harness must detect the divergence and
    /// shrink the fault schedule to a ≤5-event reproducer.
    #[cfg(feature = "planted-bug")]
    fn planted_main(args: &Args) -> ExitCode {
        use nonmask_conform::{FaultSchedule, SimRunConfig};
        use nonmask_program::Predicate;

        let spec = ProtocolSpec::token_ring(4, 4);
        let mutant = ProtocolSpec::token_ring_mutant_program(4, 4);
        let oracle = match ProtocolOracle::build(&spec) {
            Ok(oracle) => oracle,
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        };
        // Run for a fixed horizon (never-satisfied goal) so the token
        // always revisits the mutated root action.
        let never = Predicate::always_false();
        let cfg = SimRunConfig {
            max_rounds: 60,
            ..SimRunConfig::default()
        };
        let diverges = |schedule: &FaultSchedule| {
            run_sim(&mutant, &never, args.seed, schedule, &cfg)
                .map(|o| !check_run(&oracle, &spec, &o, false).conforms())
                .unwrap_or(false)
        };
        let schedule = FaultSchedule::random(&spec.program, 4, args.seed, 8, 40);
        if !diverges(&schedule) {
            eprintln!("planted bug NOT detected (seed {})", args.seed);
            return ExitCode::FAILURE;
        }
        let shrunk = shrink_schedule(&schedule, diverges);
        println!(
            "planted bug detected; schedule shrunk {} -> {} fault(s)",
            schedule.len(),
            shrunk.len()
        );
        println!(
            "repro: protocol {} seed {} schedule:\n{}",
            spec.name,
            args.seed,
            if shrunk.is_empty() {
                "(empty — the bug needs no faults)".to_owned()
            } else {
                shrunk.render()
            }
        );
        if shrunk.len() <= 5 {
            ExitCode::SUCCESS
        } else {
            eprintln!("shrunk schedule still has {} faults (> 5)", shrunk.len());
            ExitCode::FAILURE
        }
    }

    #[cfg(not(feature = "planted-bug"))]
    fn planted_main(_args: &Args) -> ExitCode {
        eprintln!(
            "error: the planted-bug self-test needs `--features planted-bug` \
             (cargo run -p nonmask-conform --features planted-bug --bin nonmask-run -- conform --planted-bug)"
        );
        ExitCode::FAILURE
    }
}

/// `fleet`: batch-step a population of lightweight protocol instances to
/// stabilization, with checker verdicts shared through the fleet's
/// first-tenant-pays cache.
mod fleet {
    use std::process::ExitCode;

    use nonmask_fleet::{run_fleet, FleetConfig, FleetProtocol};
    use nonmask_obs::Journal;

    struct Args {
        tenants: u64,
        protocols: String,
        seed: u64,
        workers: usize,
        slab_size: usize,
        faults: u32,
        journal: Option<String>,
        out: Option<String>,
    }

    fn parse(argv: &[String]) -> Result<Args, String> {
        let defaults = FleetConfig::default();
        let mut args = Args {
            tenants: defaults.tenants,
            protocols: "ring".to_owned(),
            seed: defaults.master_seed,
            workers: defaults.workers,
            slab_size: defaults.slab_size,
            faults: defaults.faults_per_tenant,
            journal: None,
            out: None,
        };
        let mut i = 0;
        while i < argv.len() {
            let arg = argv[i].as_str();
            let mut value = |name: &str| -> Result<String, String> {
                i += 1;
                argv.get(i)
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg {
                "--tenants" => {
                    args.tenants = value("--tenants")?
                        .parse()
                        .map_err(|e| format!("--tenants: {e}"))?
                }
                "--protocols" => args.protocols = value("--protocols")?,
                "--seed" => {
                    args.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--workers" => {
                    args.workers = value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?
                }
                "--slab-size" => {
                    args.slab_size = value("--slab-size")?
                        .parse()
                        .map_err(|e| format!("--slab-size: {e}"))?
                }
                "--faults" => {
                    args.faults = value("--faults")?
                        .parse()
                        .map_err(|e| format!("--faults: {e}"))?
                }
                "--journal" => args.journal = Some(value("--journal")?),
                "--out" => args.out = Some(value("--out")?),
                other => return Err(format!("unknown fleet option `{other}`")),
            }
            i += 1;
        }
        Ok(args)
    }

    pub fn main(argv: &[String]) -> ExitCode {
        let args = match parse(argv) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}\n\n{}", super::USAGE);
                return ExitCode::FAILURE;
            }
        };
        match run(&args) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        }
    }

    fn run(args: &Args) -> Result<ExitCode, String> {
        let protocols = match args.protocols.as_str() {
            "ring" => FleetProtocol::ring_mix(),
            "mixed" => FleetProtocol::mixed(),
            other => return Err(format!("unknown protocol set `{other}` (ring|mixed)")),
        };
        let config = FleetConfig {
            protocols,
            tenants: args.tenants,
            master_seed: args.seed,
            workers: args.workers,
            slab_size: args.slab_size,
            faults_per_tenant: args.faults,
            ..FleetConfig::default()
        };
        let journal = match &args.journal {
            Some(path) => {
                Journal::to_file(path).map_err(|e| format!("cannot create {path}: {e}"))?
            }
            None => Journal::disabled(),
        };
        println!(
            "fleet: {} tenants over {} configurations (seed {:#x}, {} faults/tenant)",
            config.tenants,
            config.protocols.len(),
            config.master_seed,
            config.faults_per_tenant
        );
        let report = run_fleet(&config, &journal).map_err(|e| e.to_string())?;
        journal.flush();

        println!(
            "{} tenants retired in {:.3}s ({:.0} instances/s, {:.0} steps/s), \
             {} B/instance, cache hit rate {:.4}%",
            report.tenants,
            report.wall.as_secs_f64(),
            report.instances_per_second(),
            report.steps_per_second(),
            report.bytes_per_instance,
            report.cache_hit_rate() * 100.0
        );
        println!(
            "latency: p50 {} p99 {} max {} steps; digest {:016x}",
            report.histogram.percentile(50.0).unwrap_or(0),
            report.histogram.percentile(99.0).unwrap_or(0),
            report.histogram.max(),
            report.digest()
        );
        for c in &report.configs {
            println!(
                "  {:<16} {:>8} tenants {:>10} steps  max latency {:>3} / bound {:<4} {}",
                c.key,
                c.tenants,
                c.steps,
                c.max_latency,
                c.bound.map_or("-".to_string(), |b| b.to_string()),
                if c.within_bound() { "ok" } else { "VIOLATED" }
            );
        }
        if let Some(path) = &args.journal {
            eprintln!("population journal written to {path}");
        }
        if let Some(path) = &args.out {
            std::fs::write(path, report.to_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        Ok(if report.violations() == 0 {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "error: {} verdict-contradicting tenants/configurations",
                report.violations()
            );
            ExitCode::from(2)
        })
    }
}

/// `synth`: run the constraint-guided synthesizer on one of the paper's
/// decompositions, print the certified design, and optionally golden-diff
/// it or feed it through the conformance corpus.
mod synth {
    use std::process::ExitCode;

    use nonmask_conform::{run_corpus, CorpusConfig, ProtocolSpec};
    use nonmask_lang::compile_predicate;
    use nonmask_obs::Journal;
    use nonmask_program::ActionId;
    use nonmask_synth::{specs, synthesize, SynthOptions, SynthResult, SynthSpec};

    struct Args {
        protocol: String,
        nodes: Option<usize>,
        window: Option<i64>,
        colors: Option<i64>,
        threads: usize,
        out: Option<String>,
        journal: Option<String>,
        golden: Option<String>,
        conform: bool,
        seed: u64,
    }

    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args {
            protocol: String::new(),
            nodes: None,
            window: None,
            colors: None,
            threads: 0,
            out: None,
            journal: None,
            golden: None,
            conform: false,
            seed: 1,
        };
        let mut i = 0;
        while i < argv.len() {
            let arg = argv[i].as_str();
            let mut value = |name: &str| -> Result<String, String> {
                i += 1;
                argv.get(i)
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg {
                "--protocol" => args.protocol = value("--protocol")?,
                "--nodes" => {
                    args.nodes = Some(
                        value("--nodes")?
                            .parse()
                            .map_err(|e| format!("--nodes: {e}"))?,
                    )
                }
                "--window" => {
                    args.window = Some(
                        value("--window")?
                            .parse()
                            .map_err(|e| format!("--window: {e}"))?,
                    )
                }
                "--colors" => {
                    args.colors = Some(
                        value("--colors")?
                            .parse()
                            .map_err(|e| format!("--colors: {e}"))?,
                    )
                }
                "--threads" => {
                    args.threads = value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?
                }
                "--seed" => {
                    args.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--out" => args.out = Some(value("--out")?),
                "--journal" => args.journal = Some(value("--journal")?),
                "--golden" => args.golden = Some(value("--golden")?),
                "--conform" => args.conform = true,
                other => return Err(format!("unknown synth option `{other}`")),
            }
            i += 1;
        }
        if args.protocol.is_empty() {
            return Err("synth needs --protocol token-ring|diffusing|coloring".to_owned());
        }
        Ok(args)
    }

    fn spec_for(args: &Args) -> Result<SynthSpec, String> {
        match args.protocol.as_str() {
            "token-ring" => Ok(specs::token_ring_windowed(
                args.nodes.unwrap_or(4),
                args.window.unwrap_or(3),
            )),
            "diffusing" => Ok(specs::diffusing(args.nodes.unwrap_or(7))),
            "coloring" => Ok(specs::coloring(
                args.nodes.unwrap_or(7),
                args.colors.unwrap_or(3),
            )),
            other => Err(format!("unknown synth protocol `{other}`")),
        }
    }

    /// A conformance-corpus spec for the synthesized design: the same
    /// program/goal/constraints the synthesizer certified, with the
    /// derived `repair.*` actions as the designated repairs.
    fn corpus_spec(spec: &SynthSpec, out: &SynthResult) -> Result<ProtocolSpec, String> {
        let program = out.design.program().clone();
        let goal = compile_predicate(&program, &out.def, "goal", &spec.goal)
            .map_err(|e| format!("goal does not compile against the design: {e}"))?;
        let base_count = spec.base.actions.len();
        let mut constraints = Vec::with_capacity(spec.constraints.len());
        let mut designated = Vec::with_capacity(spec.constraints.len());
        for (ci, sc) in spec.constraints.iter().enumerate() {
            constraints.push(
                compile_predicate(&program, &out.def, &sc.name, &sc.expr)
                    .map_err(|e| format!("constraint {}: {e}", sc.name))?,
            );
            designated.push((ActionId::from_index(base_count + ci), ci));
        }
        Ok(ProtocolSpec {
            name: format!("synth-{}", out.spec_name),
            program,
            goal,
            constraints,
            designated,
        })
    }

    pub fn main(argv: &[String]) -> ExitCode {
        let args = match parse(argv) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}\n\n{}", super::USAGE);
                return ExitCode::FAILURE;
            }
        };
        match run(&args) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        }
    }

    fn run(args: &Args) -> Result<ExitCode, String> {
        let spec = spec_for(args)?;
        let journal = match &args.journal {
            Some(path) => nonmask_obs::Journal::to_file(path)
                .map_err(|e| format!("cannot create {path}: {e}"))?,
            None => Journal::disabled(),
        };
        let opts = SynthOptions {
            threads: args.threads,
            ..SynthOptions::default()
        };
        let out = synthesize(&spec, &opts, &journal).map_err(|e| e.to_string())?;
        journal.flush();

        let rendered = out.render();
        print!("{rendered}");
        println!(
            "synth {}: {} states, {} candidates -> {} survivors -> {} certified; \
             {} oracle sweeps ({} unpruned, {:.1}x saved); {}",
            out.spec_name,
            out.metrics.states,
            out.metrics.candidates,
            out.metrics.survivors,
            out.metrics.certified,
            out.metrics.oracle_calls,
            out.metrics.oracle_calls_unpruned,
            out.metrics.oracle_calls_unpruned as f64 / out.metrics.oracle_calls.max(1) as f64,
            out.report.summary()
        );
        if let Some(path) = &args.out {
            std::fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("design written to {path}");
        }
        if let Some(path) = &args.journal {
            eprintln!("synthesis journal written to {path}");
        }

        if let Some(path) = &args.golden {
            let expected = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read golden {path}: {e}"))?;
            if rendered != expected {
                eprintln!("golden mismatch against {path}:");
                for diff in diff_lines(&expected, &rendered) {
                    eprintln!("{diff}");
                }
                return Ok(ExitCode::from(2));
            }
            println!("golden match: {path}");
        }

        if args.conform {
            let corpus = corpus_spec(&spec, &out)?;
            let config = CorpusConfig::smoke(args.seed);
            println!(
                "conformance: {} sim + {} net runs of {}",
                config.sim_runs, config.net_runs, corpus.name
            );
            let report = run_corpus(std::slice::from_ref(&corpus), &config, &Journal::disabled())?;
            print!("{}", report.render());
            if report.divergent_runs() > 0 {
                return Ok(ExitCode::from(2));
            }
        }
        Ok(ExitCode::SUCCESS)
    }

    /// A minimal unified-ish diff: every line that differs, prefixed.
    fn diff_lines(expected: &str, got: &str) -> Vec<String> {
        let e: Vec<&str> = expected.lines().collect();
        let g: Vec<&str> = got.lines().collect();
        let mut out = Vec::new();
        for i in 0..e.len().max(g.len()) {
            match (e.get(i), g.get(i)) {
                (Some(a), Some(b)) if a == b => {}
                (a, b) => {
                    if let Some(a) = a {
                        out.push(format!("-{a}"));
                    }
                    if let Some(b) = b {
                        out.push(format!("+{b}"));
                    }
                }
            }
        }
        out
    }
}

/// `byzantine`: the containment-radius agreement battery. One Byzantine
/// instance runs through the simulator and the socket runtime on the
/// same seed; each layer's journal gets per-node containment verdicts,
/// and the radius measured from those verdicts must agree across the
/// layers, match the theory's prediction, and match the checker's
/// restricted-region convergence sweep on a small instance of the same
/// topology family. Exit 2 means the layers ran but a radius disagrees
/// — a containment violation.
mod byzantine {
    use std::process::ExitCode;
    use std::time::Duration;

    use nonmask_checker::{certify_containment, CheckOptions, Fairness, StateSpace};
    use nonmask_conform::{
        run_net_journaled, run_sim_journaled, ContainmentMap, FaultSchedule, NetRunConfig,
        SimRunConfig,
    };
    use nonmask_graph::Topology;
    use nonmask_obs::Journal;
    use nonmask_program::{Predicate, Program, State};
    use nonmask_protocols::{MinPlusOne, SpanningTree};

    struct Args {
        protocol: String,
        nodes: usize,
        degree: usize,
        topo_seed: u64,
        byz: Option<Vec<usize>>,
        seed: u64,
        check_nodes: Option<usize>,
        timeout_ms: u64,
        out: Option<String>,
    }

    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args {
            protocol: "bfs".to_owned(),
            nodes: 64,
            degree: 3,
            topo_seed: 1,
            byz: None,
            seed: 1,
            check_nodes: None,
            timeout_ms: 60_000,
            out: None,
        };
        let mut i = 0;
        while i < argv.len() {
            let arg = argv[i].as_str();
            let mut value = |name: &str| -> Result<String, String> {
                i += 1;
                argv.get(i)
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg {
                "--protocol" => args.protocol = value("--protocol")?,
                "--nodes" => {
                    args.nodes = value("--nodes")?
                        .parse()
                        .map_err(|e| format!("--nodes: {e}"))?
                }
                "--degree" => {
                    args.degree = value("--degree")?
                        .parse()
                        .map_err(|e| format!("--degree: {e}"))?
                }
                "--topo-seed" => {
                    args.topo_seed = value("--topo-seed")?
                        .parse()
                        .map_err(|e| format!("--topo-seed: {e}"))?
                }
                "--byz" => {
                    let list = value("--byz")?;
                    let nodes: Result<Vec<usize>, _> =
                        list.split(',').map(str::trim).map(str::parse).collect();
                    args.byz = Some(nodes.map_err(|e| format!("--byz: {e}"))?);
                }
                "--seed" => {
                    args.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--check-nodes" => {
                    args.check_nodes = Some(
                        value("--check-nodes")?
                            .parse()
                            .map_err(|e| format!("--check-nodes: {e}"))?,
                    )
                }
                "--timeout-ms" => {
                    args.timeout_ms = value("--timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--timeout-ms: {e}"))?
                }
                "--out" => args.out = Some(value("--out")?),
                other => return Err(format!("unknown byzantine option `{other}`")),
            }
            i += 1;
        }
        if args.nodes < 4 {
            return Err("byzantine needs --nodes >= 4".to_owned());
        }
        Ok(args)
    }

    /// The checker instance is fully enumerated, so its size is capped
    /// per protocol: min+1 has `n+1` values per node, the spanning
    /// tree `(n+1)·n` (distance × parent).
    fn check_nodes_for(protocol: &str, requested: Option<usize>) -> Result<usize, String> {
        let (default, max) = match protocol {
            "spanning-tree" => (4, 5),
            _ => (6, 7),
        };
        let n = requested.unwrap_or(default);
        if n < 4 || n > max {
            return Err(format!(
                "--check-nodes must be in 4..={max} for {protocol} (the space is enumerated)"
            ));
        }
        Ok(n)
    }

    /// Default liar placement: one mid-graph, one at the highest node
    /// id — deterministic, never the root.
    fn default_byz(nodes: usize) -> Vec<usize> {
        vec![nodes / 2, nodes - 1]
    }

    /// One protocol instance: its program, safe-region goal,
    /// containment expectations, and restricted-region goal family.
    struct Instance {
        program: Program,
        goal: Predicate,
        map: ContainmentMap,
        goal_at: Box<dyn Fn(u64) -> Predicate>,
        max_radius: u64,
        /// Whether the protocol's safety rule is exact (min+1: pure
        /// minimum, no ties) or a sound upper bound (spanning tree:
        /// the strict rule counts tie nodes the lowest-id tie-break
        /// may in fact protect, so the checker can certify less).
        exact: bool,
    }

    fn build(protocol: &str, topo: &Topology, byz: &[usize]) -> Result<Instance, String> {
        for &b in byz {
            if b >= topo.len() {
                return Err(format!("--byz node {b} out of range"));
            }
            if b == 0 {
                return Err("node 0 is the root; pick a non-root liar".to_owned());
            }
        }
        let max_radius = topo.len() as u64;
        match protocol {
            "bfs" => {
                let proto = MinPlusOne::with_byzantine(topo, 0, byz);
                let map = ContainmentMap::bfs(&proto);
                let goal = proto.safe_goal();
                let program = proto.program().clone();
                Ok(Instance {
                    program,
                    goal,
                    map,
                    goal_at: Box::new(move |r| proto.containment_goal(r)),
                    max_radius,
                    exact: true,
                })
            }
            "spanning-tree" => {
                let proto = SpanningTree::with_byzantine(topo, 0, byz);
                let map = ContainmentMap::spanning_tree(&proto);
                let goal = proto.safe_goal();
                let program = proto.program().clone();
                Ok(Instance {
                    program,
                    goal,
                    map,
                    goal_at: Box::new(move |r| proto.containment_goal(r)),
                    max_radius,
                    exact: false,
                })
            }
            other => Err(format!("unknown --protocol `{other}` (bfs|spanning-tree)")),
        }
    }

    fn journal_for(out: &Option<String>, name: &str) -> Result<(Journal, Option<String>), String> {
        match out {
            Some(dir) => {
                std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
                let path = format!("{dir}/{name}.jsonl");
                let journal =
                    Journal::to_file(&path).map_err(|e| format!("cannot create {path}: {e}"))?;
                Ok((journal, Some(path)))
            }
            None => Ok((Journal::disabled(), None)),
        }
    }

    /// Measure one layer's radius: run it, judge the final state, and
    /// append the per-node containment verdicts to the layer journal.
    fn measure_sim(
        inst: &Instance,
        seed: u64,
        journal: &Journal,
    ) -> Result<(u64, State, bool), String> {
        let cfg = SimRunConfig {
            byzantine: byz_of(&inst.map),
            byzantine_seed: seed,
            ..SimRunConfig::default()
        };
        let outcome = run_sim_journaled(
            &inst.program,
            &inst.goal,
            seed,
            &FaultSchedule::empty(),
            &cfg,
            journal,
        )?;
        let radius = inst.map.emit(&outcome.final_state, "sim", seed, journal);
        journal.flush();
        Ok((radius, outcome.final_state, outcome.stabilized))
    }

    fn measure_net(
        inst: &Instance,
        seed: u64,
        timeout_ms: u64,
        journal: &Journal,
    ) -> Result<(u64, bool), String> {
        let cfg = NetRunConfig {
            byzantine: byz_of(&inst.map),
            byzantine_seed: seed,
            timeout: Duration::from_millis(timeout_ms),
            ..NetRunConfig::default()
        };
        let outcome = run_net_journaled(&inst.program, &inst.goal, seed, &cfg, journal)
            .map_err(|e| format!("net run failed: {e}"))?;
        let radius = inst.map.emit(&outcome.final_state, "net", seed, journal);
        journal.flush();
        Ok((radius, outcome.stabilized))
    }

    fn byz_of(map: &ContainmentMap) -> Vec<usize> {
        map.byzantine().to_vec()
    }

    pub fn main(argv: &[String]) -> ExitCode {
        let args = match parse(argv) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}\n\n{}", super::USAGE);
                return ExitCode::FAILURE;
            }
        };
        match run(&args) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        }
    }

    fn run(args: &Args) -> Result<ExitCode, String> {
        let byz = args.byz.clone().unwrap_or_else(|| default_byz(args.nodes));
        let topo = Topology::random_connected(args.nodes, args.degree, args.topo_seed);
        let inst = build(&args.protocol, &topo, &byz)?;
        println!(
            "byzantine {}: {} nodes (degree {}, topo seed {}), liars {:?}, run seed {}",
            args.protocol, args.nodes, args.degree, args.topo_seed, byz, args.seed
        );
        println!(
            "predicted containment radius: {}",
            inst.map.predicted_radius
        );

        let (sim_journal, sim_path) = journal_for(&args.out, "sim")?;
        let (sim_radius, _, sim_ok) = measure_sim(&inst, args.seed, &sim_journal)?;
        println!(
            "sim: safe region {}, measured radius {}{}",
            if sim_ok {
                "stabilized"
            } else {
                "DID NOT stabilize"
            },
            sim_radius,
            sim_path
                .as_deref()
                .map(|p| format!(" -> {p}"))
                .unwrap_or_default()
        );

        let (net_journal, net_path) = journal_for(&args.out, "net")?;
        let (net_radius, net_ok) = measure_net(&inst, args.seed, args.timeout_ms, &net_journal)?;
        println!(
            "net: safe region {}, measured radius {}{}",
            if net_ok {
                "stabilized"
            } else {
                "DID NOT stabilize"
            },
            net_radius,
            net_path
                .as_deref()
                .map(|p| format!(" -> {p}"))
                .unwrap_or_default()
        );

        // The checker's independent verdict on a small instance of the
        // same family: enumerate the full Byzantine state space (havoc
        // actions included) and sweep the restricted-region goals.
        let check_nodes = check_nodes_for(&args.protocol, args.check_nodes)?;
        let small_byz = default_byz(check_nodes);
        let small_topo = Topology::random_connected(check_nodes, 2, args.topo_seed);
        let small = build(&args.protocol, &small_topo, &small_byz)?;
        let space = StateSpace::enumerate(&small.program)
            .map_err(|e| format!("small-instance enumeration failed: {e}"))?;
        let verdict = certify_containment(
            &space,
            &small.program,
            &small.goal_at,
            small.max_radius,
            Fairness::WeaklyFair,
            CheckOptions::default(),
        )
        .map_err(|e| format!("containment certification failed: {e}"))?;
        let certified = verdict
            .radius
            .ok_or("no radius converged on the small instance")?;

        let (small_journal, small_path) = journal_for(&args.out, "small")?;
        let (small_radius, _, small_ok) = measure_sim(&small, args.seed, &small_journal)?;
        println!(
            "checker: {} nodes, {} states, certified radius {}; observed small-instance radius {} ({}){}",
            check_nodes,
            space.len(),
            certified,
            small_radius,
            if small_ok { "stabilized" } else { "DID NOT stabilize" },
            small_path.as_deref().map(|p| format!(" -> {p}")).unwrap_or_default()
        );

        // The layers must agree with each other and with the theory;
        // the checker must agree exactly where the safety rule is
        // exact (min+1), and must never certify a *larger* radius than
        // the measured one (a genuine containment violation) where the
        // rule is a sound upper bound (spanning tree ties).
        let checker_agrees = if inst.exact {
            certified == small_radius
        } else {
            certified <= small_radius
        };
        let agree = sim_ok
            && net_ok
            && small_ok
            && sim_radius == net_radius
            && sim_radius == inst.map.predicted_radius
            && small_radius == small.map.predicted_radius
            && checker_agrees;
        if let Some(dir) = &args.out {
            let summary = format!(
                "{{\"protocol\":\"{}\",\"nodes\":{},\"byzantine\":{:?},\"seed\":{},\
                 \"predicted_radius\":{},\"sim_radius\":{sim_radius},\"net_radius\":{net_radius},\
                 \"check_nodes\":{},\"certified_radius\":{certified},\"small_radius\":{small_radius},\
                 \"agree\":{agree}}}\n",
                args.protocol,
                args.nodes,
                byz,
                args.seed,
                inst.map.predicted_radius,
                check_nodes,
            );
            let path = format!("{dir}/summary.json");
            std::fs::write(&path, summary).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("summary written to {path}");
        }
        if agree {
            println!("containment radii agree across sim, net, and checker");
            Ok(ExitCode::SUCCESS)
        } else {
            eprintln!("RADIUS VIOLATION: sim/net/checker disagree (see above)");
            Ok(ExitCode::from(2))
        }
    }
}
