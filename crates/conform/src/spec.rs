//! Protocol specifications for the conformance corpus.
//!
//! A [`ProtocolSpec`] bundles everything the harness needs to run one
//! protocol through every layer and judge the result against the checker:
//! the guarded-command program, the stabilization goal, the §4 constraint
//! decomposition, and the *designated* repair pairs — which convergence
//! action the design holds responsible for re-establishing which
//! constraint. The designation is cross-validated against the checker's
//! own constraint attribution when the oracle is built
//! ([`crate::check::ProtocolOracle::build`]), so a spec cannot silently
//! claim repairs the transition relation does not deliver.

use nonmask_graph::Topology;
use nonmask_program::{ActionId, Predicate, Program};
use nonmask_protocols::coloring::TreeColoring;
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::{MinPlusOne, SpanningTree, Tree};

/// One protocol as the conformance harness sees it.
#[derive(Debug, Clone)]
pub struct ProtocolSpec {
    /// Corpus-facing name (`token-ring-4x4`, `diffusing-7`, ...).
    pub name: String,
    /// The reference program — the transition relation the checker
    /// enumerates and every executed step is validated against.
    pub program: Program,
    /// The stabilization goal (the protocol invariant).
    pub goal: Predicate,
    /// The constraint decomposition `c.1 ... c.m` from the paper's §4.
    pub constraints: Vec<Predicate>,
    /// Designated repair pairs: `(action, constraint index)` means the
    /// design holds `action` responsible for re-establishing
    /// `constraints[index]` whenever it executes.
    pub designated: Vec<(ActionId, usize)>,
}

impl ProtocolSpec {
    /// Dijkstra's K-state token ring on `n` processes with modulus `k`.
    ///
    /// Constraints are the agreement boundaries `c.j ≡ x.j = x.(j-1)` for
    /// `j = 1..n`; the designated repair of `c.j` is `pass@j`, whose
    /// effect `x.j := x.(j-1)` re-establishes the boundary from any state.
    pub fn token_ring(n: usize, k: i64) -> Self {
        let ring = TokenRing::new(n, k);
        Self::token_ring_from(&ring, format!("token-ring-{n}x{k}"))
    }

    /// The spec shared by the healthy ring and the planted mutant: same
    /// variables, same action layout, same constraint decomposition.
    fn token_ring_from(ring: &TokenRing, name: String) -> Self {
        let n = ring.len();
        let mut constraints = Vec::with_capacity(n.saturating_sub(1));
        let mut designated = Vec::with_capacity(n.saturating_sub(1));
        for j in 1..n {
            let xj = ring.counter_var(j);
            let xp = ring.counter_var(j - 1);
            constraints.push(Predicate::new(format!("c.{j}"), [xj, xp], move |s| {
                s.get(xj) == s.get(xp)
            }));
            designated.push((ring.pass_action(j), j - 1));
        }
        ProtocolSpec {
            name,
            program: ring.program().clone(),
            goal: ring.invariant(),
            constraints,
            designated,
        }
    }

    /// The diffusing computation on a binary tree of `nodes` nodes.
    ///
    /// Constraints are the per-node `R.j` predicates; the designated
    /// repair of `R.j` is the combined propagate/repair action at `j`
    /// (the root has no constraint — its actions drive the wave).
    pub fn diffusing(nodes: usize) -> Self {
        let dc = DiffusingComputation::new(&Tree::binary(nodes));
        let mut constraints = Vec::new();
        let mut designated = Vec::new();
        for j in 0..nodes {
            if let Some(action) = dc.combined_action(j) {
                designated.push((action, constraints.len()));
                constraints.push(dc.constraint(j));
            }
        }
        ProtocolSpec {
            name: format!("diffusing-{nodes}"),
            program: dc.program().clone(),
            goal: dc.invariant(),
            constraints,
            designated,
        }
    }

    /// The stabilizing proper coloring on a binary tree of `nodes` nodes
    /// with `colors` colors.
    ///
    /// Constraints are the per-edge `R.j ≡ c.j ≠ c.(P.j)` predicates; the
    /// designated repair of `R.j` is `recolor@j`. Unlike the wave
    /// protocols this design is *silent* inside the invariant, so corpus
    /// runs exercise the termination path of both execution layers.
    pub fn coloring(nodes: usize, colors: i64) -> Self {
        let tc = TreeColoring::new(&Tree::binary(nodes), colors);
        let mut constraints = Vec::new();
        let mut designated = Vec::new();
        for j in 1..nodes {
            if let Some(action) = tc.recolor_action(j) {
                designated.push((action, constraints.len()));
                constraints.push(tc.constraint(j));
            }
        }
        ProtocolSpec {
            name: format!("coloring-{nodes}x{colors}"),
            program: tc.program().clone(),
            goal: tc.invariant(),
            constraints,
            designated,
        }
    }

    /// The self-stabilizing min+1 BFS distance protocol on a fixed
    /// 6-node random connected graph (byzantine-free — the corpus
    /// exercises the healthy convergence path; Byzantine containment
    /// has its own battery in `tests/` and `nonmask-run byzantine`).
    ///
    /// Constraints are the per-node min+1 equations `c.j`; the
    /// designated repair of `c.j` is `fix@j` (`anchor@root` at the
    /// root), whose effect rewrites `d.j` to the equation's value.
    pub fn bfs() -> Self {
        let topo = Topology::random_connected(6, 2, 1);
        let proto = MinPlusOne::new(&topo, 0);
        let n = topo.len();
        let mut constraints = Vec::with_capacity(n);
        let mut designated = Vec::with_capacity(n);
        for j in 0..n {
            if let Some(action) = proto.fix_action(j) {
                designated.push((action, constraints.len()));
                constraints.push(proto.constraint(j));
            }
        }
        ProtocolSpec {
            name: format!("bfs-{n}"),
            program: proto.program().clone(),
            goal: proto.invariant(),
            constraints,
            designated,
        }
    }

    /// The self-stabilizing BFS spanning tree (distance + parent
    /// pointer, lowest-id tie-break) on a 4-ring, byzantine-free.
    ///
    /// Constraints are the per-node BFS equations over both variables;
    /// the designated repair of `c.j` is the node's single combined
    /// repair action.
    pub fn spanning_tree() -> Self {
        let topo = Topology::ring(4);
        let proto = SpanningTree::new(&topo, 0);
        let n = topo.len();
        let mut constraints = Vec::with_capacity(n);
        let mut designated = Vec::with_capacity(n);
        for j in 0..n {
            if let Some(action) = proto.fix_action(j) {
                designated.push((action, constraints.len()));
                constraints.push(proto.constraint(j));
            }
        }
        ProtocolSpec {
            name: format!("spanning-tree-{n}"),
            program: proto.program().clone(),
            goal: proto.invariant(),
            constraints,
            designated,
        }
    }

    /// The deliberately broken token ring (root increments by two), to be
    /// *executed* while the healthy [`ProtocolSpec::token_ring`] of the
    /// same shape serves as the oracle. The divergence shows up as a
    /// wrong-effect step the moment the mutant root fires.
    #[cfg(feature = "planted-bug")]
    pub fn token_ring_mutant_program(n: usize, k: i64) -> Program {
        TokenRing::planted_mutant(n, k).program().clone()
    }

    /// The deliberately broken spanning tree on the same 4-ring as
    /// [`ProtocolSpec::spanning_tree`]: node `trusting` adopts node
    /// `liar` as its parent unconditionally — the "Byzantine node
    /// accepted as parent" bug. Executed while the healthy spec serves
    /// as the oracle; the divergence is a wrong-effect step the moment
    /// the trusting node fires next to a liar holding a short distance.
    #[cfg(feature = "planted-bug")]
    pub fn spanning_tree_mutant_program(trusting: usize, liar: usize) -> Program {
        nonmask_protocols::spanning_tree::planted_trusting_mutant(
            &Topology::ring(4),
            0,
            trusting,
            liar,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_ring_spec_designates_every_boundary() {
        let spec = ProtocolSpec::token_ring(4, 4);
        assert_eq!(spec.constraints.len(), 3);
        assert_eq!(spec.designated.len(), 3);
        // Every designated pair points at a real constraint index.
        for &(_, c) in &spec.designated {
            assert!(c < spec.constraints.len());
        }
    }

    #[test]
    fn coloring_spec_designates_every_edge() {
        let spec = ProtocolSpec::coloring(7, 3);
        assert_eq!(spec.constraints.len(), 6);
        assert_eq!(spec.designated.len(), 6);
        for &(_, c) in &spec.designated {
            assert!(c < spec.constraints.len());
        }
    }

    #[test]
    fn bfs_spec_designates_every_node() {
        let spec = ProtocolSpec::bfs();
        // Every node of the 6-node graph, root included, carries its
        // min+1 (or anchor) equation and the matching repair.
        assert_eq!(spec.constraints.len(), 6);
        assert_eq!(spec.designated.len(), 6);
        for &(_, c) in &spec.designated {
            assert!(c < spec.constraints.len());
        }
    }

    #[test]
    fn spanning_tree_spec_designates_every_node() {
        let spec = ProtocolSpec::spanning_tree();
        assert_eq!(spec.constraints.len(), 4);
        assert_eq!(spec.designated.len(), 4);
        for &(_, c) in &spec.designated {
            assert!(c < spec.constraints.len());
        }
    }

    #[test]
    fn diffusing_spec_skips_the_root() {
        let spec = ProtocolSpec::diffusing(7);
        // Binary tree of 7: six non-root nodes, one constraint each.
        assert_eq!(spec.constraints.len(), 6);
        assert_eq!(spec.designated.len(), 6);
    }
}
