//! An actually-concurrent executor: one OS thread per process, one lock
//! per variable.
//!
//! This realizes the *read/write atomicity* refinement the paper's
//! concluding remarks point at: a process reads one remote variable at a
//! time (no action-wide atomicity), so guards are evaluated over
//! potentially inconsistent snapshots. The unidirectional-information-flow
//! protocols in this repository (token ring, diffusing computation)
//! stabilize regardless, which the tests observe on real threads.
//!
//! Built on `std::thread::scope` (borrowing the program and locks without
//! `Arc` gymnastics) and `std::sync::Mutex` (one lock per variable).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use nonmask_program::{Predicate, Program, State};

use crate::refine::Refinement;

/// Outcome of a [`run_threaded`] execution.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// The final global state, assembled after all threads joined.
    pub final_state: State,
    /// Total action executions across all threads.
    pub steps: u64,
    /// Whether the run ended because the stop predicate was observed (on a
    /// consistent all-locks snapshot); `false` means the attempt budget ran
    /// out first.
    pub stopped_on_predicate: bool,
}

/// Tuning knobs for a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedOptions {
    /// Shared budget of scheduling attempts across all threads.
    pub attempts: u64,
    /// How often (in scheduling attempts, per thread) a consistent
    /// snapshot is taken to evaluate the stop predicate. Smaller detects
    /// stabilization sooner but serializes on all locks more often.
    pub snapshot_period: u64,
}

impl ThreadedOptions {
    /// Options with the default snapshot period (every 256 attempts).
    pub fn new(attempts: u64) -> Self {
        ThreadedOptions {
            attempts,
            snapshot_period: 256,
        }
    }

    /// Replace the snapshot period.
    ///
    /// # Panics
    ///
    /// Panics on `0` (every attempt would be a full-lock snapshot *and*
    /// `is_multiple_of(0)` never fires — an unusable configuration).
    pub fn snapshot_period(mut self, period: u64) -> Self {
        assert!(period > 0, "snapshot period must be positive");
        self.snapshot_period = period;
        self
    }
}

/// Run `program` with one thread per process, starting from `initial`.
///
/// Each thread loops over its actions round-robin; per attempt it
/// snapshots the variables its next action reads (locking one variable at
/// a time — deliberately *not* an atomic multi-variable read), and if the
/// guard holds on the snapshot it applies the effect and publishes the
/// written values.
///
/// Threads run until either `stop_when` holds on a *consistent* snapshot
/// (all variable locks held in index order — a true linearization point)
/// or the shared budget of [`ThreadedOptions::attempts`] scheduling
/// attempts is exhausted. The shared budget means no thread retires while
/// others still work, so late cross-thread updates are never silently
/// dropped.
pub fn run_threaded_with(
    program: &Program,
    refinement: &Refinement,
    initial: &State,
    options: &ThreadedOptions,
    stop_when: Option<&Predicate>,
) -> ThreadedReport {
    let attempts = options.attempts;
    let snapshot_period = options.snapshot_period.max(1);
    let locks: Vec<Mutex<i64>> = initial.slots().iter().map(|&v| Mutex::new(v)).collect();
    let steps = AtomicU64::new(0);
    let remaining = AtomicU64::new(attempts);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for p in 0..refinement.process_count() {
            let actions = refinement.actions_of(p);
            let locks = &locks;
            let steps = &steps;
            let remaining = &remaining;
            let stop = &stop;
            scope.spawn(move || {
                if actions.is_empty() {
                    return;
                }
                let mut cursor = 0usize;
                let mut snapshot = State::zeroed(program.var_count());
                let mut attempt = 0u64;
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    // Shared budget: decrement one attempt; exit at zero.
                    let prev = remaining.fetch_sub(1, Ordering::Relaxed);
                    if prev == 0 || prev == u64::MAX {
                        remaining.store(0, Ordering::Relaxed);
                        break;
                    }
                    attempt += 1;

                    // Periodically take a consistent snapshot (all locks,
                    // index order) and evaluate the stop predicate.
                    if let Some(pred) = stop_when {
                        if attempt.is_multiple_of(snapshot_period) {
                            let guards: Vec<_> = locks.iter().map(|m| m.lock().unwrap()).collect();
                            let full: State = guards.iter().map(|g| **g).collect();
                            drop(guards);
                            if pred.holds(&full) {
                                stop.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }

                    let aid = actions[cursor];
                    cursor = (cursor + 1) % actions.len();
                    let action = program.action(aid);
                    // Low-atomicity read: one variable at a time.
                    for &r in action.reads() {
                        let v = *locks[r.index()].lock().unwrap();
                        snapshot.set(r, v);
                    }
                    if !action.enabled(&snapshot) {
                        continue;
                    }
                    action.apply(&mut snapshot);
                    for &w in action.writes() {
                        *locks[w.index()].lock().unwrap() = snapshot.get(w);
                    }
                    steps.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let final_state: State = locks.iter().map(|m| *m.lock().unwrap()).collect();
    ThreadedReport {
        final_state,
        steps: steps.into_inner(),
        stopped_on_predicate: stop.into_inner(),
    }
}

/// [`run_threaded_with`] with the default [`ThreadedOptions`] for a given
/// attempt budget.
pub fn run_threaded_until(
    program: &Program,
    refinement: &Refinement,
    initial: &State,
    attempts: u64,
    stop_when: Option<&Predicate>,
) -> ThreadedReport {
    run_threaded_with(
        program,
        refinement,
        initial,
        &ThreadedOptions::new(attempts),
        stop_when,
    )
}

/// [`run_threaded_until`] without a stop predicate: run the whole attempt
/// budget down.
pub fn run_threaded(
    program: &Program,
    refinement: &Refinement,
    initial: &State,
    attempts: u64,
) -> ThreadedReport {
    run_threaded_until(program, refinement, initial, attempts, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_protocols::diffusing::DiffusingComputation;
    use nonmask_protocols::token_ring::TokenRing;
    use nonmask_protocols::Tree;

    #[test]
    fn token_ring_stabilizes_on_real_threads() {
        let ring = TokenRing::new(5, 5);
        let refinement = Refinement::new(ring.program()).unwrap();
        let corrupt = ring.program().state_from([3, 1, 4, 1, 2]).unwrap();
        let report = run_threaded_until(
            ring.program(),
            &refinement,
            &corrupt,
            50_000_000,
            Some(&ring.invariant()),
        );
        assert!(
            report.stopped_on_predicate,
            "threads observed stabilization before the budget ran out"
        );
        // S is closed, so the post-join state is still legitimate.
        assert_eq!(
            ring.privileges(&report.final_state).len(),
            1,
            "final state: {:?}",
            report.final_state
        );
    }

    #[test]
    fn diffusing_tree_state_remains_sane_under_concurrency() {
        let tree = Tree::binary(7);
        let dc = DiffusingComputation::new(&tree);
        let refinement = Refinement::new(dc.program()).unwrap();
        let report = run_threaded(dc.program(), &refinement, &dc.initial_state(), 100_000);
        dc.program().validate_state(&report.final_state).unwrap();
        assert!(report.steps > 0);
        assert!(!report.stopped_on_predicate);
    }

    #[test]
    fn custom_snapshot_period_still_stops_on_predicate() {
        let ring = TokenRing::new(4, 4);
        let refinement = Refinement::new(ring.program()).unwrap();
        let corrupt = ring.program().state_from([3, 1, 2, 0]).unwrap();
        // An aggressive period (every attempt) must still stabilize and
        // stop; it just checks far more often than the default 256.
        let options = ThreadedOptions::new(50_000_000).snapshot_period(1);
        let report = run_threaded_with(
            ring.program(),
            &refinement,
            &corrupt,
            &options,
            Some(&ring.invariant()),
        );
        assert!(report.stopped_on_predicate);
        assert_eq!(ring.privileges(&report.final_state).len(), 1);
    }

    #[test]
    #[should_panic(expected = "snapshot period must be positive")]
    fn zero_snapshot_period_is_rejected() {
        let _ = ThreadedOptions::new(10).snapshot_period(0);
    }

    #[test]
    fn zero_attempts_is_identity() {
        let ring = TokenRing::new(3, 3);
        let refinement = Refinement::new(ring.program()).unwrap();
        let initial = ring.initial_state();
        let report = run_threaded(ring.program(), &refinement, &initial, 0);
        assert_eq!(report.final_state, initial);
        assert_eq!(report.steps, 0);
    }
}
