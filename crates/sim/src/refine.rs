//! Refinability analysis: ownership and readership structure.

use nonmask_program::{ActionId, ProcessId, Program, VarId};

/// Why a program cannot be refined into message passing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefineError {
    /// A variable is not tagged with an owning process.
    UnownedVariable {
        /// The untagged variable.
        var: VarId,
    },
    /// An action writes variables of two different processes; in message
    /// passing a step executes at a single process.
    WritesSpanProcesses {
        /// The offending action.
        action: ActionId,
    },
    /// An action writes nothing, so no process can own its execution.
    NoWrites {
        /// The offending action.
        action: ActionId,
    },
}

impl std::fmt::Display for RefineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefineError::UnownedVariable { var } => {
                write!(f, "variable {var} has no owning process")
            }
            RefineError::WritesSpanProcesses { action } => {
                write!(f, "action {action} writes variables of two processes")
            }
            RefineError::NoWrites { action } => {
                write!(f, "action {action} writes nothing; no process can own it")
            }
        }
    }
}

impl std::error::Error for RefineError {}

/// The message-passing structure of a refinable program.
///
/// A program is *refinable* when every variable is owned by a process and
/// every action writes variables of exactly one process (the action then
/// executes at that process). Remote variables in an action's read set
/// become cached copies refreshed by update messages.
#[derive(Debug, Clone)]
pub struct Refinement {
    processes: Vec<ProcessId>,
    /// Variable → index into `processes`.
    owner: Vec<usize>,
    /// Action → index into `processes` (the process executing it).
    executor: Vec<usize>,
    /// Variable → processes (indices) that read it remotely.
    remote_readers: Vec<Vec<usize>>,
    /// Process → its actions, precomputed so per-round lookups are
    /// allocation-free slice borrows.
    actions_by_process: Vec<Vec<ActionId>>,
    /// Process → its variables, precomputed for the same reason.
    vars_by_process: Vec<Vec<VarId>>,
}

impl Refinement {
    /// Analyze `program`.
    ///
    /// # Errors
    ///
    /// See [`RefineError`].
    pub fn new(program: &Program) -> Result<Self, RefineError> {
        // Collect the distinct processes in tag order.
        let mut processes: Vec<ProcessId> = Vec::new();
        let mut owner = Vec::with_capacity(program.var_count());
        for var in program.var_ids() {
            let pid = program
                .var(var)
                .process()
                .ok_or(RefineError::UnownedVariable { var })?;
            let idx = match processes.iter().position(|&p| p == pid) {
                Some(i) => i,
                None => {
                    processes.push(pid);
                    processes.len() - 1
                }
            };
            owner.push(idx);
        }

        let mut executor = Vec::with_capacity(program.action_count());
        for aid in program.action_ids() {
            let action = program.action(aid);
            let mut exec: Option<usize> = None;
            for &w in action.writes() {
                let o = owner[w.index()];
                match exec {
                    None => exec = Some(o),
                    Some(e) if e == o => {}
                    Some(_) => return Err(RefineError::WritesSpanProcesses { action: aid }),
                }
            }
            executor.push(exec.ok_or(RefineError::NoWrites { action: aid })?);
        }

        // Remote readers: for each variable, the processes that execute an
        // action reading it but do not own it.
        let mut remote_readers = vec![Vec::new(); program.var_count()];
        for aid in program.action_ids() {
            let exec = executor[aid.index()];
            for &r in program.action(aid).reads() {
                if owner[r.index()] != exec && !remote_readers[r.index()].contains(&exec) {
                    remote_readers[r.index()].push(exec);
                }
            }
        }

        let mut actions_by_process = vec![Vec::new(); processes.len()];
        for (i, &e) in executor.iter().enumerate() {
            actions_by_process[e].push(ActionId::from_index(i));
        }
        let mut vars_by_process = vec![Vec::new(); processes.len()];
        for (i, &o) in owner.iter().enumerate() {
            vars_by_process[o].push(VarId::from_index(i));
        }

        Ok(Refinement {
            processes,
            owner,
            executor,
            remote_readers,
            actions_by_process,
            vars_by_process,
        })
    }

    /// The distinct processes, in first-appearance order.
    pub fn processes(&self) -> &[ProcessId] {
        &self.processes
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Index of the process owning `var`.
    pub fn owner_of(&self, var: VarId) -> usize {
        self.owner[var.index()]
    }

    /// Index of the process executing `action`.
    pub fn executor_of(&self, action: ActionId) -> usize {
        self.executor[action.index()]
    }

    /// Indices of the processes that cache `var` remotely.
    pub fn remote_readers_of(&self, var: VarId) -> &[usize] {
        &self.remote_readers[var.index()]
    }

    /// The actions executed by process `p` (ascending action order).
    pub fn actions_of(&self, p: usize) -> &[ActionId] {
        &self.actions_by_process[p]
    }

    /// The variables owned by process `p` (declaration order).
    pub fn vars_of(&self, p: usize) -> &[VarId] {
        &self.vars_by_process[p]
    }

    /// Total number of directed `(owner → reader)` cache relationships — a
    /// measure of the communication graph's density.
    pub fn channel_count(&self) -> usize {
        self.remote_readers.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::Domain;

    fn ring2() -> Program {
        let mut b = Program::builder("ring2");
        let x0 = b.var_of("x.0", Domain::range(0, 3), ProcessId(0));
        let x1 = b.var_of("x.1", Domain::range(0, 3), ProcessId(1));
        b.combined_action("pass@0", [x0, x1], [x0], |_| true, |_| {});
        b.combined_action("pass@1", [x0, x1], [x1], |_| true, |_| {});
        b.build()
    }

    #[test]
    fn ring_structure_extracted() {
        let p = ring2();
        let r = Refinement::new(&p).unwrap();
        assert_eq!(r.process_count(), 2);
        let x0 = p.var_by_name("x.0").unwrap();
        let x1 = p.var_by_name("x.1").unwrap();
        assert_eq!(r.owner_of(x0), 0);
        assert_eq!(r.owner_of(x1), 1);
        assert_eq!(r.executor_of(ActionId::from_index(0)), 0);
        assert_eq!(r.executor_of(ActionId::from_index(1)), 1);
        assert_eq!(r.remote_readers_of(x0), &[1]);
        assert_eq!(r.remote_readers_of(x1), &[0]);
        assert_eq!(r.channel_count(), 2);
        assert_eq!(r.actions_of(0), vec![ActionId::from_index(0)]);
        assert_eq!(r.vars_of(1), vec![x1]);
    }

    #[test]
    fn unowned_variable_rejected() {
        let mut b = Program::builder("p");
        let x = b.var("x", Domain::Bool);
        let _ = x;
        let p = b.build();
        assert!(matches!(
            Refinement::new(&p),
            Err(RefineError::UnownedVariable { .. })
        ));
    }

    #[test]
    fn cross_process_writes_rejected() {
        let mut b = Program::builder("p");
        let x0 = b.var_of("x.0", Domain::Bool, ProcessId(0));
        let x1 = b.var_of("x.1", Domain::Bool, ProcessId(1));
        b.closure_action("w2", [x0, x1], [x0, x1], |_| true, |_| {});
        let p = b.build();
        assert!(matches!(
            Refinement::new(&p),
            Err(RefineError::WritesSpanProcesses { .. })
        ));
    }

    #[test]
    fn writeless_action_rejected() {
        let mut b = Program::builder("p");
        let x0 = b.var_of("x.0", Domain::Bool, ProcessId(0));
        b.closure_action("noop", [x0], [], |_| true, |_| {});
        let p = b.build();
        assert!(matches!(
            Refinement::new(&p),
            Err(RefineError::NoWrites { .. })
        ));
    }
}
