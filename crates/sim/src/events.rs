//! An event-driven (continuous virtual time) execution engine.
//!
//! The round-based [`crate::Simulation`] advances all processes in
//! lockstep; real distributed systems do not. This engine drives the same
//! refined programs from a priority queue of timestamped events:
//!
//! - **process wake-ups** — each process wakes at random
//!   (geometrically-spaced) virtual times and executes at most one enabled
//!   action on its view;
//! - **message deliveries** — updates travel with random per-message
//!   latency, so arrival order is completely decoupled from send order.
//!
//! Determinism is preserved: all randomness comes from the seeded RNG, and
//! ties in the event queue break by sequence number.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use nonmask_program::{Predicate, Program, State, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::refine::Refinement;

/// Configuration of an [`EventSim`].
#[derive(Debug, Clone)]
pub struct EventConfig {
    /// RNG seed.
    pub seed: u64,
    /// Mean virtual time between consecutive wake-ups of one process.
    pub mean_wake_interval: f64,
    /// Mean message latency (per-message, exponentially distributed).
    pub mean_latency: f64,
    /// Probability that a message is lost.
    pub loss_rate: f64,
    /// Whether each wake-up also re-broadcasts the process's own variables
    /// (the event-driven analogue of the round engine's heartbeats; without
    /// it a single lost update can stall a protocol forever).
    pub heartbeat: bool,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig {
            seed: 0,
            mean_wake_interval: 1.0,
            mean_latency: 0.5,
            loss_rate: 0.0,
            heartbeat: true,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum EventKind {
    Wake {
        process: usize,
    },
    Deliver {
        process: usize,
        var: VarId,
        value: i64,
    },
}

/// Queue entry ordered by `(time, seq)`; `Reverse` turns the max-heap into
/// a min-heap.
#[derive(Debug, Clone, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .expect("event times are never NaN")
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Outcome of [`EventSim::run_until_stable`].
#[derive(Debug, Clone)]
pub struct EventReport {
    /// Virtual time at which the predicate first held through the end of
    /// the observation window, if it stabilized.
    pub stabilized_at: Option<f64>,
    /// Virtual time when the run stopped.
    pub end_time: f64,
    /// Action executions.
    pub steps: u64,
    /// Messages delivered.
    pub messages_delivered: u64,
    /// Messages lost.
    pub messages_lost: u64,
    /// Final ground truth.
    pub final_state: State,
}

/// The event-driven simulator.
#[derive(Debug)]
pub struct EventSim<'p> {
    program: &'p Program,
    refinement: Refinement,
    config: EventConfig,
    views: Vec<State>,
    queue: BinaryHeap<Reverse<Event>>,
    cursors: Vec<u32>,
    rng: StdRng,
    now: f64,
    seq: u64,
    steps: u64,
    messages_delivered: u64,
    messages_lost: u64,
}

impl<'p> EventSim<'p> {
    /// Create a simulator; every process gets an initial wake-up.
    pub fn new(
        program: &'p Program,
        refinement: Refinement,
        initial: State,
        config: EventConfig,
    ) -> Self {
        let n = refinement.process_count();
        let mut sim = EventSim {
            program,
            refinement,
            rng: StdRng::seed_from_u64(config.seed),
            config,
            views: vec![initial; n],
            queue: BinaryHeap::new(),
            cursors: vec![0; n],
            now: 0.0,
            seq: 0,
            steps: 0,
            messages_delivered: 0,
            messages_lost: 0,
        };
        for p in 0..n {
            sim.schedule_wake(p);
        }
        sim
    }

    fn exp_sample(&mut self, mean: f64) -> f64 {
        // Inverse-CDF exponential sample; u in (0, 1].
        let u: f64 = 1.0 - self.rng.gen::<f64>();
        -mean * u.ln().max(f64::MIN_POSITIVE.ln())
    }

    fn push(&mut self, time: f64, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    fn schedule_wake(&mut self, process: usize) {
        let dt = self.exp_sample(self.config.mean_wake_interval);
        self.push(self.now + dt, EventKind::Wake { process });
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Action executions so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The god's-eye state assembled from authoritative views.
    pub fn ground_truth(&self) -> State {
        let mut s = State::zeroed(self.program.var_count());
        for var in self.program.var_ids() {
            let owner = self.refinement.owner_of(var);
            s.set(var, self.views[owner].get(var));
        }
        s
    }

    /// Process one event; returns `false` when the queue is empty (which
    /// cannot happen while wake-ups reschedule themselves).
    pub fn step(&mut self) -> bool {
        let Some(Reverse(event)) = self.queue.pop() else {
            return false;
        };
        self.now = event.time;
        match event.kind {
            EventKind::Deliver {
                process,
                var,
                value,
            } => {
                self.views[process].set(var, value);
                self.messages_delivered += 1;
            }
            EventKind::Wake { process } => {
                let actions = self.refinement.actions_of(process);
                if !actions.is_empty() {
                    let k = actions.len() as u32;
                    for off in 0..k {
                        let idx = ((self.cursors[process] + off) % k) as usize;
                        if self
                            .program
                            .action(actions[idx])
                            .enabled(&self.views[process])
                        {
                            self.cursors[process] = (idx as u32 + 1) % k;
                            let action = self.program.action(actions[idx]);
                            action.apply(&mut self.views[process]);
                            self.steps += 1;
                            let writes: Vec<(VarId, i64)> = action
                                .writes()
                                .iter()
                                .map(|&w| (w, self.views[process].get(w)))
                                .collect();
                            for (var, value) in writes {
                                self.broadcast(var, value);
                            }
                            break;
                        }
                    }
                }
                if self.config.heartbeat {
                    let own: Vec<(VarId, i64)> = self
                        .refinement
                        .vars_of(process)
                        .iter()
                        .map(|&v| (v, self.views[process].get(v)))
                        .collect();
                    for (var, value) in own {
                        self.broadcast(var, value);
                    }
                }
                self.schedule_wake(process);
            }
        }
        true
    }

    fn broadcast(&mut self, var: VarId, value: i64) {
        for reader in self.refinement.remote_readers_of(var).to_vec() {
            if self.config.loss_rate > 0.0 && self.rng.gen_bool(self.config.loss_rate) {
                self.messages_lost += 1;
                continue;
            }
            let latency = self.exp_sample(self.config.mean_latency);
            self.push(
                self.now + latency,
                EventKind::Deliver {
                    process: reader,
                    var,
                    value,
                },
            );
        }
    }

    /// Run until `pred` holds on the ground truth continuously for
    /// `window` units of virtual time, or until `max_time`.
    pub fn run_until_stable(
        &mut self,
        pred: &Predicate,
        window: f64,
        max_time: f64,
    ) -> EventReport {
        let mut hold_start: Option<f64> = None;
        let mut stabilized_at = None;
        while self.now < max_time {
            if !self.step() {
                break;
            }
            if pred.holds(&self.ground_truth()) {
                let start = *hold_start.get_or_insert(self.now);
                if self.now - start >= window {
                    stabilized_at = Some(start);
                    break;
                }
            } else {
                hold_start = None;
            }
        }
        EventReport {
            stabilized_at,
            end_time: self.now,
            steps: self.steps,
            messages_delivered: self.messages_delivered,
            messages_lost: self.messages_lost,
            final_state: self.ground_truth(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_protocols::diffusing::DiffusingComputation;
    use nonmask_protocols::token_ring::TokenRing;
    use nonmask_protocols::Tree;

    #[test]
    fn token_ring_stabilizes_in_virtual_time() {
        let ring = TokenRing::new(5, 5);
        let refinement = Refinement::new(ring.program()).unwrap();
        let corrupt = ring.program().state_from([3, 1, 4, 1, 2]).unwrap();
        let mut sim = EventSim::new(ring.program(), refinement, corrupt, EventConfig::default());
        let report = sim.run_until_stable(&ring.invariant(), 5.0, 10_000.0);
        assert!(
            report.stabilized_at.is_some(),
            "end time {}",
            report.end_time
        );
        assert_eq!(ring.privileges(&report.final_state).len(), 1);
    }

    #[test]
    fn survives_loss_and_high_latency() {
        let ring = TokenRing::new(4, 4);
        let refinement = Refinement::new(ring.program()).unwrap();
        let corrupt = ring.program().state_from([2, 0, 3, 1]).unwrap();
        let config = EventConfig {
            seed: 3,
            mean_latency: 5.0, // much slower than wake-ups: heavy reordering
            loss_rate: 0.3,
            ..EventConfig::default()
        };
        let mut sim = EventSim::new(ring.program(), refinement, corrupt, config);
        let report = sim.run_until_stable(&ring.invariant(), 10.0, 100_000.0);
        assert!(report.stabilized_at.is_some());
        assert!(report.messages_lost > 0);
    }

    #[test]
    fn diffusing_recovers_event_driven() {
        let dc = DiffusingComputation::new(&Tree::binary(7));
        let refinement = Refinement::new(dc.program()).unwrap();
        let mut corrupt = dc.initial_state();
        corrupt.set(dc.color_var(2), nonmask_protocols::diffusing::RED);
        corrupt.set(dc.session_var(5), 1);
        let mut sim = EventSim::new(
            dc.program(),
            refinement,
            corrupt,
            EventConfig {
                seed: 9,
                ..EventConfig::default()
            },
        );
        let report = sim.run_until_stable(&dc.invariant(), 5.0, 10_000.0);
        assert!(report.stabilized_at.is_some());
    }

    #[test]
    fn time_is_monotone_and_seeded_deterministic() {
        let ring = TokenRing::new(3, 3);
        let refinement = Refinement::new(ring.program()).unwrap();
        let run = |seed| {
            let mut sim = EventSim::new(
                ring.program(),
                refinement.clone(),
                ring.initial_state(),
                EventConfig {
                    seed,
                    ..EventConfig::default()
                },
            );
            let mut last = 0.0;
            for _ in 0..500 {
                assert!(sim.step());
                assert!(sim.now() >= last, "virtual time is monotone");
                last = sim.now();
            }
            (sim.steps(), sim.ground_truth())
        };
        assert_eq!(run(4), run(4), "same seed, same run");
    }
}
