//! Message-passing refinement of guarded-command programs.
//!
//! The paper designs its protocols in a shared-memory model where an
//! action reads the state of a process and at most one neighbour, and
//! notes that "refinement of this program into one where the neighboring
//! processes communicate via message passing is left as an exercise to the
//! reader" (§7.1) and that low-atomicity refinements are studied in a
//! companion paper (§8). This crate is that exercise, as a substrate for
//! the reproduction experiments:
//!
//! - [`Refinement`] — validates that a program is *refinable* (every
//!   action writes the variables of a single process) and extracts the
//!   ownership and readership structure from declared read/write sets.
//! - [`Simulation`] — a deterministic round-based engine: every process
//!   holds authoritative copies of its own variables and possibly-stale
//!   *caches* of the remote variables its actions read; writes are
//!   propagated to readers through FIFO channels with configurable delay
//!   and loss; faults corrupt node state at runtime.
//! - [`EventSim`] — an event-driven (continuous virtual time) engine:
//!   processes wake at random times and messages carry random latencies,
//!   so nothing is synchronized — the harshest deterministic schedule
//!   model here.
//! - [`threaded`] — an actually-concurrent executor (one OS thread per
//!   process, a lock per variable) for wall-clock sanity experiments.
//!
//! The `nonmask-net` crate takes the same [`Refinement`] one step
//! further: nodes as OS threads whose *only* channel is a TCP loopback
//! socket, with fault-injecting transport and runtime stabilization
//! detection — the refinement over a real network stack.
//!
//! The engine never consults global state to *execute* — only to *measure*
//! (stabilization detection uses the god's-eye [`Simulation::ground_truth`]
//! assembled from authoritative slots, exactly like the paper's proofs
//! quantify over the real state).
//!
//! # Example
//!
//! ```
//! use nonmask_program::{Domain, Predicate, ProcessId, Program};
//! use nonmask_sim::{Refinement, SimConfig, Simulation};
//!
//! // A two-process program: each process copies the other's bit.
//! let mut b = Program::builder("copycat");
//! let a = b.var_of("a", Domain::Bool, ProcessId(0));
//! let c = b.var_of("c", Domain::Bool, ProcessId(1));
//! b.combined_action("copy@1", [a, c], [c],
//!     move |s| s.get(a) != s.get(c),
//!     move |s| { let v = s.get(a); s.set(c, v); });
//! let p = b.build();
//!
//! let refinement = Refinement::new(&p)?;
//! let mut sim = Simulation::new(&p, refinement, p.state_from([1, 0]).unwrap(),
//!     SimConfig::default());
//! let equal = Predicate::new("a=c", [a, c], move |s| s.get(a) == s.get(c));
//! let report = sim.run_until_stable(&equal, 1);
//! assert!(report.stabilized_at_round.is_some());
//! # Ok::<(), nonmask_sim::RefineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod events;
pub mod refine;
pub mod threaded;

pub use engine::{SimConfig, SimReport, Simulation};
pub use events::{EventConfig, EventReport, EventSim};
pub use refine::{RefineError, Refinement};
