//! The round-based message-passing engine.

use std::collections::VecDeque;

use nonmask_obs::{Event, Journal};
use nonmask_program::{byzantine_lie_in, Predicate, Program, State, StepLog, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::refine::Refinement;

/// Configuration of a [`Simulation`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed (message loss and fault sampling).
    pub seed: u64,
    /// Probability that any single update message is dropped.
    pub loss_rate: f64,
    /// Maximum rounds for [`Simulation::run_until_stable`].
    pub max_rounds: u64,
    /// How many actions each process may execute per round.
    pub steps_per_round: usize,
    /// Every `heartbeat_period` rounds each process re-broadcasts all of
    /// its variables to their remote readers (refreshing stale caches even
    /// when no writes happen). `0` disables heartbeats.
    pub heartbeat_period: u64,
    /// Maximum message delay in rounds: each message is delivered after a
    /// uniformly random `1..=max_delay` rounds. With `max_delay > 1` the
    /// network is no longer FIFO (later messages can overtake earlier
    /// ones), which is exactly the reordering stabilizing protocols must
    /// survive.
    pub max_delay: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            loss_rate: 0.0,
            max_rounds: 100_000,
            steps_per_round: 1,
            heartbeat_period: 1,
            max_delay: 1,
        }
    }
}

/// Outcome of [`Simulation::run_until_stable`].
#[derive(Debug, Clone)]
pub struct SimReport {
    /// First round after which the predicate held continuously until the
    /// run stopped, if it stabilized.
    pub stabilized_at_round: Option<u64>,
    /// Rounds executed.
    pub rounds: u64,
    /// Action executions across all processes.
    pub steps: u64,
    /// Update messages sent (including heartbeats, excluding drops).
    pub messages_delivered: u64,
    /// Update messages dropped by the lossy network.
    pub messages_dropped: u64,
    /// The final ground-truth state.
    pub final_state: State,
}

/// A deterministic round-based message-passing simulation of a refinable
/// program.
///
/// Each process `p` keeps a *view* — a full state vector in which `p`'s
/// own variables are authoritative and remote variables are cached copies,
/// updated only by messages. Per round: deliver pending messages, let each
/// process execute up to [`SimConfig::steps_per_round`] enabled actions on
/// its view (round-robin over its actions), then broadcast writes (and
/// heartbeats) to remote readers through the lossy network.
#[derive(Debug)]
pub struct Simulation<'p> {
    program: &'p Program,
    refinement: Refinement,
    config: SimConfig,
    views: Vec<State>,
    /// Per process: messages awaiting delivery as `(deliver_round, var, value)`.
    inboxes: Vec<VecDeque<(u64, VarId, i64)>>,
    cursors: Vec<u32>,
    /// While `rounds < partition_until`, messages crossing partition
    /// groups are dropped.
    partition_until: u64,
    /// Partition-group id per process (all zero = no partition).
    partition_group: Vec<usize>,
    /// Per-process Byzantine flag (all false = every process correct).
    byzantine: Vec<bool>,
    /// Seed of the stateless lie stream the Byzantine processes draw from.
    byz_seed: u64,
    journal: Journal,
    step_log: Option<StepLog>,
    rng: StdRng,
    rounds: u64,
    steps: u64,
    messages_delivered: u64,
    messages_dropped: u64,
    /// Reusable write buffer for the broadcast phase; capacity persists
    /// across rounds so the steady-state hot path never allocates.
    outgoing: Vec<(VarId, i64)>,
}

impl<'p> Simulation<'p> {
    /// Create a simulation from `initial` (authoritative everywhere; all
    /// caches start coherent).
    pub fn new(
        program: &'p Program,
        refinement: Refinement,
        initial: State,
        config: SimConfig,
    ) -> Self {
        let n = refinement.process_count();
        Simulation {
            program,
            refinement,
            rng: StdRng::seed_from_u64(config.seed),
            config,
            views: vec![initial; n],
            inboxes: vec![VecDeque::new(); n],
            cursors: vec![0; n],
            partition_until: 0,
            partition_group: vec![0; n],
            byzantine: vec![false; n],
            byz_seed: 0,
            journal: Journal::disabled(),
            step_log: None,
            rounds: 0,
            steps: 0,
            messages_delivered: 0,
            messages_dropped: 0,
            outgoing: Vec::new(),
        }
    }

    /// Journal fault injections and stabilization episodes to `journal`.
    /// The default is [`Journal::disabled`] (no overhead).
    #[must_use]
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.journal = journal;
        self
    }

    /// Record every executed action into `log` — the process index, the
    /// round, and the executing process's view before and after the action
    /// — for differential conformance checking (`crates/conform`). Off by
    /// default; recording clones two states per step.
    #[must_use]
    pub fn with_step_log(mut self, log: StepLog) -> Self {
        self.step_log = Some(log);
        self
    }

    /// Mark `processes` as permanently Byzantine (malicious, never
    /// healing): they stop executing program actions, and each round
    /// every variable they own is rewritten to the seeded stateless lie
    /// stream ([`nonmask_program::byzantine_lie_in`], keyed by the round
    /// number) and broadcast to its remote readers like any other write.
    /// A run with Byzantine processes can only stabilize *outside* the
    /// liars' influence region — measuring that region's radius is the
    /// point of marking them.
    ///
    /// # Panics
    ///
    /// Panics if a process index is out of range.
    #[must_use]
    pub fn with_byzantine(mut self, processes: impl IntoIterator<Item = usize>, seed: u64) -> Self {
        self.byz_seed = seed;
        for p in processes {
            assert!(
                p < self.byzantine.len(),
                "byzantine process {p} out of range"
            );
            self.byzantine[p] = true;
            self.journal.emit_with(|| Event::Fault {
                kind: "byzantine".to_string(),
                detail: format!("process {p} (seed {seed})"),
            });
        }
        self
    }

    /// Whether process `p` was marked Byzantine.
    pub fn is_byzantine(&self, p: usize) -> bool {
        self.byzantine[p]
    }

    /// The god's-eye state: every variable read from its owner's view.
    pub fn ground_truth(&self) -> State {
        let mut s = State::zeroed(self.program.var_count());
        self.ground_truth_into(&mut s);
        s
    }

    /// Assemble the god's-eye state into `out` — the allocation-free
    /// counterpart of [`ground_truth`](Simulation::ground_truth) for
    /// loops that poll it every round.
    ///
    /// # Panics
    ///
    /// Panics if `out` has a different length than the program's states.
    pub fn ground_truth_into(&self, out: &mut State) {
        assert_eq!(out.len(), self.program.var_count());
        for var in self.program.var_ids() {
            let owner = self.refinement.owner_of(var);
            out.set(var, self.views[owner].get(var));
        }
    }

    /// The view (own variables + caches) of process `p`.
    pub fn view_of(&self, p: usize) -> &State {
        &self.views[p]
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Action executions so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Messages delivered so far (writes + heartbeats that were not
    /// dropped).
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered
    }

    /// Messages dropped so far.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    fn send(&mut self, var: VarId, value: i64) {
        let sender = self.refinement.owner_of(var);
        // Disjoint field borrows: the reader list borrows `refinement`
        // immutably while the loop body mutates `rng`/`inboxes`/counters.
        for &reader in self.refinement.remote_readers_of(var) {
            let partitioned = self.rounds < self.partition_until
                && self.partition_group[sender] != self.partition_group[reader];
            if partitioned
                || (self.config.loss_rate > 0.0 && self.rng.gen_bool(self.config.loss_rate))
            {
                self.messages_dropped += 1;
            } else {
                let delay = if self.config.max_delay <= 1 {
                    1
                } else {
                    self.rng.gen_range(1..=self.config.max_delay)
                };
                self.inboxes[reader].push_back((self.rounds + delay, var, value));
                self.messages_delivered += 1;
            }
        }
    }

    /// Partition the processes into groups for the next `rounds` rounds:
    /// messages crossing group boundaries are dropped until the partition
    /// heals. `groups[p]` is the group id of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not cover every process.
    pub fn partition(&mut self, groups: &[usize], rounds: u64) {
        assert_eq!(groups.len(), self.views.len(), "one group id per process");
        self.partition_group.copy_from_slice(groups);
        self.partition_until = self.rounds + rounds;
        self.journal.emit_with(|| Event::Fault {
            kind: "partition".to_string(),
            detail: format!("groups {groups:?} for {rounds} rounds"),
        });
    }

    /// Execute one round: deliver, step every process, broadcast.
    ///
    /// The steady-state hot path is allocation-free: inboxes rotate in
    /// place, outgoing writes reuse one persistent buffer, and the
    /// refinement lookups are slice borrows. (Step logging is the
    /// documented exception — it clones two states per step.)
    pub fn round(&mut self) {
        // 1. Deliver the updates whose delay has elapsed, in send order.
        //    In-place rotation: pop each entry once; due entries apply,
        //    the rest re-queue behind — relative order is preserved and
        //    the deque's capacity is reused round after round.
        for p in 0..self.views.len() {
            for _ in 0..self.inboxes[p].len() {
                let Some((due, var, value)) = self.inboxes[p].pop_front() else {
                    break;
                };
                if due <= self.rounds {
                    self.views[p].set(var, value);
                } else {
                    self.inboxes[p].push_back((due, var, value));
                }
            }
        }

        // 2. Each process executes up to steps_per_round enabled actions.
        //    Byzantine processes never execute an action; they overwrite
        //    their own variables with the round-keyed lie stream and
        //    broadcast the lies like ordinary writes.
        debug_assert!(self.outgoing.is_empty());
        for p in 0..self.views.len() {
            if self.byzantine[p] {
                for i in 0..self.refinement.vars_of(p).len() {
                    let var = self.refinement.vars_of(p)[i];
                    let lie = byzantine_lie_in(
                        self.program.var(var).domain(),
                        self.byz_seed,
                        p as u64,
                        var.index() as u64,
                        self.rounds,
                    );
                    self.views[p].set(var, lie);
                    self.outgoing.push((var, lie));
                }
                continue;
            }
            let actions = self.refinement.actions_of(p);
            if actions.is_empty() {
                continue;
            }
            for _ in 0..self.config.steps_per_round {
                // Round-robin over the process's actions.
                let k = actions.len() as u32;
                let mut chosen = None;
                for off in 0..k {
                    let idx = ((self.cursors[p] + off) % k) as usize;
                    if self.program.action(actions[idx]).enabled(&self.views[p]) {
                        chosen = Some(idx);
                        break;
                    }
                }
                let Some(idx) = chosen else { break };
                self.cursors[p] = (idx as u32 + 1) % k;
                let action = self.program.action(actions[idx]);
                let before = self.step_log.as_ref().map(|_| self.views[p].clone());
                action.apply(&mut self.views[p]);
                self.steps += 1;
                if let (Some(log), Some(before)) = (&self.step_log, before) {
                    log.push(p, self.rounds, actions[idx], before, self.views[p].clone());
                }
                for &w in action.writes() {
                    self.outgoing.push((w, self.views[p].get(w)));
                }
            }
        }
        for i in 0..self.outgoing.len() {
            let (var, value) = self.outgoing[i];
            self.send(var, value);
        }
        self.outgoing.clear();

        // 3. Heartbeats.
        if self.config.heartbeat_period > 0
            && self.rounds.is_multiple_of(self.config.heartbeat_period)
        {
            for p in 0..self.views.len() {
                for i in 0..self.refinement.vars_of(p).len() {
                    let var = self.refinement.vars_of(p)[i];
                    let value = self.views[p].get(var);
                    self.send(var, value);
                }
            }
        }

        self.rounds += 1;
    }

    /// Run rounds until `pred` holds on the ground truth for `hold`
    /// consecutive rounds (or the round budget is exhausted).
    ///
    /// # Panics
    ///
    /// Panics if `hold == 0`.
    pub fn run_until_stable(&mut self, pred: &Predicate, hold: u32) -> SimReport {
        assert!(hold > 0);
        self.journal.emit_with(|| Event::EpisodeStarted {
            label: pred.name().to_string(),
        });
        let mut held = 0u32;
        let mut hold_start = 0u64;
        let start_round = self.rounds;
        let mut stabilized_at_round = None;
        let mut truth = State::zeroed(self.program.var_count());
        while self.rounds - start_round < self.config.max_rounds {
            self.round();
            self.ground_truth_into(&mut truth);
            if pred.holds(&truth) {
                if held == 0 {
                    hold_start = self.rounds - 1;
                }
                held += 1;
                if held >= hold {
                    stabilized_at_round = Some(hold_start);
                    self.journal.emit_with(|| Event::Stabilized {
                        rounds: hold_start - start_round,
                    });
                    break;
                }
            } else {
                held = 0;
            }
        }
        SimReport {
            stabilized_at_round,
            rounds: self.rounds - start_round,
            steps: self.steps,
            messages_delivered: self.messages_delivered,
            messages_dropped: self.messages_dropped,
            final_state: self.ground_truth(),
        }
    }

    /// Corrupt every variable of process `p` to random domain values
    /// (authoritative copies only; caches elsewhere go stale, exactly like
    /// a real memory fault).
    pub fn corrupt_process(&mut self, p: usize) {
        for &var in self.refinement.vars_of(p) {
            let value = self.program.var(var).domain().sample(&mut self.rng);
            self.views[p].set(var, value);
        }
        self.journal.emit_with(|| Event::Fault {
            kind: "corrupt-process".to_string(),
            detail: format!("process {p}"),
        });
    }

    /// Overwrite one authoritative variable (targeted fault injection).
    pub fn corrupt_var(&mut self, var: VarId, value: i64) {
        let owner = self.refinement.owner_of(var);
        self.views[owner].set(var, value);
        self.journal.emit_with(|| Event::Fault {
            kind: "corrupt-var".to_string(),
            detail: format!("{} := {value}", self.program.var(var).name()),
        });
    }

    /// Crash-and-restart process `p`: its own variables reset to their
    /// domain minima and all of its caches are cleared to stale minima.
    pub fn crash_restart(&mut self, p: usize) {
        for var in self.program.var_ids() {
            // Own variables and cached remote views alike reset to the
            // domain minimum — the restarted process remembers nothing.
            let min = self.program.var(var).domain().min_value();
            self.views[p].set(var, min);
        }
        self.inboxes[p].clear();
        self.journal.emit_with(|| Event::Fault {
            kind: "crash-restart".to_string(),
            detail: format!("process {p}"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_protocols::diffusing::DiffusingComputation;
    use nonmask_protocols::token_ring::TokenRing;
    use nonmask_protocols::Tree;

    fn ring_sim(n: usize, k: i64, config: SimConfig) -> (TokenRing, Refinement) {
        let ring = TokenRing::new(n, k);
        let refinement = Refinement::new(ring.program()).unwrap();
        let _ = &config;
        (ring, refinement)
    }

    #[test]
    fn token_ring_stabilizes_over_messages() {
        let (ring, refinement) = ring_sim(5, 5, SimConfig::default());
        let corrupt = ring.program().state_from([3, 1, 4, 1, 2]).unwrap();
        let mut sim = Simulation::new(ring.program(), refinement, corrupt, SimConfig::default());
        let report = sim.run_until_stable(&ring.invariant(), 3);
        assert!(
            report.stabilized_at_round.is_some(),
            "no stabilization in {} rounds",
            report.rounds
        );
        assert_eq!(ring.privileges(&report.final_state).len(), 1);
    }

    #[test]
    fn token_ring_survives_lossy_network() {
        let config = SimConfig {
            loss_rate: 0.3,
            seed: 9,
            ..SimConfig::default()
        };
        let (ring, refinement) = ring_sim(4, 4, config.clone());
        let corrupt = ring.program().state_from([2, 0, 3, 1]).unwrap();
        let mut sim = Simulation::new(ring.program(), refinement, corrupt, config);
        let report = sim.run_until_stable(&ring.invariant(), 3);
        assert!(report.stabilized_at_round.is_some());
        assert!(
            report.messages_dropped > 0,
            "the lossy network dropped something"
        );
    }

    #[test]
    fn diffusing_computation_recovers_from_corruption() {
        let tree = Tree::binary(7);
        let dc = DiffusingComputation::new(&tree);
        let refinement = Refinement::new(dc.program()).unwrap();
        let mut sim = Simulation::new(
            dc.program(),
            refinement,
            dc.initial_state(),
            SimConfig {
                seed: 4,
                ..SimConfig::default()
            },
        );
        // Let the wave run, then corrupt three nodes.
        for _ in 0..10 {
            sim.round();
        }
        sim.corrupt_process(2);
        sim.corrupt_process(5);
        sim.corrupt_process(6);
        let report = sim.run_until_stable(&dc.invariant(), 5);
        assert!(
            report.stabilized_at_round.is_some(),
            "diffusing computation re-stabilized: {} rounds",
            report.rounds
        );
    }

    #[test]
    fn ground_truth_assembles_owner_views() {
        let (ring, refinement) = ring_sim(3, 3, SimConfig::default());
        let initial = ring.initial_state();
        let sim = Simulation::new(
            ring.program(),
            refinement,
            initial.clone(),
            SimConfig::default(),
        );
        assert_eq!(sim.ground_truth(), initial);
    }

    #[test]
    fn heartbeats_refresh_stale_caches() {
        // An inert program (its only action is never enabled): corruption
        // can only reach remote caches through heartbeats.
        use nonmask_program::{Domain, ProcessId, Program};
        let mut b = Program::builder("inert");
        let x0 = b.var_of("x.0", Domain::range(0, 5), ProcessId(0));
        let x1 = b.var_of("x.1", Domain::range(0, 5), ProcessId(1));
        b.closure_action("never@1", [x0, x1], [x1], |_| false, |_| {});
        let p = b.build();
        let refinement = Refinement::new(&p).unwrap();
        let mut sim = Simulation::new(&p, refinement, p.min_state(), SimConfig::default());

        sim.corrupt_var(x0, 3);
        assert_eq!(sim.ground_truth().get(x0), 3, "authoritative copy updated");
        assert_eq!(sim.view_of(1).get(x0), 0, "cache still stale");
        sim.round(); // heartbeat sends x.0 = 3 …
        sim.round(); // … delivered at the start of the next round
        assert_eq!(sim.view_of(1).get(x0), 3, "heartbeat refreshed the cache");
    }

    #[test]
    fn crash_restart_resets_node() {
        let (ring, refinement) = ring_sim(4, 4, SimConfig::default());
        let corrupt = ring.program().state_from([3, 2, 1, 0]).unwrap();
        let mut sim = Simulation::new(ring.program(), refinement, corrupt, SimConfig::default());
        sim.crash_restart(2);
        assert_eq!(sim.ground_truth().get(ring.counter_var(2)), 0);
        let report = sim.run_until_stable(&ring.invariant(), 3);
        assert!(report.stabilized_at_round.is_some());
    }

    #[test]
    fn metrics_accumulate() {
        let (ring, refinement) = ring_sim(3, 3, SimConfig::default());
        let mut sim = Simulation::new(
            ring.program(),
            refinement,
            ring.initial_state(),
            SimConfig::default(),
        );
        for _ in 0..5 {
            sim.round();
        }
        assert_eq!(sim.rounds(), 5);
        assert!(sim.steps() > 0);
        assert!(sim.messages_delivered() > 0);
        assert_eq!(sim.messages_dropped(), 0);
    }

    #[test]
    fn stabilizes_despite_message_delays() {
        // max_delay 4: messages reorder freely; the ring still converges.
        let config = SimConfig {
            seed: 21,
            max_delay: 4,
            ..SimConfig::default()
        };
        let (ring, refinement) = ring_sim(5, 5, config.clone());
        let corrupt = ring.program().state_from([3, 1, 4, 1, 2]).unwrap();
        let mut sim = Simulation::new(ring.program(), refinement, corrupt, config);
        let report = sim.run_until_stable(&ring.invariant(), 5);
        assert!(
            report.stabilized_at_round.is_some(),
            "{} rounds",
            report.rounds
        );
    }

    #[test]
    fn partition_blocks_then_heals() {
        let (ring, refinement) = ring_sim(4, 4, SimConfig::default());
        let corrupt = ring.program().state_from([2, 0, 3, 1]).unwrap();
        let mut sim = Simulation::new(ring.program(), refinement, corrupt, SimConfig::default());
        // Split the ring in half for 50 rounds: cross-group updates drop.
        sim.partition(&[0, 0, 1, 1], 50);
        for _ in 0..50 {
            sim.round();
        }
        assert!(sim.messages_dropped() > 0, "the partition dropped messages");
        // After healing, stabilization proceeds.
        let report = sim.run_until_stable(&ring.invariant(), 3);
        assert!(report.stabilized_at_round.is_some());
    }

    #[test]
    #[should_panic(expected = "one group id per process")]
    fn partition_arity_checked() {
        let (ring, refinement) = ring_sim(4, 4, SimConfig::default());
        let mut sim = Simulation::new(
            ring.program(),
            refinement,
            ring.initial_state(),
            SimConfig::default(),
        );
        sim.partition(&[0, 1], 10);
    }

    #[test]
    fn journal_records_faults_and_stabilization() {
        use nonmask_obs::{Event, Journal, Record};
        let (journal, buffer) = Journal::memory();
        let (ring, refinement) = ring_sim(4, 4, SimConfig::default());
        let corrupt = ring.program().state_from([2, 0, 3, 1]).unwrap();
        let mut sim = Simulation::new(ring.program(), refinement, corrupt, SimConfig::default())
            .with_journal(journal.clone());
        sim.crash_restart(1);
        sim.corrupt_var(ring.counter_var(2), 3);
        let report = sim.run_until_stable(&ring.invariant(), 3);
        assert!(report.stabilized_at_round.is_some());
        journal.flush();
        let records: Vec<Record> = buffer
            .contents()
            .lines()
            .map(|l| Event::parse_line(l).expect("well-formed journal line"))
            .collect();
        assert!(matches!(
            &records[0].event,
            Event::Fault { kind, detail } if kind == "crash-restart" && detail == "process 1"
        ));
        assert!(matches!(
            &records[1].event,
            Event::Fault { kind, .. } if kind == "corrupt-var"
        ));
        assert!(matches!(&records[2].event, Event::EpisodeStarted { .. }));
        assert!(matches!(
            records.last().map(|r| &r.event),
            Some(Event::Stabilized { .. })
        ));
    }

    #[test]
    fn step_log_captures_every_view_transition() {
        use nonmask_program::StepLog;
        let (ring, refinement) = ring_sim(3, 3, SimConfig::default());
        let log = StepLog::new();
        let mut sim = Simulation::new(
            ring.program(),
            refinement,
            ring.initial_state(),
            SimConfig::default(),
        )
        .with_step_log(log.clone());
        for _ in 0..5 {
            sim.round();
        }
        let steps = log.snapshot();
        assert_eq!(steps.len() as u64, sim.steps(), "one record per step");
        for s in &steps {
            let action = ring.program().action(s.action);
            assert!(action.enabled(&s.before), "guard held on the view");
            assert_eq!(action.successor(&s.before), s.after, "effect is exact");
        }
    }

    #[test]
    fn byzantine_liar_never_steps_and_broadcasts_the_lie_stream() {
        use nonmask_graph::Topology;
        use nonmask_program::{byzantine_lie_in, StepLog};
        use nonmask_protocols::MinPlusOne;
        let topo = Topology::line(4);
        let proto = MinPlusOne::with_byzantine(&topo, 0, &[3]);
        let refinement = Refinement::new(proto.program()).unwrap();
        let log = StepLog::new();
        let mut sim = Simulation::new(
            proto.program(),
            refinement,
            proto.program().min_state(),
            SimConfig::default(),
        )
        .with_byzantine([3], 77)
        .with_step_log(log.clone());
        let d3 = proto.dist_var(3);
        let mut cache_values = std::collections::BTreeSet::new();
        for _ in 0..32 {
            sim.round();
            cache_values.insert(sim.view_of(2).get(d3));
        }
        assert!(sim.is_byzantine(3));
        assert!(
            log.snapshot().iter().all(|s| s.site != 3),
            "the liar never executes a program action"
        );
        // The liar's authoritative value is exactly the stateless stream.
        let expect = byzantine_lie_in(
            proto.program().var(d3).domain(),
            77,
            3,
            d3.index() as u64,
            sim.rounds() - 1,
        );
        assert_eq!(sim.ground_truth().get(d3), expect);
        assert!(
            cache_values.len() > 1,
            "lies vary over rounds and reach the neighbour's cache"
        );
    }

    #[test]
    fn byzantine_run_stabilizes_exactly_on_the_safe_region() {
        use nonmask_graph::Topology;
        use nonmask_protocols::MinPlusOne;
        // line(6) with the liar at 5: safe set [T,T,T,F,F,F], radius 2.
        let topo = Topology::line(6);
        let proto = MinPlusOne::with_byzantine(&topo, 0, &[5]);
        let refinement = Refinement::new(proto.program()).unwrap();
        let mut sim = Simulation::new(
            proto.program(),
            refinement,
            proto.program().min_state(),
            SimConfig {
                seed: 11,
                max_rounds: 5_000,
                ..SimConfig::default()
            },
        )
        .with_byzantine([5], 13);
        let report = sim.run_until_stable(&proto.safe_goal(), 8);
        assert!(
            report.stabilized_at_round.is_some(),
            "safe region converged despite the liar ({} rounds)",
            report.rounds
        );
        let legit = proto.legit_distances();
        for (j, safe) in proto.safe_set().iter().enumerate() {
            if *safe {
                assert_eq!(
                    report.final_state.get(proto.dist_var(j)) as u64,
                    legit[j].unwrap(),
                    "safe node {j} holds its legitimate distance"
                );
            }
        }
    }

    #[test]
    fn byzantine_runs_are_deterministic() {
        use nonmask_graph::Topology;
        use nonmask_protocols::MinPlusOne;
        let topo = Topology::random_connected(9, 4, 3);
        let proto = MinPlusOne::with_byzantine(&topo, 0, &[4, 7]);
        let run = || {
            let refinement = Refinement::new(proto.program()).unwrap();
            let mut sim = Simulation::new(
                proto.program(),
                refinement,
                proto.program().min_state(),
                SimConfig {
                    seed: 2,
                    loss_rate: 0.1,
                    ..SimConfig::default()
                },
            )
            .with_byzantine([4, 7], 55);
            for _ in 0..200 {
                sim.round();
            }
            (sim.ground_truth(), sim.messages_delivered(), sim.steps())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn heartbeats_can_be_disabled() {
        let config = SimConfig {
            heartbeat_period: 0,
            ..SimConfig::default()
        };
        let (ring, refinement) = ring_sim(3, 3, config.clone());
        let mut sim = Simulation::new(ring.program(), refinement, ring.initial_state(), config);
        sim.round();
        // Only write-triggered messages flow: the single enabled action
        // (the root's pass) wrote x.0, read remotely by process 1.
        assert_eq!(sim.messages_delivered(), 1);
    }
}
