//! Step-determinism regression pin for the simulator engine.
//!
//! The engine's hot path was rewritten to be allocation-free (in-place
//! inbox rotation, a reusable outgoing buffer, slice-backed refinement
//! lookups, a scratch ground-truth state). None of that may change a
//! single observable value: the RNG draw order, delivery order, action
//! order, and therefore every counter and the final state must be
//! bit-identical to the pre-refactor engine. The constants below were
//! captured from the original implementation; any drift is a regression.

use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::Tree;
use nonmask_sim::{Refinement, SimConfig, Simulation};

struct Golden {
    stabilized_at_round: Option<u64>,
    rounds: u64,
    steps: u64,
    messages_delivered: u64,
    messages_dropped: u64,
    final_state: Vec<i64>,
}

fn run_ring(config: SimConfig) -> Golden {
    let ring = TokenRing::new(5, 5);
    let refinement = Refinement::new(ring.program()).unwrap();
    let corrupt = ring.program().state_from([3, 1, 4, 1, 2]).unwrap();
    let mut sim = Simulation::new(ring.program(), refinement, corrupt, config);
    sim.corrupt_process(2);
    sim.partition(&[0, 0, 0, 1, 1], 7);
    let report = sim.run_until_stable(&ring.invariant(), 3);
    Golden {
        stabilized_at_round: report.stabilized_at_round,
        rounds: report.rounds,
        steps: report.steps,
        messages_delivered: report.messages_delivered,
        messages_dropped: report.messages_dropped,
        final_state: report.final_state.slots().to_vec(),
    }
}

fn run_diffusing(config: SimConfig) -> Golden {
    let tree = Tree::binary(7);
    let dc = DiffusingComputation::new(&tree);
    let refinement = Refinement::new(dc.program()).unwrap();
    let mut sim = Simulation::new(dc.program(), refinement, dc.initial_state(), config);
    for _ in 0..10 {
        sim.round();
    }
    sim.corrupt_process(2);
    sim.corrupt_process(5);
    sim.crash_restart(6);
    let report = sim.run_until_stable(&dc.invariant(), 5);
    Golden {
        stabilized_at_round: report.stabilized_at_round,
        rounds: report.rounds,
        steps: report.steps,
        messages_delivered: report.messages_delivered,
        messages_dropped: report.messages_dropped,
        final_state: report.final_state.slots().to_vec(),
    }
}

#[test]
fn lossy_delayed_ring_golden() {
    // Lossy network + reordering delays + a partition + a process
    // corruption: every RNG consumer on the hot path fires.
    let g = run_ring(SimConfig {
        seed: 0x00D5_EA11,
        loss_rate: 0.25,
        max_delay: 3,
        ..SimConfig::default()
    });
    assert_eq!(g.stabilized_at_round, Some(3));
    assert_eq!(g.rounds, 6);
    assert_eq!(g.steps, 6);
    assert_eq!(g.messages_delivered, 17);
    assert_eq!(g.messages_dropped, 19);
    assert_eq!(g.final_state, vec![3, 3, 3, 4, 4]);
}

#[test]
fn diffusing_corruption_golden() {
    let g = run_diffusing(SimConfig {
        seed: 77,
        loss_rate: 0.1,
        max_delay: 2,
        steps_per_round: 2,
        heartbeat_period: 3,
        ..SimConfig::default()
    });
    assert_eq!(g.stabilized_at_round, Some(10));
    assert_eq!(g.rounds, 5);
    assert_eq!(g.steps, 22);
    assert_eq!(g.messages_delivered, 171);
    assert_eq!(g.messages_dropped, 16);
    assert_eq!(
        g.final_state,
        vec![1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]
    );
}
