//! Steady-state allocation audit for the simulator's hot path.
//!
//! A counting global allocator wraps `System`; after a warm-up phase in
//! which buffers (inbox deques, the outgoing write buffer) reach their
//! steady-state capacities, executing further rounds must perform **zero**
//! heap allocations — the property the fleet harness's slab stepping
//! builds on. This lives in its own integration-test binary because a
//! `#[global_allocator]` is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use nonmask_protocols::token_ring::TokenRing;
use nonmask_sim::{Refinement, SimConfig, Simulation};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic
// with no further invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_rounds_do_not_allocate() {
    // Lossy + delayed network so every RNG consumer and both queue paths
    // (deliver now, re-queue later) are exercised each round.
    let config = SimConfig {
        seed: 11,
        loss_rate: 0.2,
        max_delay: 3,
        steps_per_round: 2,
        ..SimConfig::default()
    };
    let ring = TokenRing::new(6, 6);
    let refinement = Refinement::new(ring.program()).unwrap();
    let corrupt = ring.program().state_from([5, 1, 4, 2, 3, 0]).unwrap();
    let mut sim = Simulation::new(ring.program(), refinement, corrupt, config);
    let invariant = ring.invariant();
    let mut truth = nonmask_program::State::zeroed(ring.program().var_count());

    // Warm-up: let deque/buffer capacities reach their high-water marks.
    // The inbox depth is structurally bounded (channels × max delay ×
    // writes per round), but the worst-case round pattern under random
    // loss is rare — give it time to occur.
    for _ in 0..5_000 {
        sim.round();
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..500 {
        sim.round();
        sim.ground_truth_into(&mut truth);
        std::hint::black_box(invariant.holds(&truth));
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state rounds allocated {} times",
        after - before
    );
    assert!(sim.steps() > 0, "the ring actually stepped");
}
