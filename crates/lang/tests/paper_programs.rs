//! The paper's final programs, written in the surface language (almost
//! verbatim from the paper's notation), compiled, and verified with the
//! model checker.

use nonmask_checker::{check_convergence, is_closed, Fairness, StateSpace};
use nonmask_lang::{compile, parse, pretty};
use nonmask_program::Predicate;

/// §7.1's final token-ring program (three nodes, counters mod 3):
///
/// ```text
/// x.0 = x.N  → x.0 := x.0 + 1
/// x.j ≠ x.(j-1) → x.j := x.(j-1)
/// ```
const TOKEN_RING: &str = r#"
    program token_ring
    var x.0 : 0..2; x.1 : 0..2; x.2 : 0..2

    action pass.0 [combined] : x.0 == x.2 -> x.0 := (x.0 + 1) % 3
    action pass.1 [combined] : x.1 != x.0 -> x.1 := x.0
    action pass.2 [combined] : x.2 != x.1 -> x.2 := x.1
"#;

/// §5.1's final diffusing computation on the chain 0 → 1 → 2:
///
/// ```text
/// c.j = green ∧ P.j = j                         → c.j, sn.j := red, ¬sn.j
/// sn.j ≠ sn.(P.j) ∨ (c.j = red ∧ c.(P.j) = green) → c.j, sn.j := c.(P.j), sn.(P.j)
/// c.j = red ∧ (∀ children green, sessions equal)  → c.j := green
/// ```
const DIFFUSING_CHAIN: &str = r#"
    program diffusing
    var c.0 : {green, red}; sn.0 : bool;
        c.1 : {green, red}; sn.1 : bool;
        c.2 : {green, red}; sn.2 : bool

    # Root initiates.
    action initiate.0 : c.0 == green -> c.0 := red, sn.0 := !sn.0

    # Merged propagate/repair (the paper's combined action).
    action prop.1 [combined] : sn.1 != sn.0 || (c.1 == red && c.0 == green)
        -> c.1 := c.0, sn.1 := sn.0
    action prop.2 [combined] : sn.2 != sn.1 || (c.2 == red && c.1 == green)
        -> c.2 := c.1, sn.2 := sn.1

    # Reflect once the (single) child is green with an equal session.
    action reflect.0 : c.0 == red && c.1 == green && sn.0 == sn.1 -> c.0 := green
    action reflect.1 : c.1 == red && c.2 == green && sn.1 == sn.2 -> c.1 := green
    action reflect.2 : c.2 == red -> c.2 := green
"#;

#[test]
fn parsed_token_ring_is_stabilizing() {
    let program = compile(TOKEN_RING).unwrap();
    assert_eq!(program.action_count(), 3);
    let space = StateSpace::enumerate(&program).unwrap();

    // Invariant: exactly one action enabled (= one privilege).
    let p2 = program.clone();
    let s = Predicate::new("one-privilege", program.var_ids(), move |st| {
        p2.enabled_actions(st).len() == 1
    });
    assert!(is_closed(&space, &program, &s).unwrap().is_none());
    for fairness in [Fairness::WeaklyFair, Fairness::Unfair] {
        let r =
            check_convergence(&space, &program, &Predicate::always_true(), &s, fairness).unwrap();
        assert!(r.converges(), "{fairness}: {r:?}");
    }
}

#[test]
fn parsed_diffusing_chain_is_stabilizing() {
    let program = compile(DIFFUSING_CHAIN).unwrap();
    let space = StateSpace::enumerate(&program).unwrap();

    // S = R.1 ∧ R.2 with R.j as in the paper.
    let c = |name: &str| program.var_by_name(name).unwrap();
    let (c0, sn0, c1, sn1, c2, sn2) = (
        c("c.0"),
        c("sn.0"),
        c("c.1"),
        c("sn.1"),
        c("c.2"),
        c("sn.2"),
    );
    let r = move |cj: nonmask_program::VarId,
                  snj: nonmask_program::VarId,
                  cp: nonmask_program::VarId,
                  snp: nonmask_program::VarId| {
        Predicate::new("R", [cj, snj, cp, snp], move |s| {
            (s.get(cj) == s.get(cp) && s.get(snj) == s.get(snp))
                || (s.get(cj) == 0 && s.get(cp) == 1) // green = 0, red = 1
        })
    };
    let s = r(c1, sn1, c0, sn0).and(&r(c2, sn2, c1, sn1)).named("S");

    assert!(
        is_closed(&space, &program, &s).unwrap().is_none(),
        "S is closed"
    );
    for fairness in [Fairness::WeaklyFair, Fairness::Unfair] {
        let verdict =
            check_convergence(&space, &program, &Predicate::always_true(), &s, fairness).unwrap();
        assert!(verdict.converges(), "{fairness}: {verdict:?}");
    }
}

#[test]
fn parsed_programs_match_hand_built_semantics() {
    // The parsed token ring and the hand-built protocol agree on every
    // transition (same successor sets per state).
    use nonmask_protocols::token_ring::TokenRing as HandBuilt;
    let parsed = compile(TOKEN_RING).unwrap();
    let hand = HandBuilt::new(3, 3);
    let space = StateSpace::enumerate(&parsed).unwrap();
    for id in space.ids() {
        let st = space.state(id);
        let parsed_succs: std::collections::BTreeSet<_> = parsed
            .enabled_actions(&st)
            .into_iter()
            .map(|a| parsed.action(a).successor(&st).into_slots())
            .collect();
        let hand_succs: std::collections::BTreeSet<_> = hand
            .program()
            .enabled_actions(&st)
            .into_iter()
            .map(|a| hand.program().action(a).successor(&st).into_slots())
            .collect();
        assert_eq!(parsed_succs, hand_succs, "at state {:?}", st.slots());
    }
}

#[test]
fn pretty_printed_paper_program_still_verifies() {
    let def = parse(TOKEN_RING).unwrap();
    let reprinted = pretty(&def);
    let program = compile(&reprinted).unwrap();
    let space = StateSpace::enumerate(&program).unwrap();
    let p2 = program.clone();
    let s = Predicate::new("one-privilege", program.var_ids(), move |st| {
        p2.enabled_actions(st).len() == 1
    });
    let verdict = check_convergence(
        &space,
        &program,
        &Predicate::always_true(),
        &s,
        Fairness::WeaklyFair,
    )
    .unwrap();
    assert!(verdict.converges());
}
