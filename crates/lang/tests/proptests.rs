//! Property tests: printing and reparsing is the identity on random ASTs.

use nonmask_lang::{parse, pretty, ActionDef, BinOp, DomainDef, Expr, ProgramDef, VarDef};
use nonmask_program::ActionKind;
use proptest::prelude::*;

fn ident_strategy() -> impl Strategy<Value = String> {
    // Identifiers `[a-z][a-z0-9_]{0,5}` with optional dotted suffix,
    // avoiding keywords. (Spelled out char-by-char: the vendored proptest
    // shim has no regex strategies.)
    let first = proptest::sample::select(('a'..='z').collect::<Vec<char>>());
    let rest_alphabet: Vec<char> = ('a'..='z').chain('0'..='9').chain(['_']).collect();
    let rest = proptest::collection::vec(proptest::sample::select(rest_alphabet), 0..6);
    let base = (first, rest).prop_map(|(f, r)| {
        let mut s = String::new();
        s.push(f);
        s.extend(r);
        s
    });
    (base, proptest::option::of(0u8..10)).prop_filter_map("avoid keywords", |(base, suffix)| {
        const KEYWORDS: [&str; 6] = ["program", "var", "action", "bool", "true", "false"];
        if KEYWORDS.contains(&base.as_str()) {
            return None;
        }
        Some(match suffix {
            Some(n) => format!("{base}.{n}"),
            None => base,
        })
    })
}

/// Domains for the variable at `index`: booleans, ranges (including
/// negative bounds and singletons), and enumerations. Enum labels are
/// synthesized from the variable index (`v3l0`, `v3l1`, …) so no two
/// enums ever rebind the same label to different values.
fn domain_strategy(index: usize) -> BoxedStrategy<DomainDef> {
    prop_oneof![
        Just(DomainDef::Bool),
        (-8i64..8, 0i64..8).prop_map(|(lo, span)| DomainDef::Range(lo, lo + span)),
        (2usize..4)
            .prop_map(move |k| DomainDef::Enum((0..k).map(|j| format!("v{index}l{j}")).collect())),
    ]
    .boxed()
}

fn expr_strategy(vars: Vec<String>) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..100).prop_map(Expr::Int),
        any::<bool>().prop_map(Expr::Bool),
        proptest::sample::select(vars).prop_map(Expr::Ident),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            (
                proptest::sample::select(vec![
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Mod,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                    BinOp::And,
                    BinOp::Or,
                ]),
                inner.clone(),
                inner,
            )
                .prop_map(|(op, l, r)| Expr::Bin(op, Box::new(l), Box::new(r))),
        ]
    })
}

fn program_strategy() -> impl Strategy<Value = ProgramDef> {
    (
        ident_strategy(),
        proptest::collection::btree_set(ident_strategy(), 1..5),
    )
        .prop_flat_map(|(name, var_names)| {
            let vars: Vec<String> = var_names.into_iter().collect();
            let domains: Vec<BoxedStrategy<DomainDef>> =
                (0..vars.len()).map(domain_strategy).collect();
            (Just(name), Just(vars), domains)
        })
        .prop_flat_map(|(name, vars, domains)| {
            let var_defs: Vec<VarDef> = vars
                .iter()
                .zip(domains)
                .map(|(v, domain)| VarDef {
                    name: v.clone(),
                    domain,
                    line: 0,
                })
                .collect();
            // Expressions may mention variables *and* enum labels (which
            // compile to folded constants); assignment targets stay
            // variables.
            let mut idents = vars.clone();
            for def in &var_defs {
                if let DomainDef::Enum(labels) = &def.domain {
                    idents.extend(labels.iter().cloned());
                }
            }
            let action = (
                ident_strategy(),
                proptest::sample::select(vec![
                    ActionKind::Closure,
                    ActionKind::Convergence,
                    ActionKind::Combined,
                ]),
                expr_strategy(idents.clone()),
                proptest::collection::vec(
                    (
                        proptest::sample::select(vars.clone()),
                        expr_strategy(idents.clone()),
                    ),
                    1..4,
                ),
            )
                .prop_map(|(name, kind, guard, assigns)| ActionDef {
                    name,
                    kind,
                    guard,
                    assigns,
                    line: 0,
                });
            (
                Just(name),
                Just(var_defs),
                proptest::collection::vec(action, 0..4),
            )
        })
        .prop_map(|(name, vars, actions)| ProgramDef {
            name,
            vars,
            roles: Vec::new(),
            actions,
        })
        .prop_filter("enum labels must not collide with variable names", |def| {
            // A generated variable could coincidentally be named like a
            // synthesized label (`v0l1`); the label would then resolve to
            // the variable instead of the constant, so drop such programs.
            let names: std::collections::HashSet<&str> =
                def.vars.iter().map(|v| v.name.as_str()).collect();
            def.vars.iter().all(|v| match &v.domain {
                DomainDef::Enum(labels) => labels.iter().all(|l| !names.contains(l.as_str())),
                _ => true,
            })
        })
}

fn strip_lines(mut def: ProgramDef) -> ProgramDef {
    for v in &mut def.vars {
        v.line = 0;
    }
    for a in &mut def.actions {
        a.line = 0;
    }
    def
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse(pretty(ast)) == ast` for arbitrary well-formed ASTs.
    #[test]
    fn print_parse_roundtrip(def in program_strategy()) {
        let printed = pretty(&def);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(strip_lines(def), strip_lines(reparsed), "printed:\n{}", printed);
    }

    /// Every printable AST also compiles (identifiers all declared, ranges
    /// nonempty) and the compiled guard agrees with a direct evaluation of
    /// the expression on the minimum state.
    #[test]
    fn printable_asts_compile(def in program_strategy()) {
        let program = nonmask_lang::compile_def(&def)
            .unwrap_or_else(|e| panic!("compile failed: {e}"));
        prop_assert_eq!(program.action_count(), def.actions.len());
        prop_assert_eq!(program.var_count(), def.vars.len());
        // Guards evaluate without panicking on arbitrary in-domain states.
        let s = program.min_state();
        for a in program.action_ids() {
            let _ = program.action(a).enabled(&s);
        }
    }
}
