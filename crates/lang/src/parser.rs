//! Recursive-descent parser.

use nonmask_program::ActionKind;

use crate::ast::{ActionDef, BinOp, DomainDef, Expr, ProgramDef, RoleDef, VarDef};
use crate::lexer::{lex, Spanned, Tok};
use crate::LangError;

/// Parse a program text into its AST.
///
/// # Errors
///
/// [`LangError`] with the offending line on any syntax error.
pub fn parse(source: &str) -> Result<ProgramDef, LangError> {
    let tokens = lex(source)?;
    let last_line = tokens.last().map_or(1, |t| t.line);
    let mut p = Parser {
        tokens,
        pos: 0,
        last_line,
    };
    let def = p.program()?;
    if let Some(t) = p.peek() {
        return Err(LangError::new(
            t.line,
            format!("unexpected trailing `{}`", render(&t.tok)),
        ));
    }
    Ok(def)
}

fn render(tok: &Tok) -> String {
    match tok {
        Tok::Ident(s) => s.clone(),
        Tok::Int(v) => v.to_string(),
        Tok::Keyword(k) => (*k).to_string(),
        Tok::Punct(p) => (*p).to_string(),
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    /// Line of the last token (used for end-of-input errors).
    last_line: u32,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn line(&self) -> u32 {
        self.peek().map_or(self.last_line, |t| t.line)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Spanned { tok: Tok::Punct(q), .. }) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), LangError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("`{p}`")))
        }
    }

    fn eat_keyword(&mut self, k: &str) -> bool {
        if matches!(self.peek(), Some(Spanned { tok: Tok::Keyword(q), .. }) if *q == k) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, k: &'static str) -> Result<(), LangError> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("keyword `{k}`")))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, u32), LangError> {
        match self.next() {
            Some(Spanned {
                tok: Tok::Ident(s),
                line,
            }) => Ok((s, line)),
            other => Err(LangError::new(
                other.as_ref().map_or(self.last_line, |t| t.line),
                format!(
                    "expected an identifier, found {}",
                    other.map_or("end of input".to_string(), |t| format!(
                        "`{}`",
                        render(&t.tok)
                    ))
                ),
            )),
        }
    }

    fn expect_int(&mut self) -> Result<i64, LangError> {
        // Allow a leading minus for negative bounds.
        let negative = self.eat_punct("-");
        match self.next() {
            Some(Spanned {
                tok: Tok::Int(v), ..
            }) => Ok(if negative { -v } else { v }),
            other => Err(LangError::new(
                other.as_ref().map_or(self.last_line, |t| t.line),
                "expected an integer".to_string(),
            )),
        }
    }

    fn unexpected(&self, wanted: &str) -> LangError {
        LangError::new(
            self.line(),
            match self.peek() {
                Some(t) => format!("expected {wanted}, found `{}`", render(&t.tok)),
                None => format!("expected {wanted}, found end of input"),
            },
        )
    }

    fn program(&mut self) -> Result<ProgramDef, LangError> {
        self.expect_keyword("program")?;
        let (name, _) = self.expect_ident()?;

        let mut vars = Vec::new();
        let mut roles = Vec::new();
        // Any number of `var` and `role` blocks, in any order (template
        // expansion produces one `var` line per process, and role
        // annotations read most naturally next to the nodes they mark).
        loop {
            if self.eat_keyword("var") {
                loop {
                    vars.push(self.var_def()?);
                    if !self.eat_punct(";") {
                        break;
                    }
                    // Permit a trailing semicolon before `action` / `var` / EOF.
                    if !matches!(
                        self.peek(),
                        Some(Spanned {
                            tok: Tok::Ident(_),
                            ..
                        })
                    ) {
                        break;
                    }
                }
            } else if self.eat_keyword("role") {
                roles.push(self.role_def()?);
            } else {
                break;
            }
        }

        let mut actions = Vec::new();
        while self.eat_keyword("action") {
            actions.push(self.action_def()?);
        }
        Ok(ProgramDef {
            name,
            vars,
            roles,
            actions,
        })
    }

    /// `role byzantine : 3, 5` — the keyword is already consumed.
    fn role_def(&mut self) -> Result<RoleDef, LangError> {
        let (role, line) = self.expect_ident()?;
        self.expect_punct(":")?;
        let mut nodes = Vec::new();
        loop {
            let node = self.expect_int()?;
            if node < 0 {
                return Err(LangError::new(
                    self.line(),
                    format!("role `{role}` annotates a negative node index {node}"),
                ));
            }
            nodes.push(node as usize);
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(RoleDef { role, nodes, line })
    }

    fn var_def(&mut self) -> Result<VarDef, LangError> {
        let (name, line) = self.expect_ident()?;
        self.expect_punct(":")?;
        let domain = self.domain()?;
        Ok(VarDef { name, domain, line })
    }

    fn domain(&mut self) -> Result<DomainDef, LangError> {
        if self.eat_keyword("bool") {
            return Ok(DomainDef::Bool);
        }
        if self.eat_punct("{") {
            let mut labels = Vec::new();
            loop {
                let (label, _) = self.expect_ident()?;
                labels.push(label);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct("}")?;
            return Ok(DomainDef::Enum(labels));
        }
        let lo = self.expect_int()?;
        self.expect_punct("..")?;
        let hi = self.expect_int()?;
        Ok(DomainDef::Range(lo, hi))
    }

    fn action_def(&mut self) -> Result<ActionDef, LangError> {
        let (name, line) = self.expect_ident()?;
        let kind = if self.eat_punct("[") {
            let (k, kline) = self.expect_ident()?;
            let kind = match k.as_str() {
                "closure" => ActionKind::Closure,
                "convergence" => ActionKind::Convergence,
                "combined" => ActionKind::Combined,
                other => {
                    return Err(LangError::new(
                        kline,
                        format!("unknown action kind `{other}` (closure|convergence|combined)"),
                    ))
                }
            };
            self.expect_punct("]")?;
            kind
        } else {
            ActionKind::Closure
        };
        self.expect_punct(":")?;
        let guard = self.expr()?;
        self.expect_punct("->")?;
        let mut assigns = Vec::new();
        loop {
            let (target, _) = self.expect_ident()?;
            self.expect_punct(":=")?;
            let rhs = self.expr()?;
            assigns.push((target, rhs));
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(ActionDef {
            name,
            kind,
            guard,
            assigns,
            line,
        })
    }

    // Precedence climbing: || < && < comparisons < additive < multiplicative < unary.
    fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while self.eat_punct("||") {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_punct("&&") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add_expr()?;
        let op = if self.eat_punct("==") {
            BinOp::Eq
        } else if self.eat_punct("!=") {
            BinOp::Ne
        } else if self.eat_punct("<=") {
            BinOp::Le
        } else if self.eat_punct(">=") {
            BinOp::Ge
        } else if self.eat_punct("<") {
            BinOp::Lt
        } else if self.eat_punct(">") {
            BinOp::Gt
        } else {
            return Ok(lhs);
        };
        let rhs = self.add_expr()?;
        Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = if self.eat_punct("+") {
                BinOp::Add
            } else if self.eat_punct("-") {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = if self.eat_punct("*") {
                BinOp::Mul
            } else if self.eat_punct("/") {
                BinOp::Div
            } else if self.eat_punct("%") {
                BinOp::Mod
            } else {
                return Ok(lhs);
            };
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        if self.eat_punct("!") {
            return Ok(Expr::Not(Box::new(self.unary_expr()?)));
        }
        if self.eat_punct("-") {
            return Ok(Expr::Neg(Box::new(self.unary_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        match self.next() {
            Some(Spanned {
                tok: Tok::Int(v), ..
            }) => Ok(Expr::Int(v)),
            Some(Spanned {
                tok: Tok::Keyword("true"),
                ..
            }) => Ok(Expr::Bool(true)),
            Some(Spanned {
                tok: Tok::Keyword("false"),
                ..
            }) => Ok(Expr::Bool(false)),
            Some(Spanned {
                tok: Tok::Ident(name),
                ..
            }) => Ok(Expr::Ident(name)),
            Some(Spanned {
                tok: Tok::Punct("("),
                ..
            }) => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => Err(LangError::new(
                other.as_ref().map_or(self.last_line, |t| t.line),
                format!(
                    "expected an expression, found {}",
                    other.map_or("end of input".to_string(), |t| format!(
                        "`{}`",
                        render(&t.tok)
                    ))
                ),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let def = parse("program p var x : bool action a : x -> x := false").unwrap();
        assert_eq!(def.name, "p");
        assert_eq!(def.vars.len(), 1);
        assert_eq!(def.actions.len(), 1);
        assert_eq!(def.actions[0].kind, ActionKind::Closure);
    }

    #[test]
    fn parses_domains() {
        let def = parse("program p var a : bool; b : -2..5; c : {green, red}").unwrap();
        assert_eq!(def.vars[0].domain, DomainDef::Bool);
        assert_eq!(def.vars[1].domain, DomainDef::Range(-2, 5));
        assert_eq!(
            def.vars[2].domain,
            DomainDef::Enum(vec!["green".into(), "red".into()])
        );
    }

    #[test]
    fn parses_kinds_and_multi_assign() {
        let def = parse(
            "program p var x : 0..3; y : 0..3 \
             action a [convergence] : x == y -> x := y + 1, y := 0",
        )
        .unwrap();
        assert_eq!(def.actions[0].kind, ActionKind::Convergence);
        assert_eq!(def.actions[0].assigns.len(), 2);
    }

    #[test]
    fn precedence_is_sane() {
        let def =
            parse("program p var x : 0..9 action a : x + 1 * 2 == 3 && x < 2 || x > 5 -> x := 0")
                .unwrap();
        // ((x + (1*2)) == 3 && x < 2) || (x > 5)
        let Expr::Bin(BinOp::Or, lhs, _) = &def.actions[0].guard else {
            panic!("top level should be ||: {:?}", def.actions[0].guard);
        };
        let Expr::Bin(BinOp::And, eq, _) = lhs.as_ref() else {
            panic!("lhs should be &&");
        };
        let Expr::Bin(BinOp::Eq, add, _) = eq.as_ref() else {
            panic!("should be ==");
        };
        assert!(matches!(add.as_ref(), Expr::Bin(BinOp::Add, _, _)));
    }

    #[test]
    fn parenthesized_and_unary() {
        let def = parse("program p var x : -5..5 action a : !(x == -3) -> x := -(x)").unwrap();
        assert!(matches!(def.actions[0].guard, Expr::Not(_)));
        assert!(matches!(def.actions[0].assigns[0].1, Expr::Neg(_)));
    }

    #[test]
    fn error_reporting_has_lines() {
        let err = parse("program p\nvar x : bool\naction a : x ->").unwrap_err();
        assert_eq!(err.line, 3);
        let err = parse("program p var x : 0..").unwrap_err();
        assert!(err.message.contains("integer"));
    }

    #[test]
    fn parses_role_annotations() {
        let def = parse(
            "program p var x.0 : bool; x.1 : bool role byzantine : 1 \
             var y.2 : bool role observer : 0, 2 role byzantine : 0 \
             action a.0 : x.0 -> x.0 := false",
        )
        .unwrap();
        assert_eq!(def.roles.len(), 3);
        assert_eq!(def.roles[0].role, "byzantine");
        assert_eq!(def.roles[0].nodes, vec![1]);
        assert_eq!(def.nodes_with_role("byzantine"), vec![0, 1]);
        assert_eq!(def.nodes_with_role("observer"), vec![0, 2]);
        assert!(def.nodes_with_role("leader").is_empty());
    }

    #[test]
    fn rejects_negative_role_nodes() {
        let err = parse("program p var x.0 : bool role byzantine : -1").unwrap_err();
        assert!(err.message.contains("negative node index"));
    }

    #[test]
    fn rejects_unknown_kind() {
        let err = parse("program p var x : bool action a [magic] : x -> x := false").unwrap_err();
        assert!(err.message.contains("magic"));
    }

    #[test]
    fn rejects_trailing_tokens() {
        let err = parse("program p var x : bool ;;;").unwrap_err();
        assert!(err.message.contains("trailing") || err.message.contains("expected"));
    }
}
