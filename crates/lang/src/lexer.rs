//! The tokenizer.

use crate::LangError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier (may contain `.` segments: `c.0`).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// A keyword: `program`, `var`, `action`, `bool`, `true`, `false`.
    Keyword(&'static str),
    /// A punctuation/operator token, by its surface text.
    Punct(&'static str),
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

const KEYWORDS: [&str; 7] = ["program", "var", "role", "action", "bool", "true", "false"];

/// Multi-character operators first (longest match wins).
const PUNCTS: [&str; 20] = [
    ":=", "==", "!=", "<=", ">=", "&&", "||", "->", "..", "<", ">", "!", "+", "-", "*", "/", "%",
    ":", ",", ";",
];

const BRACKETS: [&str; 6] = ["(", ")", "{", "}", "[", "]"];

/// Tokenize `source`.
///
/// # Errors
///
/// [`LangError`] on unrecognized characters or malformed numbers.
pub fn lex(source: &str) -> Result<Vec<Spanned>, LangError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let bytes = source.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments: `#` or `//` to end of line.
        if c == '#' || (c == '/' && bytes.get(i + 1) == Some(&b'/')) {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            // Don't swallow the `..` of a range after a number.
            let text = &source[start..i];
            let value: i64 = text
                .parse()
                .map_err(|_| LangError::new(line, format!("number `{text}` out of range")))?;
            out.push(Spanned {
                tok: Tok::Int(value),
                line,
            });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' || ch == '.' {
                    i += 1;
                } else {
                    break;
                }
            }
            // An identifier must not end with '.' (that `.` belongs to a
            // following token, e.g. a stray range).
            let mut end = i;
            while end > start && bytes[end - 1] == b'.' {
                end -= 1;
            }
            i = end;
            let text = &source[start..end];
            if let Some(&kw) = KEYWORDS.iter().find(|&&k| k == text) {
                out.push(Spanned {
                    tok: Tok::Keyword(kw),
                    line,
                });
            } else {
                out.push(Spanned {
                    tok: Tok::Ident(text.to_string()),
                    line,
                });
            }
            continue;
        }
        // Brackets.
        if let Some(&b) = BRACKETS.iter().find(|&&b| b.as_bytes()[0] == bytes[i]) {
            out.push(Spanned {
                tok: Tok::Punct(b),
                line,
            });
            i += 1;
            continue;
        }
        // Operators, longest first.
        let rest = &source[i..];
        if let Some(&p) = PUNCTS.iter().find(|&&p| rest.starts_with(p)) {
            out.push(Spanned {
                tok: Tok::Punct(p),
                line,
            });
            i += p.len();
            continue;
        }
        return Err(LangError::new(
            line,
            format!("unrecognized character `{c}`"),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("program p var x : 0..3"),
            vec![
                Tok::Keyword("program"),
                Tok::Ident("p".into()),
                Tok::Keyword("var"),
                Tok::Ident("x".into()),
                Tok::Punct(":"),
                Tok::Int(0),
                Tok::Punct(".."),
                Tok::Int(3),
            ]
        );
    }

    #[test]
    fn dotted_identifiers() {
        assert_eq!(
            toks("c.0 sn.12"),
            vec![Tok::Ident("c.0".into()), Tok::Ident("sn.12".into())]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("x := y == z != w <= v"),
            vec![
                Tok::Ident("x".into()),
                Tok::Punct(":="),
                Tok::Ident("y".into()),
                Tok::Punct("=="),
                Tok::Ident("z".into()),
                Tok::Punct("!="),
                Tok::Ident("w".into()),
                Tok::Punct("<="),
                Tok::Ident("v".into()),
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let spanned = lex("x # comment\ny // another\nz").unwrap();
        assert_eq!(spanned.len(), 3);
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
        assert_eq!(spanned[2].line, 3);
    }

    #[test]
    fn arrow_and_logic() {
        assert_eq!(
            toks("a && b || !c -> d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("&&"),
                Tok::Ident("b".into()),
                Tok::Punct("||"),
                Tok::Punct("!"),
                Tok::Ident("c".into()),
                Tok::Punct("->"),
                Tok::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn number_then_range() {
        assert_eq!(
            toks("12..15"),
            vec![Tok::Int(12), Tok::Punct(".."), Tok::Int(15)]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("x @ y").is_err());
        assert_eq!(lex("x\n@").unwrap_err().line, 2);
    }

    #[test]
    fn keywords_true_false_bool() {
        assert_eq!(
            toks("true false bool"),
            vec![
                Tok::Keyword("true"),
                Tok::Keyword("false"),
                Tok::Keyword("bool")
            ]
        );
    }
}
