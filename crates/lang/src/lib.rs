//! A textual guarded-command language, compiled to
//! [`nonmask_program::Program`]s.
//!
//! The paper writes its programs in Dijkstra-style guarded-command
//! notation; this crate lets you do the same, instead of building actions
//! from Rust closures:
//!
//! ```
//! use nonmask_lang::compile;
//!
//! let program = compile(r#"
//!     program token_ring
//!     var x0 : 0..2; x1 : 0..2; x2 : 0..2
//!     action pass0 [combined] : x0 == x2 -> x0 := (x0 + 1) % 3
//!     action pass1 [combined] : x1 != x0 -> x1 := x0
//!     action pass2 [combined] : x2 != x1 -> x2 := x1
//! "#)?;
//! assert_eq!(program.name(), "token_ring");
//! assert_eq!(program.action_count(), 3);
//! # Ok::<(), nonmask_lang::LangError>(())
//! ```
//!
//! The compiled actions carry *inferred* read/write sets (the free
//! variables of guards and right-hand sides, and the assignment targets),
//! so the constraint-graph machinery works on parsed programs exactly as
//! on hand-built ones. Assignments in one action are simultaneous, as in
//! the paper (`c.j, sn.j := c.(P.j), sn.(P.j)`).
//!
//! # Grammar
//!
//! ```text
//! program  := "program" IDENT (var-block | role)* action*
//! var-block:= "var" decl (";" decl)*
//! decl     := IDENT ":" domain
//! domain   := "bool" | INT ".." INT | "{" IDENT ("," IDENT)* "}"
//! role     := "role" IDENT ":" INT ("," INT)*
//! action   := "action" IDENT [ "[" kind "]" ] ":" expr "->" assign ("," assign)*
//! kind     := "closure" | "convergence" | "combined"
//! assign   := IDENT ":=" expr
//! expr     := or-expr; usual precedence: ! > * / % > + - > comparisons > && > ||
//! ```
//!
//! A `role` line annotates node indices with a named role (e.g.
//! `role byzantine : 3, 5`). Roles carry no language semantics; drivers
//! read them off the parsed [`ProgramDef`] with
//! [`ProgramDef::nodes_with_role`] and configure the execution layers —
//! the simulator and socket runtime both accept the `byzantine` set as
//! their permanent-liar configuration. `compile_def_with_processes`
//! rejects annotations naming a node that owns no variable.
//!
//! Enumeration labels (`green`, `red`, …) become named constants usable in
//! expressions. Identifiers may contain `.` (so `c.0`, `sn.1` work
//! verbatim). Comments run from `#` or `//` to end of line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod expand;
pub mod lexer;
pub mod parser;
pub mod print;

pub use ast::{ActionDef, BinOp, DomainDef, Expr, ProgramDef, RoleDef, VarDef};
pub use compile::{compile_def, compile_def_with_processes, compile_predicate};
pub use expand::expand;
pub use parser::parse;
pub use print::{pretty, pretty_action, pretty_expr};

/// Errors from parsing or compiling a program text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// 1-based line where the error was detected.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl LangError {
    pub(crate) fn new(line: u32, message: impl Into<String>) -> Self {
        LangError {
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LangError {}

/// Parse and compile in one step.
///
/// # Errors
///
/// [`LangError`] with the offending line on syntax errors, unknown
/// identifiers, domain violations, or duplicate declarations.
pub fn compile(source: &str) -> Result<nonmask_program::Program, LangError> {
    compile_def(&parse(source)?)
}

/// Expand `for`-templates (see [`expand()`]), then parse and compile.
///
/// ```
/// let ring = nonmask_lang::compile_template(r#"
///     program ring
///     for j in 0..4: var x.$j : 0..3
///     action pass.0 [combined] : x.0 == x.3 -> x.0 := (x.0 + 1) % 4
///     for j in 1..4: action pass.$j [combined] : x.$j != x.${j-1} -> x.$j := x.${j-1}
/// "#)?;
/// assert_eq!(ring.action_count(), 4);
/// # Ok::<(), nonmask_lang::LangError>(())
/// ```
///
/// # Errors
///
/// As [`compile()`], plus template-expansion errors.
pub fn compile_template(source: &str) -> Result<nonmask_program::Program, LangError> {
    compile_def(&parse(&expand(source)?)?)
}
