//! Pretty-printing the AST back to surface syntax.

use nonmask_program::ActionKind;

use crate::ast::{ActionDef, DomainDef, Expr, ProgramDef};

/// Render a [`ProgramDef`] back to parseable surface syntax.
///
/// `parse(&pretty(&def))` yields a `ProgramDef` equal to `def` (the
/// printer fully parenthesizes expressions, so the round trip is exact up
/// to redundant parentheses, which the parser discards).
pub fn pretty(def: &ProgramDef) -> String {
    let mut out = format!("program {}\n", def.name);
    if !def.vars.is_empty() {
        out.push_str("var ");
        let decls: Vec<String> = def
            .vars
            .iter()
            .map(|v| format!("{} : {}", v.name, render_domain(&v.domain)))
            .collect();
        out.push_str(&decls.join(";\n    "));
        out.push('\n');
    }
    for r in &def.roles {
        let nodes: Vec<String> = r.nodes.iter().map(usize::to_string).collect();
        out.push_str(&format!("role {} : {}\n", r.role, nodes.join(", ")));
    }
    for a in &def.actions {
        out.push_str(&pretty_action(a));
        out.push('\n');
    }
    out
}

/// Render one [`ActionDef`] as its surface-syntax `action` line (no
/// trailing newline) — the per-action unit of [`pretty`], exposed so the
/// synthesizer can emit and diff individual candidate actions.
pub fn pretty_action(a: &ActionDef) -> String {
    let kind = match a.kind {
        ActionKind::Closure => "closure",
        ActionKind::Convergence => "convergence",
        ActionKind::Combined => "combined",
    };
    let assigns: Vec<String> = a
        .assigns
        .iter()
        .map(|(t, e)| format!("{t} := {}", pretty_expr(e)))
        .collect();
    format!(
        "action {} [{kind}] : {} -> {}",
        a.name,
        pretty_expr(&a.guard),
        assigns.join(", ")
    )
}

/// Render one [`Expr`] as fully parenthesized surface syntax.
pub fn pretty_expr(e: &Expr) -> String {
    render_expr(e)
}

fn render_domain(d: &DomainDef) -> String {
    match d {
        DomainDef::Bool => "bool".to_string(),
        DomainDef::Range(lo, hi) => format!("{lo}..{hi}"),
        DomainDef::Enum(labels) => format!("{{{}}}", labels.join(", ")),
    }
}

fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Bool(b) => b.to_string(),
        Expr::Ident(name) => name.clone(),
        Expr::Not(inner) => format!("!({})", render_expr(inner)),
        Expr::Neg(inner) => format!("-({})", render_expr(inner)),
        Expr::Bin(op, l, r) => {
            format!("({} {} {})", render_expr(l), op.symbol(), render_expr(r))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ProgramDef;
    use crate::parse;

    /// Zero out source lines so structural equality ignores layout.
    fn strip_lines(mut def: ProgramDef) -> ProgramDef {
        for v in &mut def.vars {
            v.line = 0;
        }
        for r in &mut def.roles {
            r.line = 0;
        }
        for a in &mut def.actions {
            a.line = 0;
        }
        def
    }

    #[test]
    fn roundtrip_is_exact() {
        let src = "program demo \
                   var x : 0..4; flag : bool; c : {green, red} \
                   action a [combined] : x < 4 && (!flag || c == green) -> x := x + 1, flag := true \
                   action b [convergence] : x % 2 == 0 -> c := red";
        let def = parse(src).unwrap();
        let printed = pretty(&def);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(
            strip_lines(def),
            strip_lines(reparsed),
            "printed form:\n{printed}"
        );
    }

    #[test]
    fn negative_bounds_roundtrip() {
        let def = parse("program n var x : -3..3 action a : x == -1 -> x := -(x)").unwrap();
        let reparsed = parse(&pretty(&def)).unwrap();
        assert_eq!(strip_lines(def), strip_lines(reparsed));
    }

    #[test]
    fn role_annotations_roundtrip() {
        let def = parse(
            "program p var x.0 : 0..3; x.1 : 0..3; x.2 : 0..3 \
             role byzantine : 1, 2 \
             action a.0 : x.0 == x.2 -> x.0 := x.2",
        )
        .unwrap();
        let printed = pretty(&def);
        assert!(printed.contains("role byzantine : 1, 2"));
        let reparsed = parse(&printed).unwrap();
        assert_eq!(strip_lines(def), strip_lines(reparsed));
    }

    #[test]
    fn printed_form_mentions_everything() {
        let def = parse("program p var x : bool action go : x -> x := false").unwrap();
        let text = pretty(&def);
        assert!(text.contains("program p"));
        assert!(text.contains("x : bool"));
        assert!(text.contains("action go [closure]"));
    }
}
