//! A line-level template preprocessor for parameterized programs.
//!
//! The paper writes programs with a process parameter (`process j: 1..N`);
//! the surface language is monomorphic, so this preprocessor expands
//! `for`-prefixed lines before parsing:
//!
//! ```text
//! for j in 1..4: action pass.$j [combined] : x.$j != x.${j-1} -> x.$j := x.${j-1}
//! ```
//!
//! expands to three `action` lines with `$j` / `${j±k}` substituted by the
//! loop value (the range is half-open, as in Rust). Substitutions:
//!
//! - `$j` — the loop variable's value,
//! - `${j+3}`, `${j-1}` — simple offset arithmetic,
//! - `${j%5}`, with an optional offset first: `${j+1%5}` means `(j+1) % 5`
//!   (useful for ring indices).

use crate::LangError;

/// Expand all `for`-prefixed lines of `source`.
///
/// # Errors
///
/// [`LangError`] on malformed `for` prefixes or substitution expressions.
pub fn expand(source: &str) -> Result<String, LangError> {
    let mut out = String::with_capacity(source.len());
    for (idx, line) in source.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("for ") {
            let (var, lo, hi, body) = parse_for_header(rest, line_no)?;
            for value in lo..hi {
                out.push_str(&substitute(body, &var, value, line_no)?);
                out.push('\n');
            }
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    Ok(out)
}

/// Parse `j in 1..4: body` returning `(var, lo, hi, body)`.
fn parse_for_header(rest: &str, line: u32) -> Result<(String, i64, i64, &str), LangError> {
    let Some((head, body)) = rest.split_once(':') else {
        return Err(LangError::new(line, "`for` line is missing `:`"));
    };
    let mut parts = head.split_whitespace();
    let var = parts
        .next()
        .ok_or_else(|| LangError::new(line, "`for` needs a loop variable"))?
        .to_string();
    match parts.next() {
        Some("in") => {}
        _ => return Err(LangError::new(line, "`for` expects `<var> in <lo>..<hi>:`")),
    }
    let range = parts
        .next()
        .ok_or_else(|| LangError::new(line, "`for` expects a range"))?;
    if parts.next().is_some() {
        return Err(LangError::new(
            line,
            "unexpected tokens after the `for` range",
        ));
    }
    let Some((lo, hi)) = range.split_once("..") else {
        return Err(LangError::new(
            line,
            "`for` range must be `<lo>..<hi>` (half-open)",
        ));
    };
    let lo: i64 = lo
        .parse()
        .map_err(|_| LangError::new(line, format!("bad range start `{lo}`")))?;
    let hi: i64 = hi
        .parse()
        .map_err(|_| LangError::new(line, format!("bad range end `{hi}`")))?;
    Ok((var, lo, hi, body.trim()))
}

/// Substitute `$var` and `${var op k ...}` occurrences in `body`.
fn substitute(body: &str, var: &str, value: i64, line: u32) -> Result<String, LangError> {
    let mut out = String::with_capacity(body.len());
    let bytes = body.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'$' {
            out.push(bytes[i] as char);
            i += 1;
            continue;
        }
        // `${expr}` form.
        if bytes.get(i + 1) == Some(&b'{') {
            let Some(close) = body[i + 2..].find('}') else {
                return Err(LangError::new(line, "unterminated `${…}`"));
            };
            let expr = &body[i + 2..i + 2 + close];
            out.push_str(&eval_template(expr, var, value, line)?.to_string());
            i += 2 + close + 1;
            continue;
        }
        // `$var` form.
        let rest = &body[i + 1..];
        if rest.starts_with(var)
            && !rest[var.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            out.push_str(&value.to_string());
            i += 1 + var.len();
            continue;
        }
        return Err(LangError::new(
            line,
            format!("`$` must be followed by `{var}` or `{{…}}`"),
        ));
    }
    Ok(out)
}

/// Evaluate `var`, `var+k`, `var-k`, optionally followed by `%m`.
fn eval_template(expr: &str, var: &str, value: i64, line: u32) -> Result<i64, LangError> {
    let expr = expr.trim();
    let (main, modulus) = match expr.split_once('%') {
        Some((m, md)) => {
            let md: i64 = md
                .trim()
                .parse()
                .map_err(|_| LangError::new(line, format!("bad modulus in `${{{expr}}}`")))?;
            (m.trim(), Some(md))
        }
        None => (expr, None),
    };
    let base = if let Some(rest) = main.strip_prefix(var) {
        let rest = rest.trim();
        if rest.is_empty() {
            value
        } else if let Some(k) = rest.strip_prefix('+') {
            value
                + k.trim()
                    .parse::<i64>()
                    .map_err(|_| LangError::new(line, format!("bad offset in `${{{expr}}}`")))?
        } else if let Some(k) = rest.strip_prefix('-') {
            value
                - k.trim()
                    .parse::<i64>()
                    .map_err(|_| LangError::new(line, format!("bad offset in `${{{expr}}}`")))?
        } else {
            return Err(LangError::new(line, format!("cannot parse `${{{expr}}}`")));
        }
    } else {
        return Err(LangError::new(
            line,
            format!("`${{{expr}}}` must start with the loop variable `{var}`"),
        ));
    };
    Ok(match modulus {
        Some(m) if m != 0 => base.rem_euclid(m),
        _ => base,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expands_simple_loop() {
        let out = expand("for j in 0..3: var x.$j : bool").unwrap();
        assert_eq!(out, "var x.0 : bool\nvar x.1 : bool\nvar x.2 : bool\n");
    }

    #[test]
    fn offset_and_modulus() {
        let out = expand("for j in 1..3: x.$j := x.${j-1} + x.${j+1%3}").unwrap();
        assert_eq!(out, "x.1 := x.0 + x.2\nx.2 := x.1 + x.0\n");
    }

    #[test]
    fn non_for_lines_pass_through() {
        let out = expand("program p\nfor j in 0..1: action a.$j : true -> x := 0").unwrap();
        assert!(out.starts_with("program p\n"));
        assert!(out.contains("action a.0"));
    }

    #[test]
    fn loop_var_boundary_is_respected() {
        // `$jx` must not substitute for var `j`.
        let err = expand("for j in 0..1: $jx").unwrap_err();
        assert!(err.message.contains('$'));
    }

    #[test]
    fn errors_carry_lines() {
        let err = expand("ok\nfor j in 0..2 action").unwrap_err();
        assert_eq!(err.line, 2);
        let err = expand("for j in 0..2: ${j").unwrap_err();
        assert!(err.message.contains("unterminated"));
        let err = expand("for j in 0..2: ${k+1}").unwrap_err();
        assert!(err.message.contains("loop variable"));
    }

    #[test]
    fn whole_ring_program_expands_and_compiles() {
        let src = "\
program ring
for j in 0..5: var x.$j : 0..4
action pass.0 [combined] : x.0 == x.4 -> x.0 := (x.0 + 1) % 5
for j in 1..5: action pass.$j [combined] : x.$j != x.${j-1} -> x.$j := x.${j-1}
";
        let expanded = expand(src).unwrap();
        let program = crate::compile(&expanded).unwrap();
        assert_eq!(program.var_count(), 5);
        assert_eq!(program.action_count(), 5);
    }
}
