//! Compilation of the AST to an executable [`Program`].

use std::collections::HashMap;
use std::sync::Arc;

use nonmask_program::{Domain, Predicate, ProcessId, Program, State, VarId};

use crate::ast::{BinOp, DomainDef, Expr, ProgramDef};
use crate::LangError;

/// A resolved, evaluable expression: identifiers are variable slots or
/// folded constants.
#[derive(Debug, Clone)]
enum CExpr {
    Const(i64),
    Var(VarId),
    Not(Box<CExpr>),
    Neg(Box<CExpr>),
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
}

fn truthy(v: i64) -> bool {
    v != 0
}

fn eval(e: &CExpr, s: &State) -> i64 {
    match e {
        CExpr::Const(v) => *v,
        CExpr::Var(id) => s.get(*id),
        CExpr::Not(inner) => (!truthy(eval(inner, s))) as i64,
        CExpr::Neg(inner) => -eval(inner, s),
        CExpr::Bin(op, l, r) => {
            let (a, b) = (eval(l, s), eval(r, s));
            match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                // Division and modulo are Euclidean (non-negative
                // remainder for positive divisors — what `mod K` counters
                // want); division by zero yields 0 rather than trapping,
                // since guards must be total functions of the state.
                BinOp::Div => {
                    if b == 0 {
                        0
                    } else {
                        a.div_euclid(b)
                    }
                }
                BinOp::Mod => {
                    if b == 0 {
                        0
                    } else {
                        a.rem_euclid(b)
                    }
                }
                BinOp::Eq => (a == b) as i64,
                BinOp::Ne => (a != b) as i64,
                BinOp::Lt => (a < b) as i64,
                BinOp::Le => (a <= b) as i64,
                BinOp::Gt => (a > b) as i64,
                BinOp::Ge => (a >= b) as i64,
                BinOp::And => (truthy(a) && truthy(b)) as i64,
                BinOp::Or => (truthy(a) || truthy(b)) as i64,
            }
        }
    }
}

struct Scope {
    vars: HashMap<String, VarId>,
    consts: HashMap<String, i64>,
}

impl Scope {
    fn resolve(&self, expr: &Expr, line: u32) -> Result<CExpr, LangError> {
        Ok(match expr {
            Expr::Int(v) => CExpr::Const(*v),
            Expr::Bool(b) => CExpr::Const(*b as i64),
            Expr::Ident(name) => {
                if let Some(&id) = self.vars.get(name) {
                    CExpr::Var(id)
                } else if let Some(&v) = self.consts.get(name) {
                    CExpr::Const(v)
                } else {
                    return Err(LangError::new(
                        line,
                        format!("unknown identifier `{name}` (not a variable or enum label)"),
                    ));
                }
            }
            Expr::Not(e) => CExpr::Not(Box::new(self.resolve(e, line)?)),
            Expr::Neg(e) => CExpr::Neg(Box::new(self.resolve(e, line)?)),
            Expr::Bin(op, l, r) => CExpr::Bin(
                *op,
                Box::new(self.resolve(l, line)?),
                Box::new(self.resolve(r, line)?),
            ),
        })
    }
}

fn collect_vars(e: &CExpr, out: &mut Vec<VarId>) {
    match e {
        CExpr::Const(_) => {}
        CExpr::Var(id) => out.push(*id),
        CExpr::Not(inner) | CExpr::Neg(inner) => collect_vars(inner, out),
        CExpr::Bin(_, l, r) => {
            collect_vars(l, out);
            collect_vars(r, out);
        }
    }
}

/// Compile a parsed [`ProgramDef`] into an executable [`Program`].
///
/// Typing is deliberately loose (the paper's notation mixes booleans and
/// small integers freely): booleans are `0`/`1`, any nonzero value is
/// true in boolean positions, and comparisons yield `0`/`1`.
///
/// # Errors
///
/// [`LangError`] on duplicate variables, conflicting enum labels, unknown
/// identifiers, or empty ranges.
pub fn compile_def(def: &ProgramDef) -> Result<Program, LangError> {
    compile_inner(def, false)
}

/// Compile like [`compile_def`], additionally tagging every variable with
/// an owning [`ProcessId`] inferred from its name's trailing `.N` segment
/// (`x.3` and `sn.3` are owned by process 3). The tags are what make the
/// compiled program *refinable* — runnable on the message-passing
/// simulator and the socket runtime, whose node mapping requires every
/// variable to carry an owner.
///
/// # Errors
///
/// [`LangError`] as for [`compile_def`], plus an error for any variable
/// whose name does not end in a `.N` segment.
pub fn compile_def_with_processes(def: &ProgramDef) -> Result<Program, LangError> {
    compile_inner(def, true)
}

fn infer_process(name: &str, line: u32) -> Result<ProcessId, LangError> {
    name.rsplit('.')
        .next()
        .and_then(|seg| seg.parse::<usize>().ok())
        .map(ProcessId)
        .ok_or_else(|| {
            LangError::new(
                line,
                format!("cannot infer owning process for `{name}` (expected a `.N` name suffix)"),
            )
        })
}

fn compile_inner(def: &ProgramDef, tag_processes: bool) -> Result<Program, LangError> {
    let mut b = Program::builder(def.name.clone());
    let mut scope = Scope {
        vars: HashMap::new(),
        consts: HashMap::new(),
    };

    for var in &def.vars {
        if scope.vars.contains_key(&var.name) {
            return Err(LangError::new(
                var.line,
                format!("variable `{}` declared twice", var.name),
            ));
        }
        let domain = match &var.domain {
            DomainDef::Bool => Domain::Bool,
            DomainDef::Range(lo, hi) => {
                if lo > hi {
                    return Err(LangError::new(
                        var.line,
                        format!("empty range {lo}..{hi} for `{}`", var.name),
                    ));
                }
                Domain::range(*lo, *hi)
            }
            DomainDef::Enum(labels) => {
                for (i, label) in labels.iter().enumerate() {
                    match scope.consts.get(label) {
                        Some(&v) if v != i as i64 => {
                            return Err(LangError::new(
                                var.line,
                                format!(
                                "enum label `{label}` already bound to {v}, cannot rebind to {i}"
                            ),
                            ))
                        }
                        _ => {
                            scope.consts.insert(label.clone(), i as i64);
                        }
                    }
                }
                Domain::enumeration(labels.iter().map(String::as_str))
            }
        };
        let id = if tag_processes {
            b.var_of(
                var.name.clone(),
                domain,
                infer_process(&var.name, var.line)?,
            )
        } else {
            b.var(var.name.clone(), domain)
        };
        scope.vars.insert(var.name.clone(), id);
    }

    for role in &def.roles {
        let mut seen = role.nodes.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != role.nodes.len() {
            return Err(LangError::new(
                role.line,
                format!("role `{}` annotates a node twice", role.role),
            ));
        }
        if tag_processes {
            // Every annotated node must own at least one variable —
            // otherwise the annotation names a process that does not
            // exist and the execution layers would silently ignore it.
            for &node in &role.nodes {
                let owns_var = def
                    .vars
                    .iter()
                    .any(|v| infer_process(&v.name, v.line) == Ok(ProcessId(node)));
                if !owns_var {
                    return Err(LangError::new(
                        role.line,
                        format!(
                            "role `{}` annotates node {node}, which owns no variable",
                            role.role
                        ),
                    ));
                }
            }
        }
    }

    for action in &def.actions {
        let guard = scope.resolve(&action.guard, action.line)?;
        let mut assigns: Vec<(VarId, CExpr)> = Vec::with_capacity(action.assigns.len());
        for (target, rhs) in &action.assigns {
            let Some(&tid) = scope.vars.get(target) else {
                return Err(LangError::new(
                    action.line,
                    format!("assignment target `{target}` is not a declared variable"),
                ));
            };
            assigns.push((tid, scope.resolve(rhs, action.line)?));
        }

        let mut reads = Vec::new();
        collect_vars(&guard, &mut reads);
        for (_, rhs) in &assigns {
            collect_vars(rhs, &mut reads);
        }
        let writes: Vec<VarId> = assigns.iter().map(|(t, _)| *t).collect();

        let guard = Arc::new(guard);
        let assigns = Arc::new(assigns);
        b.add_action(nonmask_program::Action::new(
            action.name.clone(),
            action.kind,
            reads,
            writes,
            {
                let guard = guard.clone();
                move |s: &State| truthy(eval(&guard, s))
            },
            move |s: &mut State| {
                // Simultaneous assignment: evaluate every RHS against the
                // pre-state, then write.
                let values: Vec<(VarId, i64)> =
                    assigns.iter().map(|(t, e)| (*t, eval(e, s))).collect();
                for (t, v) in values {
                    s.set(t, v);
                }
            },
        ));
    }

    b.try_build()
        .map_err(|e| LangError::new(1, format!("program construction failed: {e}")))
}

/// Compile a bare [`Expr`] into a [`Predicate`] over `program`'s
/// variables, with `def` supplying the enum-label constants (`green`,
/// `red`, …) exactly as [`compile_def`] binds them. The predicate's
/// variable set is the expression's free variables, so the constraint
/// graph's read-locality checks see the same footprint the evaluator
/// uses.
///
/// # Errors
///
/// [`LangError`] for identifiers that are neither a variable of `program`
/// nor an enum label of `def`.
pub fn compile_predicate(
    program: &Program,
    def: &ProgramDef,
    name: impl Into<String>,
    expr: &Expr,
) -> Result<Predicate, LangError> {
    let mut scope = Scope {
        vars: HashMap::new(),
        consts: HashMap::new(),
    };
    for var in &def.vars {
        if let DomainDef::Enum(labels) = &var.domain {
            for (i, label) in labels.iter().enumerate() {
                scope.consts.insert(label.clone(), i as i64);
            }
        }
    }
    for id in program.var_ids() {
        scope.vars.insert(program.var(id).name().to_string(), id);
    }
    let compiled = scope.resolve(expr, 1)?;
    let mut reads = Vec::new();
    collect_vars(&compiled, &mut reads);
    reads.sort_unstable();
    reads.dedup();
    Ok(Predicate::new(name, reads, move |s: &State| {
        truthy(eval(&compiled, s))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn compile(src: &str) -> Program {
        compile_def(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn compiles_and_executes() {
        let p = compile(
            "program inc var x : 0..3 \
             action up : x < 3 -> x := x + 1",
        );
        let mut s = p.min_state();
        let a = p.action_ids().next().unwrap();
        assert!(p.action(a).enabled(&s));
        p.action(a).apply(&mut s);
        assert_eq!(s.slots()[0], 1);
        // Inferred read/write sets.
        assert_eq!(p.action(a).reads().len(), 1);
        assert_eq!(p.action(a).writes().len(), 1);
    }

    #[test]
    fn simultaneous_assignment_is_simultaneous() {
        let p = compile(
            "program swap var x : 0..9; y : 0..9 \
             action sw : true -> x := y, y := x",
        );
        let mut s = p.state_from([3, 7]).unwrap();
        let a = p.action_ids().next().unwrap();
        p.action(a).apply(&mut s);
        assert_eq!(s.slots(), &[7, 3], "swap, not overwrite");
    }

    #[test]
    fn enum_labels_are_constants() {
        let p = compile(
            "program colors var c : {green, red} \
             action redden : c == green -> c := red",
        );
        let mut s = p.min_state();
        let a = p.action_ids().next().unwrap();
        assert!(p.action(a).enabled(&s));
        p.action(a).apply(&mut s);
        assert_eq!(s.slots()[0], 1, "red = 1");
        assert!(!p.action(a).enabled(&s));
    }

    #[test]
    fn shared_enum_labels_must_agree() {
        // Same labels at the same positions: fine.
        let _ = compile("program ok var a : {g, r}; b : {g, r}");
        // Conflicting position: error.
        let err =
            compile_def(&parse("program bad var a : {g, r}; b : {r, g}").unwrap()).unwrap_err();
        assert!(err.message.contains("already bound"));
    }

    #[test]
    fn euclidean_mod_and_div() {
        let p = compile(
            "program m var x : -4..4; y : 0..4 \
             action a : true -> y := x % 3 \
             action b : true -> y := x / 0",
        );
        let mut s = p.state_from([-4, 0]).unwrap();
        let ids: Vec<_> = p.action_ids().collect();
        p.action(ids[0]).apply(&mut s);
        assert_eq!(s.slots()[1], 2, "-4 mod 3 = 2 (Euclidean)");
        p.action(ids[1]).apply(&mut s);
        assert_eq!(s.slots()[1], 0, "division by zero yields 0");
    }

    #[test]
    fn unknown_identifier_rejected() {
        let err = compile_def(&parse("program p var x : bool action a : q -> x := true").unwrap())
            .unwrap_err();
        assert!(err.message.contains("unknown identifier `q`"));
    }

    #[test]
    fn unknown_target_rejected() {
        let err = compile_def(&parse("program p var x : bool action a : x -> q := true").unwrap())
            .unwrap_err();
        assert!(err.message.contains("target `q`"));
    }

    #[test]
    fn duplicate_variable_rejected() {
        let err = compile_def(&parse("program p var x : bool; x : bool").unwrap()).unwrap_err();
        assert!(err.message.contains("declared twice"));
    }

    #[test]
    fn empty_range_rejected() {
        let err = compile_def(&parse("program p var x : 5..2").unwrap()).unwrap_err();
        assert!(err.message.contains("empty range"));
    }

    #[test]
    fn process_tags_come_from_name_suffixes() {
        let def = parse(
            "program p var x.0 : 0..3; x.1 : 0..3; sn.1 : bool \
             action a : x.0 != x.1 -> x.1 := x.0",
        )
        .unwrap();
        let p = compile_def_with_processes(&def).unwrap();
        let pid = |name: &str| p.var(p.var_by_name(name).unwrap()).process();
        assert_eq!(pid("x.0"), Some(ProcessId(0)));
        assert_eq!(pid("x.1"), Some(ProcessId(1)));
        assert_eq!(pid("sn.1"), Some(ProcessId(1)));
        // The untagged compiler leaves ownership empty.
        let bare = compile_def(&def).unwrap();
        assert_eq!(bare.var(bare.var_by_name("x.0").unwrap()).process(), None);
    }

    #[test]
    fn process_inference_requires_numeric_suffix() {
        let def = parse("program p var token : bool").unwrap();
        let err = compile_def_with_processes(&def).unwrap_err();
        assert!(err.message.contains("cannot infer owning process"));
    }

    #[test]
    fn role_annotations_must_name_existing_processes() {
        let src = "program p var x.0 : bool; x.1 : bool role byzantine : 1 \
                   action a.0 : x.0 -> x.0 := false";
        let def = parse(src).unwrap();
        // Node 1 owns x.1, so the annotation compiles under both modes.
        compile_def(&def).unwrap();
        compile_def_with_processes(&def).unwrap();

        let bad = parse(
            "program p var x.0 : bool role byzantine : 3 \
             action a.0 : x.0 -> x.0 := false",
        )
        .unwrap();
        // The untagged compiler has no process map and lets it pass...
        compile_def(&bad).unwrap();
        // ...but the refinable compiler rejects a role on a ghost node.
        let err = compile_def_with_processes(&bad).unwrap_err();
        assert!(err.message.contains("owns no variable"), "{err}");
    }

    #[test]
    fn duplicate_role_nodes_are_rejected() {
        let def = parse("program p var x.0 : bool role byzantine : 0, 0").unwrap();
        let err = compile_def(&def).unwrap_err();
        assert!(err.message.contains("annotates a node twice"), "{err}");
    }

    #[test]
    fn predicates_compile_against_the_program() {
        let def = parse(
            "program p var x.0 : 0..3; c.1 : {green, red} \
             action a : x.0 < 3 -> x.0 := x.0 + 1",
        )
        .unwrap();
        let p = compile_def(&def).unwrap();
        let expr = parse("program q var x.0 : 0..3; c.1 : {green, red} action t : x.0 == 2 && c.1 == red -> x.0 := x.0")
            .unwrap()
            .actions[0]
            .guard
            .clone();
        let pred = compile_predicate(&p, &def, "probe", &expr).unwrap();
        assert_eq!(pred.name(), "probe");
        assert!(pred.holds(&p.state_from([2, 1]).unwrap()));
        assert!(!pred.holds(&p.state_from([2, 0]).unwrap()));
        assert!(!pred.holds(&p.state_from([1, 1]).unwrap()));
        // Free variables become the declared read set.
        assert_eq!(pred.reads().len(), 2);
        // Unknown identifiers are rejected.
        let bad = Expr::Ident("nope".into());
        assert!(compile_predicate(&p, &def, "bad", &bad).is_err());
    }

    #[test]
    fn boolean_operators_work() {
        let p = compile(
            "program b var x : bool; y : bool \
             action a : x && !y || false -> y := true",
        );
        let a = p.action_ids().next().unwrap();
        assert!(p.action(a).enabled(&p.state_from([1, 0]).unwrap()));
        assert!(!p.action(a).enabled(&p.state_from([1, 1]).unwrap()));
        assert!(!p.action(a).enabled(&p.state_from([0, 0]).unwrap()));
    }
}
