//! The abstract syntax tree.

/// A complete program definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramDef {
    /// Program name.
    pub name: String,
    /// Variable declarations, in order.
    pub vars: Vec<VarDef>,
    /// Per-node role annotations, in order.
    pub roles: Vec<RoleDef>,
    /// Action definitions, in order.
    pub actions: Vec<ActionDef>,
}

impl ProgramDef {
    /// All node indices annotated with `role`, sorted and deduplicated
    /// across every `role` block of that name.
    ///
    /// ```
    /// let def = nonmask_lang::parse(
    ///     "program p var x.0 : 0..3; x.1 : 0..3 role byzantine : 1",
    /// )?;
    /// assert_eq!(def.nodes_with_role("byzantine"), vec![1]);
    /// assert!(def.nodes_with_role("observer").is_empty());
    /// # Ok::<(), nonmask_lang::LangError>(())
    /// ```
    pub fn nodes_with_role(&self, role: &str) -> Vec<usize> {
        let mut nodes: Vec<usize> = self
            .roles
            .iter()
            .filter(|r| r.role == role)
            .flat_map(|r| r.nodes.iter().copied())
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// A role annotation: `role byzantine : 3, 5` marks nodes 3 and 5 as
/// playing the named role. The language itself attaches no semantics;
/// drivers read the annotation off the AST (via
/// [`ProgramDef::nodes_with_role`]) and configure the execution layer —
/// e.g. handing `byzantine` nodes to the simulator's or the net
/// runtime's lie injector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoleDef {
    /// The role name (an open vocabulary; `byzantine` is the one the
    /// stack currently acts on).
    pub role: String,
    /// The annotated node indices, in declaration order.
    pub nodes: Vec<usize>,
    /// Source line of the declaration.
    pub line: u32,
}

/// A declared variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDef {
    /// Variable name (may contain dots, e.g. `c.0`).
    pub name: String,
    /// Its domain.
    pub domain: DomainDef,
    /// Source line of the declaration.
    pub line: u32,
}

/// A domain in the surface syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainDef {
    /// `bool`.
    Bool,
    /// `lo .. hi` (inclusive).
    Range(i64, i64),
    /// `{label, label, …}`; labels become named constants.
    Enum(Vec<String>),
}

/// An action definition: `action name [kind] : guard -> assignments`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionDef {
    /// Action name.
    pub name: String,
    /// Declared kind (defaults to `closure`).
    pub kind: nonmask_program::ActionKind,
    /// The guard expression.
    pub guard: Expr,
    /// Simultaneous assignments `(target, rhs)`.
    pub assigns: Vec<(String, Expr)>,
    /// Source line of the definition.
    pub line: u32,
}

/// Binary operators, in the surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (Euclidean quotient)
    Div,
    /// `%` (mathematical modulo: result is non-negative for positive rhs)
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Render the operator's surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
    /// A variable reference or a named (enum-label) constant — resolved at
    /// compile time.
    Ident(String),
    /// Unary `!`.
    Not(Box<Expr>),
    /// Unary `-`.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Collect the identifiers referenced by this expression into `out`.
    pub fn idents<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Int(_) | Expr::Bool(_) => {}
            Expr::Ident(name) => out.push(name),
            Expr::Not(e) | Expr::Neg(e) => e.idents(out),
            Expr::Bin(_, l, r) => {
                l.idents(out);
                r.idents(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_are_collected() {
        let e = Expr::Bin(
            BinOp::And,
            Box::new(Expr::Bin(
                BinOp::Eq,
                Box::new(Expr::Ident("x".into())),
                Box::new(Expr::Int(1)),
            )),
            Box::new(Expr::Not(Box::new(Expr::Ident("y".into())))),
        );
        let mut ids = Vec::new();
        e.idents(&mut ids);
        assert_eq!(ids, vec!["x", "y"]);
    }

    #[test]
    fn symbols_roundtrip() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Mod,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::And,
            BinOp::Or,
        ] {
            assert!(!op.symbol().is_empty());
        }
    }
}
