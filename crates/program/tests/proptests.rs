//! Property-based tests of the guarded-command substrate.

use nonmask_program::scheduler::{Random, RoundRobin};
use nonmask_program::{
    ActionKind, Domain, Executor, Predicate, Program, RunConfig, State, StopReason,
    TransientCorruption, VarId,
};
use proptest::prelude::*;

/// A random bounded program over 2–3 small-range variables whose actions
/// move values around within their domains.
fn random_program() -> impl Strategy<Value = Program> {
    (
        2usize..=3,
        1i64..=3,
        proptest::collection::vec((any::<u8>(), any::<u8>(), 0usize..3), 1..4),
    )
        .prop_map(|(nvars, max, actions)| {
            let mut b = Program::builder("prop");
            let vars: Vec<VarId> = (0..nvars)
                .map(|i| b.var(format!("v{i}"), Domain::range(0, max)))
                .collect();
            for (i, (gmask, vtab, target)) in actions.into_iter().enumerate() {
                let target = vars[target % nvars];
                let vars_c = vars.clone();
                let key = move |s: &State| -> usize {
                    vars_c
                        .iter()
                        .enumerate()
                        .fold(0usize, |acc, (k, &v)| acc + (s.get(v) as usize) * (k + 1))
                        % 8
                };
                let key2 = key.clone();
                b.add_action(nonmask_program::Action::new(
                    format!("a{i}"),
                    ActionKind::Closure,
                    vars.clone(),
                    [target],
                    move |s| gmask & (1 << key(s)) != 0,
                    move |s| {
                        let value = (vtab as i64 >> (key2(s) % 4)) & 0x3;
                        s.set(target, value.min(max));
                    },
                ));
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine bookkeeping invariants hold on arbitrary programs: action
    /// counts sum to steps, watch hits never exceed steps, traces align
    /// with steps, and domains are never violated.
    #[test]
    fn engine_bookkeeping(program in random_program(), seed in any::<u64>()) {
        let watch = Predicate::always_true();
        let report = Executor::new(&program).run(
            program.min_state(),
            &mut Random::seeded(seed),
            &RunConfig::default()
                .max_steps(200)
                .watch(&watch)
                .record_trace(true)
                .validate_domains(true),
        );
        let counted: u64 = report.action_counts.iter().sum();
        prop_assert_eq!(counted, report.steps);
        let kinds = report.kind_counts;
        prop_assert_eq!(kinds.closure + kinds.convergence + kinds.combined, report.steps);
        prop_assert_eq!(report.watch_hits[0], report.steps, "true holds after every step");
        let trace = report.trace.as_ref().unwrap();
        prop_assert_eq!(trace.len() as u64, report.steps, "no faults: one entry per step");
        prop_assert!(matches!(
            report.stop,
            StopReason::MaxSteps | StopReason::Deadlock
        ));
        program.validate_state(&report.final_state).unwrap();
    }

    /// With fault injection, every state along the trace remains within
    /// domains (faults sample from domains) and fault accounting is
    /// consistent.
    #[test]
    fn fault_accounting(program in random_program(), seed in any::<u64>(), rate in 0.0f64..=1.0) {
        let mut faults = TransientCorruption::new(rate, seed);
        let report = Executor::new(&program).run_with_faults(
            program.min_state(),
            &mut RoundRobin::new(),
            &mut faults,
            &RunConfig::default().max_steps(100).record_trace(true),
        );
        let trace = report.trace.as_ref().unwrap();
        let fault_entries: u64 = trace
            .steps()
            .iter()
            .filter(|s| s.action.is_none())
            .map(|s| s.faults as u64)
            .sum();
        prop_assert_eq!(fault_entries, report.fault_events);
        for st in trace.states() {
            program.validate_state(st).unwrap();
        }
    }

    /// Deterministic replay: the same seed gives identical runs.
    #[test]
    fn runs_replay_deterministically(program in random_program(), seed in any::<u64>()) {
        let run = || {
            Executor::new(&program).run(
                program.min_state(),
                &mut Random::seeded(seed),
                &RunConfig::default().max_steps(150),
            )
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.final_state, b.final_state);
        prop_assert_eq!(a.action_counts, b.action_counts);
    }

    /// Enumeration counts the exact product of domain sizes, with no
    /// duplicates, for random domain shapes.
    #[test]
    fn enumeration_is_a_bijection(
        sizes in proptest::collection::vec(1i64..=4, 1..4)
    ) {
        let mut b = Program::builder("enum");
        for (i, &m) in sizes.iter().enumerate() {
            b.var(format!("v{i}"), Domain::range(0, m - 1));
        }
        let p = b.build();
        let expected: u128 = sizes.iter().map(|&m| m as u128).product();
        prop_assert_eq!(p.state_space_size(), Some(expected));
        let states: Vec<State> = p.enumerate_states().unwrap().collect();
        prop_assert_eq!(states.len() as u128, expected);
        let set: std::collections::HashSet<_> = states.iter().collect();
        prop_assert_eq!(set.len() as u128, expected, "no duplicates");
    }

    /// The scheduler only ever executes enabled actions (validated through
    /// the write-set checker staying quiet and guards re-checked on a
    /// replayed trace).
    #[test]
    fn schedulers_respect_guards(program in random_program(), seed in any::<u64>()) {
        let report = Executor::new(&program).run(
            program.min_state(),
            &mut Random::seeded(seed),
            &RunConfig::default().max_steps(100).record_trace(true),
        );
        // Replay: walk the trace and confirm each recorded action was
        // enabled in the preceding state.
        let trace = report.trace.as_ref().unwrap();
        let mut current = trace.initial().unwrap().clone();
        for step in trace.steps() {
            let action = step.action.expect("no faults in this run");
            prop_assert!(program.action(action).enabled(&current));
            program.action(action).apply(&mut current);
            prop_assert_eq!(&current, &step.state);
        }
    }
}
