//! Schedulers ("daemons").
//!
//! A computation of a program is a fair, maximal interleaving of enabled
//! actions (Section 2 of the paper). A [`Scheduler`] decides, at every step,
//! which enabled action executes. The paper's fairness requirement ("each
//! action that is continuously enabled is eventually executed") is satisfied
//! by [`RoundRobin`]; [`Random`] is fair with probability 1; [`Adversarial`]
//! deliberately ignores fairness — Section 8 remarks that the derived
//! programs converge even then, which experiment E8 verifies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::action::ActionId;
use crate::state::State;

/// A daemon selecting which enabled action executes next.
///
/// `enabled` is never empty when `select` is called; returning `None` makes
/// the engine stop the run (useful for schedulers with scripted endings).
pub trait Scheduler {
    /// Choose one of `enabled` to execute at `state` in step `step`.
    fn select(&mut self, enabled: &[ActionId], state: &State, step: u64) -> Option<ActionId>;

    /// A short human-readable name, used in reports.
    fn name(&self) -> &str {
        "scheduler"
    }
}

/// Weakly fair round-robin daemon: cycles through action ids, executing the
/// next enabled one at or after the cursor.
///
/// Every continuously enabled action is executed within one full rotation,
/// so round-robin computations are fair in the paper's sense.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    cursor: u32,
}

impl RoundRobin {
    /// Create a round-robin daemon starting at action 0.
    pub fn new() -> Self {
        RoundRobin { cursor: 0 }
    }
}

impl Scheduler for RoundRobin {
    fn select(&mut self, enabled: &[ActionId], _state: &State, _step: u64) -> Option<ActionId> {
        // Pick the enabled action with the smallest id >= cursor, wrapping.
        let chosen = enabled
            .iter()
            .copied()
            .filter(|a| a.0 >= self.cursor)
            .min_by_key(|a| a.0)
            .or_else(|| enabled.iter().copied().min_by_key(|a| a.0))?;
        self.cursor = chosen.0 + 1;
        Some(chosen)
    }

    fn name(&self) -> &str {
        "round-robin"
    }
}

/// Uniformly random daemon with a seeded RNG (fair with probability 1).
#[derive(Debug, Clone)]
pub struct Random {
    rng: StdRng,
}

impl Random {
    /// Create a random daemon from a seed.
    pub fn seeded(seed: u64) -> Self {
        Random {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for Random {
    fn select(&mut self, enabled: &[ActionId], _state: &State, _step: u64) -> Option<ActionId> {
        if enabled.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..enabled.len());
        Some(enabled[i])
    }

    fn name(&self) -> &str {
        "random"
    }
}

/// Unfair adversarial daemon: always executes the enabled action with the
/// *highest priority* per a caller-supplied ranking (lower rank = preferred).
///
/// With a ranking that prefers "unhelpful" actions this exercises worst-case
/// schedules; the default ranking (declaration order) starves
/// later-declared actions for as long as earlier ones stay enabled, which
/// already violates fairness.
#[derive(Debug, Clone)]
pub struct Adversarial {
    priority: Vec<u32>,
}

impl Adversarial {
    /// Prefer actions in declaration order (earliest id always wins).
    pub fn by_declaration_order() -> Self {
        Adversarial {
            priority: Vec::new(),
        }
    }

    /// Prefer actions in the order given; unlisted actions come last in
    /// declaration order.
    pub fn with_priority(order: impl IntoIterator<Item = ActionId>) -> Self {
        let order: Vec<ActionId> = order.into_iter().collect();
        let max = order.iter().map(|a| a.0).max().map_or(0, |m| m + 1);
        let mut priority = vec![u32::MAX; max as usize];
        for (rank, a) in order.iter().enumerate() {
            priority[a.0 as usize] = rank as u32;
        }
        Adversarial { priority }
    }

    fn rank(&self, a: ActionId) -> (u32, u32) {
        let explicit = self.priority.get(a.0 as usize).copied().unwrap_or(u32::MAX);
        (explicit, a.0)
    }
}

impl Scheduler for Adversarial {
    fn select(&mut self, enabled: &[ActionId], _state: &State, _step: u64) -> Option<ActionId> {
        enabled.iter().copied().min_by_key(|a| self.rank(*a))
    }

    fn name(&self) -> &str {
        "adversarial"
    }
}

/// Replays a fixed sequence of action ids, skipping entries that are not
/// enabled; stops when the script is exhausted.
///
/// Useful in tests to force a program down a specific computation.
#[derive(Debug, Clone)]
pub struct Fixed {
    script: std::collections::VecDeque<ActionId>,
    /// Whether a scripted action that is not enabled should be skipped
    /// (`true`) or should end the run (`false`).
    skip_disabled: bool,
}

impl Fixed {
    /// A script whose disabled entries are skipped.
    pub fn skipping(script: impl IntoIterator<Item = ActionId>) -> Self {
        Fixed {
            script: script.into_iter().collect(),
            skip_disabled: true,
        }
    }

    /// A script that ends the run at the first disabled entry.
    pub fn strict(script: impl IntoIterator<Item = ActionId>) -> Self {
        Fixed {
            script: script.into_iter().collect(),
            skip_disabled: false,
        }
    }
}

impl Scheduler for Fixed {
    fn select(&mut self, enabled: &[ActionId], _state: &State, _step: u64) -> Option<ActionId> {
        while let Some(next) = self.script.pop_front() {
            if enabled.contains(&next) {
                return Some(next);
            }
            if !self.skip_disabled {
                return None;
            }
        }
        None
    }

    fn name(&self) -> &str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> ActionId {
        ActionId(i)
    }

    fn st() -> State {
        State::zeroed(0)
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = RoundRobin::new();
        let enabled = [a(0), a(1), a(2)];
        assert_eq!(s.select(&enabled, &st(), 0), Some(a(0)));
        assert_eq!(s.select(&enabled, &st(), 1), Some(a(1)));
        assert_eq!(s.select(&enabled, &st(), 2), Some(a(2)));
        assert_eq!(s.select(&enabled, &st(), 3), Some(a(0)));
    }

    #[test]
    fn round_robin_skips_disabled() {
        let mut s = RoundRobin::new();
        assert_eq!(s.select(&[a(1), a(3)], &st(), 0), Some(a(1)));
        assert_eq!(s.select(&[a(0), a(3)], &st(), 1), Some(a(3)));
        assert_eq!(s.select(&[a(0)], &st(), 2), Some(a(0)));
    }

    #[test]
    fn round_robin_is_fair() {
        // Every action enabled forever is selected within one rotation.
        let mut s = RoundRobin::new();
        let enabled = [a(0), a(1), a(2), a(3)];
        let mut seen = std::collections::HashSet::new();
        for step in 0..4 {
            seen.insert(s.select(&enabled, &st(), step).unwrap());
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let enabled = [a(0), a(1), a(2)];
        let run = |seed| {
            let mut s = Random::seeded(seed);
            (0..20)
                .map(|i| s.select(&enabled, &st(), i).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(
            run(5),
            run(6),
            "different seeds should (almost surely) differ"
        );
    }

    #[test]
    fn adversarial_prefers_priority() {
        let mut s = Adversarial::with_priority([a(2), a(0)]);
        assert_eq!(s.select(&[a(0), a(1), a(2)], &st(), 0), Some(a(2)));
        assert_eq!(s.select(&[a(0), a(1)], &st(), 1), Some(a(0)));
        assert_eq!(s.select(&[a(1)], &st(), 2), Some(a(1)));
    }

    #[test]
    fn adversarial_default_is_declaration_order() {
        let mut s = Adversarial::by_declaration_order();
        assert_eq!(s.select(&[a(2), a(1)], &st(), 0), Some(a(1)));
    }

    #[test]
    fn fixed_skipping_and_strict() {
        let mut s = Fixed::skipping([a(1), a(0)]);
        assert_eq!(s.select(&[a(0)], &st(), 0), Some(a(0)), "a1 skipped");
        assert_eq!(s.select(&[a(0)], &st(), 1), None, "script exhausted");

        let mut s = Fixed::strict([a(1), a(0)]);
        assert_eq!(
            s.select(&[a(0)], &st(), 0),
            None,
            "strict stops at disabled a1"
        );
    }

    #[test]
    fn names() {
        assert_eq!(RoundRobin::new().name(), "round-robin");
        assert_eq!(Random::seeded(0).name(), "random");
        assert_eq!(Adversarial::by_declaration_order().name(), "adversarial");
        assert_eq!(Fixed::skipping([]).name(), "fixed");
    }
}
