//! Step capture for differential conformance checking.
//!
//! Execution layers (the in-process simulator, the socket runtime) record
//! every action they execute into a [`StepLog`]: which site fired which
//! action, and the full before/after state *as the site saw it* (its own
//! variables plus its cached copies of remote variables). The conformance
//! harness (`crates/conform`) replays each record through the checker's
//! transition relation — an action applied to a site's view is a program
//! transition of that view, so each record is independently checkable.
//!
//! The log is a cloneable handle over a shared vector: an execution layer
//! keeps one clone per site/thread, the harness keeps another and drains it
//! after the run. Records carry a global sequence number assigned under the
//! shared lock, so a multi-threaded run still yields one total order.

use std::sync::{Arc, Mutex};

use crate::action::ActionId;
use crate::state::State;

/// One executed action, as observed at the executing site.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// Global sequence number: position in the shared log, assigned under
    /// the log lock. For multi-threaded runs this is the order in which
    /// sites committed their steps.
    pub seq: u64,
    /// The executing site (process index in the simulator, node index in
    /// the net runtime).
    pub site: usize,
    /// Layer-local time: the simulator round or the node-local tick in
    /// which the step executed.
    pub tick: u64,
    /// The action that fired.
    pub action: ActionId,
    /// The site's view immediately before applying the action.
    pub before: State,
    /// The site's view immediately after applying the action.
    pub after: State,
}

/// A shared, cloneable log of executed steps.
///
/// Cloning is cheap (an `Arc` bump); all clones append to the same vector.
/// Recording clones two full states per step, so layers only offer it as an
/// opt-in hook (`None` by default) and skip the clones entirely when no log
/// is attached.
#[derive(Debug, Clone, Default)]
pub struct StepLog {
    inner: Arc<Mutex<Vec<StepRecord>>>,
}

impl StepLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one step. The record's `seq` field is overwritten with the
    /// log position, so callers can pass `seq: 0`.
    pub fn record(&self, mut record: StepRecord) {
        let mut log = self.inner.lock().expect("step log poisoned");
        record.seq = log.len() as u64;
        log.push(record);
    }

    /// Convenience: build and append a record in one call.
    pub fn push(&self, site: usize, tick: u64, action: ActionId, before: State, after: State) {
        self.record(StepRecord {
            seq: 0,
            site,
            tick,
            action,
            before,
            after,
        });
    }

    /// Number of steps recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("step log poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out everything recorded so far, in sequence order.
    pub fn snapshot(&self) -> Vec<StepRecord> {
        self.inner.lock().expect("step log poisoned").clone()
    }

    /// Drain the log, returning everything recorded so far and leaving the
    /// log empty (subsequent records restart at `seq` 0).
    pub fn take(&self) -> Vec<StepRecord> {
        std::mem::take(&mut *self.inner.lock().expect("step log poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_get_sequential_seq_numbers() {
        let log = StepLog::new();
        let clone = log.clone();
        let s = State::zeroed(1);
        clone.push(0, 0, ActionId(0), s.clone(), s.clone());
        log.push(1, 3, ActionId(1), s.clone(), s.clone());
        let steps = log.snapshot();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].seq, 0);
        assert_eq!(steps[1].seq, 1);
        assert_eq!(steps[1].site, 1);
        assert_eq!(steps[1].tick, 3);
    }

    #[test]
    fn take_drains_and_resets() {
        let log = StepLog::new();
        let s = State::zeroed(1);
        log.push(0, 0, ActionId(0), s.clone(), s.clone());
        assert_eq!(log.take().len(), 1);
        assert!(log.is_empty());
        log.push(0, 1, ActionId(0), s.clone(), s);
        assert_eq!(log.snapshot()[0].seq, 0, "seq restarts after take");
    }
}
