//! The execution engine.
//!
//! An [`Executor`] drives a program from an initial state under a
//! [`Scheduler`], optionally perturbed by a [`FaultInjector`], producing a
//! [`RunReport`] with stabilization metrics and (optionally) a full
//! [`Trace`]. This realizes the paper's computations: fair, maximal
//! sequences of steps in which enabled actions execute (Section 2), with
//! faults interleaved as state-changing actions (Section 3).

use crate::action::{ActionId, ActionKind};
use crate::fault::{FaultInjector, NoFaults};
use crate::predicate::Predicate;
use crate::program::Program;
use crate::scheduler::Scheduler;
use crate::state::State;
use crate::trace::{Trace, TraceStep};
use crate::VarId;

/// Why a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// The stop predicate held for the configured number of consecutive
    /// steps.
    Stabilized,
    /// No action was enabled (the computation is finite and maximal).
    Deadlock,
    /// The scheduler declined to pick an action (e.g. a script ran out).
    SchedulerStopped,
    /// The configured step budget was exhausted.
    MaxSteps,
    /// An action wrote a variable outside its declared write set
    /// (construction bug; reported, not panicked, so tests can assert it).
    WriteViolation {
        /// The offending action.
        action: ActionId,
        /// The variables written but not declared.
        undeclared: Vec<VarId>,
    },
    /// An action produced a value outside a variable's domain.
    DomainViolation {
        /// The offending action.
        action: ActionId,
        /// The variable left out of domain.
        var: VarId,
    },
}

impl StopReason {
    /// Whether the run ended because the stop predicate stabilized.
    pub fn is_stabilized(&self) -> bool {
        matches!(self, StopReason::Stabilized)
    }
}

/// Configuration of a run.
///
/// ```
/// use nonmask_program::{RunConfig, Predicate};
/// let s = Predicate::always_true();
/// let cfg = RunConfig::default()
///     .max_steps(50_000)
///     .stop_when(&s, 10)
///     .record_trace(true);
/// # let _ = cfg;
/// ```
#[derive(Clone)]
pub struct RunConfig {
    max_steps: u64,
    stop: Option<(Predicate, u32)>,
    watch: Vec<Predicate>,
    validate_writes: bool,
    validate_domains: bool,
    record_trace: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_steps: 100_000,
            stop: None,
            watch: Vec::new(),
            validate_writes: false,
            validate_domains: false,
            record_trace: false,
        }
    }
}

impl RunConfig {
    /// Maximum number of program steps before the run is cut off.
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Stop once `pred` has held after `consecutive` successive steps
    /// (detects stabilization; `consecutive = 1` stops at first
    /// satisfaction).
    ///
    /// # Panics
    ///
    /// Panics if `consecutive == 0`.
    pub fn stop_when(mut self, pred: &Predicate, consecutive: u32) -> Self {
        assert!(consecutive > 0, "consecutive must be at least 1");
        self.stop = Some((pred.clone(), consecutive));
        self
    }

    /// Count, across the run, after how many steps `pred` held (used for
    /// availability measurements: hits / steps).
    pub fn watch(mut self, pred: &Predicate) -> Self {
        self.watch.push(pred.clone());
        self
    }

    /// Assert after each step that the executed action only wrote its
    /// declared write set (stops with [`StopReason::WriteViolation`]).
    pub fn validate_writes(mut self, on: bool) -> Self {
        self.validate_writes = on;
        self
    }

    /// Validate after each step that all variables remain within their
    /// domains (stops with [`StopReason::DomainViolation`]).
    pub fn validate_domains(mut self, on: bool) -> Self {
        self.validate_domains = on;
        self
    }

    /// Record the full state sequence into [`RunReport::trace`].
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }
}

/// The outcome of a run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Number of program steps executed.
    pub steps: u64,
    /// Why the run ended.
    pub stop: StopReason,
    /// The final state.
    pub final_state: State,
    /// If the run stabilized, the step after which the stop predicate began
    /// to hold continuously through the end of the run.
    pub stabilized_at: Option<u64>,
    /// Per-action execution counts (indexed by action id).
    pub action_counts: Vec<u64>,
    /// Executions of closure, convergence and combined actions respectively.
    pub kind_counts: KindCounts,
    /// Total number of fault events injected.
    pub fault_events: u64,
    /// For each watched predicate: after how many steps it held.
    pub watch_hits: Vec<u64>,
    /// The recorded trace, if requested.
    pub trace: Option<Trace>,
}

/// Executions broken down by [`ActionKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounts {
    /// Executions of closure actions.
    pub closure: u64,
    /// Executions of convergence actions.
    pub convergence: u64,
    /// Executions of combined actions.
    pub combined: u64,
}

impl RunReport {
    /// How many times `action` executed.
    pub fn count_of(&self, action: ActionId) -> u64 {
        self.action_counts[action.index()]
    }

    /// Fraction of steps after which watched predicate `i` held
    /// (`None` when no step ran).
    pub fn availability(&self, i: usize) -> Option<f64> {
        if self.steps == 0 {
            None
        } else {
            Some(self.watch_hits[i] as f64 / self.steps as f64)
        }
    }
}

/// Drives runs of a program.
#[derive(Debug, Clone, Copy)]
pub struct Executor<'p> {
    program: &'p Program,
}

impl<'p> Executor<'p> {
    /// Create an executor for `program`.
    pub fn new(program: &'p Program) -> Self {
        Executor { program }
    }

    /// Run without faults.
    pub fn run(
        &self,
        initial: State,
        scheduler: &mut dyn Scheduler,
        config: &RunConfig,
    ) -> RunReport {
        self.run_with_faults(initial, scheduler, &mut NoFaults, config)
    }

    /// Run with a fault injector interleaved before every step.
    pub fn run_with_faults(
        &self,
        initial: State,
        scheduler: &mut dyn Scheduler,
        faults: &mut dyn FaultInjector,
        config: &RunConfig,
    ) -> RunReport {
        let p = self.program;
        let mut state = initial;
        let mut trace = config.record_trace.then(Trace::new);
        if let Some(t) = &mut trace {
            t.set_initial(state.clone());
        }

        let mut action_counts = vec![0u64; p.action_count()];
        let mut kind_counts = KindCounts::default();
        let mut fault_events = 0u64;
        let mut watch_hits = vec![0u64; config.watch.len()];
        let mut hold: u32 = 0;
        let mut hold_start: u64 = 0;
        let mut steps = 0u64;

        let stop_reason = loop {
            if steps >= config.max_steps {
                break StopReason::MaxSteps;
            }

            // Fault actions fire before the program step.
            let injected = faults.inject(steps, &mut state, p);
            let n_injected = injected.len() as u64;
            fault_events += n_injected;
            if n_injected > 0 {
                // Faults can re-violate the stop predicate.
                if let Some((pred, _)) = &config.stop {
                    if !pred.holds(&state) {
                        hold = 0;
                    }
                }
                if let Some(t) = &mut trace {
                    t.push(TraceStep {
                        step: steps,
                        action: None,
                        faults: n_injected as u32,
                        state: state.clone(),
                    });
                }
            }

            let enabled = p.enabled_actions(&state);
            if enabled.is_empty() {
                break StopReason::Deadlock;
            }
            let Some(chosen) = scheduler.select(&enabled, &state, steps) else {
                break StopReason::SchedulerStopped;
            };

            let before = config.validate_writes.then(|| state.clone());
            p.action(chosen).apply(&mut state);
            steps += 1;

            action_counts[chosen.index()] += 1;
            match p.action(chosen).kind() {
                ActionKind::Closure => kind_counts.closure += 1,
                ActionKind::Convergence => kind_counts.convergence += 1,
                ActionKind::Combined => kind_counts.combined += 1,
            }

            if let Some(before) = before {
                let changed = before.diff(&state);
                let declared = p.action(chosen).writes();
                let undeclared: Vec<VarId> = changed
                    .into_iter()
                    .filter(|v| !declared.contains(v))
                    .collect();
                if !undeclared.is_empty() {
                    break StopReason::WriteViolation {
                        action: chosen,
                        undeclared,
                    };
                }
            }
            if config.validate_domains {
                if let Err(crate::ProgramError::OutOfDomain(e)) = p.validate_state(&state) {
                    let var = p
                        .var_by_name(&e.var)
                        .expect("validate_state names a declared variable");
                    break StopReason::DomainViolation {
                        action: chosen,
                        var,
                    };
                }
            }

            if let Some(t) = &mut trace {
                t.push(TraceStep {
                    step: steps - 1,
                    action: Some(chosen),
                    faults: 0,
                    state: state.clone(),
                });
            }

            for (i, w) in config.watch.iter().enumerate() {
                if w.holds(&state) {
                    watch_hits[i] += 1;
                }
            }

            if let Some((pred, needed)) = &config.stop {
                if pred.holds(&state) {
                    if hold == 0 {
                        hold_start = steps - 1;
                    }
                    hold += 1;
                    if hold >= *needed {
                        break StopReason::Stabilized;
                    }
                } else {
                    hold = 0;
                }
            }
        };

        let stabilized_at = matches!(stop_reason, StopReason::Stabilized).then_some(hold_start);
        RunReport {
            steps,
            stop: stop_reason,
            final_state: state,
            stabilized_at,
            action_counts,
            kind_counts,
            fault_events,
            watch_hits,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ScheduledCorruption;
    use crate::scheduler::{Fixed, Random, RoundRobin};
    use crate::{Domain, Predicate};

    /// x counts down to 0; y mirrors whether x is even.
    fn countdown() -> (Program, crate::VarId) {
        let mut b = Program::builder("countdown");
        let x = b.var("x", Domain::range(0, 10));
        b.closure_action(
            "dec",
            [x],
            [x],
            move |s| s.get(x) > 0,
            move |s| {
                let v = s.get(x);
                s.set(x, v - 1);
            },
        );
        (b.build(), x)
    }

    #[test]
    fn run_to_deadlock() {
        let (p, x) = countdown();
        let report = Executor::new(&p).run(
            p.state_from([5]).unwrap(),
            &mut RoundRobin::new(),
            &RunConfig::default(),
        );
        assert_eq!(report.stop, StopReason::Deadlock);
        assert_eq!(report.steps, 5);
        assert_eq!(report.final_state.get(x), 0);
        assert_eq!(report.count_of(ActionId(0)), 5);
        assert_eq!(report.kind_counts.closure, 5);
    }

    #[test]
    fn stop_predicate_detects_stabilization() {
        let (p, x) = countdown();
        let done = Predicate::new("x<=2", [x], move |s| s.get(x) <= 2);
        let report = Executor::new(&p).run(
            p.state_from([9]).unwrap(),
            &mut RoundRobin::new(),
            &RunConfig::default().stop_when(&done, 1),
        );
        assert_eq!(report.stop, StopReason::Stabilized);
        assert_eq!(report.final_state.get(x), 2);
        assert_eq!(report.stabilized_at, Some(6));
    }

    #[test]
    fn consecutive_hold_requirement() {
        let (p, x) = countdown();
        let done = Predicate::new("x<=5", [x], move |s| s.get(x) <= 5);
        let report = Executor::new(&p).run(
            p.state_from([8]).unwrap(),
            &mut RoundRobin::new(),
            &RunConfig::default().stop_when(&done, 3),
        );
        assert_eq!(report.stop, StopReason::Stabilized);
        // x=8 initially; the step with index 2 (the third) produces x=5, where
        // the predicate starts holding; it holds for 3 consecutive steps
        // (x=5,4,3), so the run stops at x=3 after 5 steps.
        assert_eq!(report.stabilized_at, Some(2));
        assert_eq!(report.steps, 5);
        assert_eq!(report.final_state.get(x), 3);
    }

    #[test]
    fn max_steps_cutoff() {
        let (p, _) = countdown();
        let report = Executor::new(&p).run(
            p.state_from([10]).unwrap(),
            &mut RoundRobin::new(),
            &RunConfig::default().max_steps(4),
        );
        assert_eq!(report.stop, StopReason::MaxSteps);
        assert_eq!(report.steps, 4);
    }

    #[test]
    fn scheduler_stop() {
        let (p, _) = countdown();
        let report = Executor::new(&p).run(
            p.state_from([10]).unwrap(),
            &mut Fixed::skipping([ActionId(0), ActionId(0)]),
            &RunConfig::default(),
        );
        assert_eq!(report.stop, StopReason::SchedulerStopped);
        assert_eq!(report.steps, 2);
    }

    #[test]
    fn faults_interrupt_stabilization() {
        let (p, x) = countdown();
        let done = Predicate::new("x<=1", [x], move |s| s.get(x) <= 1);
        // x=5 counts down; the predicate first holds after step index 3
        // (x=1). The fault before step 4 kicks x back to 3, resetting the
        // hold counter; the countdown then resumes and stabilizes at x=0.
        let mut faults = ScheduledCorruption::new().at(4, x, 3);
        let report = Executor::new(&p).run_with_faults(
            p.state_from([5]).unwrap(),
            &mut RoundRobin::new(),
            &mut faults,
            &RunConfig::default().stop_when(&done, 2).record_trace(true),
        );
        assert_eq!(report.stop, StopReason::Stabilized);
        assert_eq!(report.fault_events, 1);
        // 4 decs to x=1, fault to x=3, 3 more decs to x=0 (holds at x=1, x=0).
        assert_eq!(report.steps, 7);
        assert_eq!(report.stabilized_at, Some(5));
        let trace = report.trace.unwrap();
        assert!(trace
            .steps()
            .iter()
            .any(|s| s.action.is_none() && s.faults == 1));
    }

    #[test]
    fn watch_counts_availability() {
        let (p, x) = countdown();
        let low = Predicate::new("x<=4", [x], move |s| s.get(x) <= 4);
        let report = Executor::new(&p).run(
            p.state_from([9]).unwrap(),
            &mut RoundRobin::new(),
            &RunConfig::default().watch(&low),
        );
        // 9 steps; predicate holds after steps producing x=4..0 → 5 hits.
        assert_eq!(report.steps, 9);
        assert_eq!(report.watch_hits, vec![5]);
        assert!((report.availability(0).unwrap() - 5.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn write_violation_detected() {
        let mut b = Program::builder("bad");
        let x = b.var("x", Domain::range(0, 3));
        let y = b.var("y", Domain::range(0, 3));
        // Declares writes=[x] but also writes y.
        b.closure_action(
            "sneaky",
            [x, y],
            [x],
            |_| true,
            move |s| {
                s.set(x, 1);
                s.set(y, 3);
            },
        );
        let p = b.build();
        let report = Executor::new(&p).run(
            p.min_state(),
            &mut RoundRobin::new(),
            &RunConfig::default().validate_writes(true),
        );
        assert!(matches!(
            report.stop,
            StopReason::WriteViolation { ref undeclared, .. } if undeclared == &[y]
        ));
    }

    #[test]
    fn domain_violation_detected() {
        let mut b = Program::builder("bad");
        let x = b.var("x", Domain::range(0, 3));
        b.closure_action(
            "overflow",
            [x],
            [x],
            |_| true,
            move |s| {
                let v = s.get(x);
                s.set(x, v + 1);
            },
        );
        let p = b.build();
        let report = Executor::new(&p).run(
            p.state_from([3]).unwrap(),
            &mut RoundRobin::new(),
            &RunConfig::default().validate_domains(true),
        );
        assert!(matches!(
            report.stop,
            StopReason::DomainViolation { var, .. } if var == x
        ));
    }

    #[test]
    fn random_scheduler_is_reproducible() {
        let (p, _) = countdown();
        let run = |seed: u64| {
            Executor::new(&p)
                .run(
                    p.state_from([10]).unwrap(),
                    &mut Random::seeded(seed),
                    &RunConfig::default(),
                )
                .steps
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn stop_reason_helper() {
        assert!(StopReason::Stabilized.is_stabilized());
        assert!(!StopReason::MaxSteps.is_stabilized());
    }
}
