//! Fault models.
//!
//! The paper represents every fault class as *actions that change the
//! program state* (Section 3, citing [7, 8]). A [`FaultInjector`] is exactly
//! that: a hook the engine calls before each program step, which may perturb
//! the state. The injector reports what it did so runs can account for the
//! fault load.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::program::Program;
use crate::state::State;
use crate::value::Domain;
use crate::VarId;

/// The raw stateless Byzantine lie stream.
///
/// A permanently malicious (Byzantine) node does not corrupt state once
/// and heal; it advertises arbitrary values forever. Every execution
/// layer draws those values from this one pure mixing function — a
/// splitmix64-style finalizer chained over the run seed, the lying
/// node's id, the variable slot being lied about, and the broadcast
/// index — so the adversary is *identical by construction* wherever it
/// is replayed. The simulator keys `step` by round number; the socket
/// runtime keys it by the node's heartbeat sequence number; and because
/// a stateless function of its arguments cannot be reordered, the
/// malicious message sequence is invariant under shard count, worker
/// count, and batching.
pub fn byzantine_lie(seed: u64, node: u64, slot: u64, step: u64) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut z = mix(seed);
    z = mix(z ^ node);
    z = mix(z ^ slot);
    mix(z ^ step)
}

/// [`byzantine_lie`], reduced into `domain`.
///
/// Bounded domains are contiguous runs starting at
/// [`Domain::min_value`], so the raw lie is mapped by modular reduction;
/// an unbounded domain receives the raw stream reinterpreted as `i64`.
pub fn byzantine_lie_in(domain: &Domain, seed: u64, node: u64, slot: u64, step: u64) -> i64 {
    let raw = byzantine_lie(seed, node, slot, step);
    match domain.size() {
        Some(n) => domain.min_value().wrapping_add((raw % n) as i64),
        None => raw as i64,
    }
}

/// A single applied fault: which variable was corrupted and to what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Step at which the fault was applied.
    pub step: u64,
    /// The corrupted variable.
    pub var: VarId,
    /// The value written by the fault.
    pub value: i64,
}

/// A source of fault actions.
///
/// Called by the engine before each program step; mutates `state` in place
/// and returns the fault events applied (empty when no fault fired).
pub trait FaultInjector {
    /// Possibly perturb `state` at `step`.
    fn inject(&mut self, step: u64, state: &mut State, program: &Program) -> Vec<FaultEvent>;

    /// A short human-readable name, used in reports.
    fn name(&self) -> &str {
        "faults"
    }
}

/// The fault-free environment.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn inject(&mut self, _step: u64, _state: &mut State, _program: &Program) -> Vec<FaultEvent> {
        Vec::new()
    }

    fn name(&self) -> &str {
        "none"
    }
}

/// Transient state corruption: at each step, with probability `rate`, one
/// targeted variable is rewritten to a uniformly random domain value.
///
/// This is the fault class the paper's stabilizing designs tolerate: faults
/// that "arbitrarily corrupt the state of any number of nodes" (Section
/// 5.1) / make "nodes spontaneously become privileged or unprivileged"
/// (Section 7.1).
#[derive(Debug, Clone)]
pub struct TransientCorruption {
    rate: f64,
    targets: Option<Vec<VarId>>,
    remaining: Option<u64>,
    rng: StdRng,
}

impl TransientCorruption {
    /// Corrupt any variable, with per-step probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `0.0..=1.0`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        TransientCorruption {
            rate,
            targets: None,
            remaining: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Restrict corruption to the given variables.
    pub fn targeting(mut self, vars: impl IntoIterator<Item = VarId>) -> Self {
        self.targets = Some(vars.into_iter().collect());
        self
    }

    /// Stop injecting after `n` fault events in total.
    pub fn limited_to(mut self, n: u64) -> Self {
        self.remaining = Some(n);
        self
    }
}

impl FaultInjector for TransientCorruption {
    fn inject(&mut self, step: u64, state: &mut State, program: &Program) -> Vec<FaultEvent> {
        if self.remaining == Some(0) || program.var_count() == 0 {
            return Vec::new();
        }
        if !self.rng.gen_bool(self.rate) {
            return Vec::new();
        }
        let var = match &self.targets {
            Some(ts) if ts.is_empty() => return Vec::new(),
            Some(ts) => ts[self.rng.gen_range(0..ts.len())],
            None => {
                let i = self.rng.gen_range(0..program.var_count());
                VarId::from_index(i)
            }
        };
        let value = program.var(var).domain().sample(&mut self.rng);
        state.set(var, value);
        if let Some(r) = &mut self.remaining {
            *r -= 1;
        }
        vec![FaultEvent { step, var, value }]
    }

    fn name(&self) -> &str {
        "transient-corruption"
    }
}

/// Deterministic, scripted corruption: at each listed step, write the listed
/// values.
///
/// The workhorse of the reproduction experiments — inject a burst of
/// corruption at a known time, then measure how long the program takes to
/// re-establish its invariant.
#[derive(Debug, Clone, Default)]
pub struct ScheduledCorruption {
    events: Vec<(u64, VarId, i64)>,
}

impl ScheduledCorruption {
    /// No scheduled events yet; add them with [`ScheduledCorruption::at`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `var := value` to be applied before program step `step`.
    pub fn at(mut self, step: u64, var: VarId, value: i64) -> Self {
        self.events.push((step, var, value));
        self
    }

    /// Schedule a burst of writes at `step`.
    pub fn burst_at(mut self, step: u64, writes: impl IntoIterator<Item = (VarId, i64)>) -> Self {
        for (var, value) in writes {
            self.events.push((step, var, value));
        }
        self
    }

    /// Number of scheduled (not yet necessarily applied) events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl FaultInjector for ScheduledCorruption {
    fn inject(&mut self, step: u64, state: &mut State, _program: &Program) -> Vec<FaultEvent> {
        let mut applied = Vec::new();
        for &(at, var, value) in &self.events {
            if at == step {
                state.set(var, value);
                applied.push(FaultEvent { step, var, value });
            }
        }
        applied
    }

    fn name(&self) -> &str {
        "scheduled-corruption"
    }
}

/// Randomized burst corruption: at each listed step, corrupt `k` distinct
/// random variables to random domain values.
#[derive(Debug, Clone)]
pub struct BurstCorruption {
    steps: Vec<u64>,
    k: usize,
    rng: StdRng,
}

impl BurstCorruption {
    /// Corrupt `k` random variables at each step in `steps`.
    pub fn new(steps: impl IntoIterator<Item = u64>, k: usize, seed: u64) -> Self {
        BurstCorruption {
            steps: steps.into_iter().collect(),
            k,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl FaultInjector for BurstCorruption {
    fn inject(&mut self, step: u64, state: &mut State, program: &Program) -> Vec<FaultEvent> {
        if !self.steps.contains(&step) || program.var_count() == 0 {
            return Vec::new();
        }
        let n = program.var_count();
        let k = self.k.min(n);
        // Sample k distinct variable indices (partial Fisher-Yates).
        let mut indices: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.rng.gen_range(i..n);
            indices.swap(i, j);
        }
        indices[..k]
            .iter()
            .map(|&i| {
                let var = VarId::from_index(i);
                let value = program.var(var).domain().sample(&mut self.rng);
                state.set(var, value);
                FaultEvent { step, var, value }
            })
            .collect()
    }

    fn name(&self) -> &str {
        "burst-corruption"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, Program};

    fn program() -> Program {
        let mut b = Program::builder("p");
        b.var("x", Domain::range(0, 9));
        b.var("y", Domain::Bool);
        b.build()
    }

    #[test]
    fn no_faults_does_nothing() {
        let p = program();
        let mut s = p.min_state();
        let before = s.clone();
        assert!(NoFaults.inject(3, &mut s, &p).is_empty());
        assert_eq!(s, before);
    }

    #[test]
    fn transient_rate_one_always_fires() {
        let p = program();
        let mut inj = TransientCorruption::new(1.0, 1);
        let mut s = p.min_state();
        let mut fired = 0;
        for step in 0..50 {
            fired += inj.inject(step, &mut s, &p).len();
            p.validate_state(&s).unwrap();
        }
        assert_eq!(fired, 50);
    }

    #[test]
    fn transient_rate_zero_never_fires() {
        let p = program();
        let mut inj = TransientCorruption::new(0.0, 1);
        let mut s = p.min_state();
        for step in 0..50 {
            assert!(inj.inject(step, &mut s, &p).is_empty());
        }
    }

    #[test]
    fn transient_respects_targets_and_limit() {
        let p = program();
        let y = p.var_by_name("y").unwrap();
        let mut inj = TransientCorruption::new(1.0, 2)
            .targeting([y])
            .limited_to(3);
        let mut s = p.min_state();
        let mut events = Vec::new();
        for step in 0..50 {
            events.extend(inj.inject(step, &mut s, &p));
        }
        assert_eq!(events.len(), 3, "limit respected");
        assert!(events.iter().all(|e| e.var == y), "targets respected");
    }

    #[test]
    fn scheduled_fires_at_exact_steps() {
        let p = program();
        let x = p.var_by_name("x").unwrap();
        let y = p.var_by_name("y").unwrap();
        let mut inj = ScheduledCorruption::new()
            .at(2, x, 7)
            .burst_at(5, [(x, 1), (y, 1)]);
        assert_eq!(inj.len(), 3);
        let mut s = p.min_state();
        assert!(inj.inject(0, &mut s, &p).is_empty());
        let ev = inj.inject(2, &mut s, &p);
        assert_eq!(ev.len(), 1);
        assert_eq!(s.get(x), 7);
        let ev = inj.inject(5, &mut s, &p);
        assert_eq!(ev.len(), 2);
        assert_eq!((s.get(x), s.get(y)), (1, 1));
    }

    #[test]
    fn burst_corrupts_k_distinct_vars() {
        let p = program();
        let mut inj = BurstCorruption::new([4], 2, 9);
        let mut s = p.min_state();
        assert!(inj.inject(3, &mut s, &p).is_empty());
        let ev = inj.inject(4, &mut s, &p);
        assert_eq!(ev.len(), 2);
        assert_ne!(ev[0].var, ev[1].var);
        p.validate_state(&s).unwrap();
    }

    #[test]
    fn byzantine_lie_is_a_pure_function() {
        let a = byzantine_lie(7, 3, 1, 42);
        let b = byzantine_lie(7, 3, 1, 42);
        assert_eq!(a, b);
        // Each argument independently perturbs the stream.
        assert_ne!(a, byzantine_lie(8, 3, 1, 42));
        assert_ne!(a, byzantine_lie(7, 4, 1, 42));
        assert_ne!(a, byzantine_lie(7, 3, 2, 42));
        assert_ne!(a, byzantine_lie(7, 3, 1, 43));
    }

    #[test]
    fn byzantine_lie_stream_varies_over_steps() {
        let values: Vec<u64> = (0..64).map(|t| byzantine_lie(1, 0, 0, t)).collect();
        let mut distinct = values.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() > 32, "stream should not be near-constant");
    }

    #[test]
    fn byzantine_lie_in_lands_in_domain() {
        for domain in [
            Domain::Bool,
            Domain::range(0, 6),
            Domain::range(-3, 3),
            Domain::enumeration(["a", "b", "c"]),
        ] {
            for t in 0..200 {
                let v = byzantine_lie_in(&domain, 99, 5, 0, t);
                assert!(domain.contains(v), "{v} outside {domain:?}");
            }
        }
        // Unbounded domains pass the raw stream through.
        let raw = byzantine_lie(99, 5, 0, 7) as i64;
        assert_eq!(byzantine_lie_in(&Domain::Unbounded, 99, 5, 0, 7), raw);
    }

    #[test]
    fn byzantine_lie_in_covers_small_domains() {
        let domain = Domain::range(0, 4);
        let mut seen = [false; 5];
        for t in 0..64 {
            seen[byzantine_lie_in(&domain, 3, 1, 0, t) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "every domain value should appear");
    }

    #[test]
    fn burst_k_larger_than_var_count_is_clamped() {
        let p = program();
        let mut inj = BurstCorruption::new([0], 10, 9);
        let mut s = p.min_state();
        assert_eq!(inj.inject(0, &mut s, &p).len(), 2);
    }
}
