//! Variable domains.
//!
//! Every program variable carries a [`Domain`] describing its set of legal
//! values. All values are represented as `i64` slots in a [`crate::State`];
//! the domain gives them their interpretation (boolean, bounded integer,
//! enumeration label, or unbounded integer).

use rand::Rng;

/// The set of legal values of a variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Domain {
    /// `{false, true}` encoded as `{0, 1}`.
    Bool,
    /// The inclusive integer range `min..=max`.
    Range {
        /// Smallest legal value.
        min: i64,
        /// Largest legal value.
        max: i64,
    },
    /// A finite enumeration; value `k` means `labels[k]`.
    Enum {
        /// Human-readable names of the variants, in value order.
        labels: Vec<String>,
    },
    /// All of `i64`. State-space enumeration is impossible over unbounded
    /// domains; the model checker rejects programs containing them, while
    /// the simulator handles them fine.
    Unbounded,
}

/// Error raised when a value falls outside its variable's domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainError {
    /// Name of the offending variable.
    pub var: String,
    /// The out-of-domain value.
    pub value: i64,
    /// Rendered description of the domain.
    pub domain: String,
}

impl std::fmt::Display for DomainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "value {} of variable `{}` is outside its domain {}",
            self.value, self.var, self.domain
        )
    }
}

impl std::error::Error for DomainError {}

impl Domain {
    /// Convenience constructor for [`Domain::Range`].
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn range(min: i64, max: i64) -> Self {
        assert!(min <= max, "empty domain: range({min}, {max})");
        Domain::Range { min, max }
    }

    /// Convenience constructor for [`Domain::Enum`].
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty.
    pub fn enumeration<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        assert!(
            !labels.is_empty(),
            "empty domain: enumeration with no labels"
        );
        Domain::Enum { labels }
    }

    /// Whether `value` is a member of this domain.
    pub fn contains(&self, value: i64) -> bool {
        match self {
            Domain::Bool => value == 0 || value == 1,
            Domain::Range { min, max } => (*min..=*max).contains(&value),
            Domain::Enum { labels } => (0..labels.len() as i64).contains(&value),
            Domain::Unbounded => true,
        }
    }

    /// The number of values in the domain, or `None` if unbounded.
    pub fn size(&self) -> Option<u64> {
        match self {
            Domain::Bool => Some(2),
            Domain::Range { min, max } => Some((max - min) as u64 + 1),
            Domain::Enum { labels } => Some(labels.len() as u64),
            Domain::Unbounded => None,
        }
    }

    /// Whether the domain has finitely many values.
    pub fn is_bounded(&self) -> bool {
        self.size().is_some()
    }

    /// The smallest value of the domain (`i64::MIN` when unbounded).
    pub fn min_value(&self) -> i64 {
        match self {
            Domain::Bool => 0,
            Domain::Range { min, .. } => *min,
            Domain::Enum { .. } => 0,
            Domain::Unbounded => i64::MIN,
        }
    }

    /// Iterate over the values of a bounded domain in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if the domain is [`Domain::Unbounded`]; check
    /// [`Domain::is_bounded`] first.
    pub fn values(&self) -> impl Iterator<Item = i64> + '_ {
        let (min, max) = match self {
            Domain::Bool => (0, 1),
            Domain::Range { min, max } => (*min, *max),
            Domain::Enum { labels } => (0, labels.len() as i64 - 1),
            Domain::Unbounded => panic!("cannot enumerate an unbounded domain"),
        };
        min..=max
    }

    /// Draw a uniformly random member of the domain.
    ///
    /// For [`Domain::Unbounded`] this samples a small symmetric window
    /// (`-8..=8`) — faults that fling an unbounded counter to an arbitrary
    /// `i64` are indistinguishable, for stabilization purposes, from faults
    /// landing nearby, and small windows keep traces legible.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        match self {
            Domain::Bool => rng.gen_range(0..=1),
            Domain::Range { min, max } => rng.gen_range(*min..=*max),
            Domain::Enum { labels } => rng.gen_range(0..labels.len() as i64),
            Domain::Unbounded => rng.gen_range(-8..=8),
        }
    }

    /// Render `value` under this domain's interpretation (e.g. enum label).
    pub fn render(&self, value: i64) -> String {
        match self {
            Domain::Bool => (value != 0).to_string(),
            Domain::Enum { labels } => labels
                .get(value as usize)
                .cloned()
                .unwrap_or_else(|| format!("<out-of-domain {value}>")),
            _ => value.to_string(),
        }
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Domain::Bool => write!(f, "bool"),
            Domain::Range { min, max } => write!(f, "{min}..={max}"),
            Domain::Enum { labels } => write!(f, "{{{}}}", labels.join(", ")),
            Domain::Unbounded => write!(f, "i64"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bool_domain() {
        let d = Domain::Bool;
        assert!(d.contains(0) && d.contains(1));
        assert!(!d.contains(2) && !d.contains(-1));
        assert_eq!(d.size(), Some(2));
        assert_eq!(d.values().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(d.render(1), "true");
    }

    #[test]
    fn range_domain() {
        let d = Domain::range(-2, 3);
        assert_eq!(d.size(), Some(6));
        assert!(d.contains(-2) && d.contains(3));
        assert!(!d.contains(-3) && !d.contains(4));
        assert_eq!(d.values().count(), 6);
        assert_eq!(d.min_value(), -2);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn empty_range_panics() {
        let _ = Domain::range(1, 0);
    }

    #[test]
    fn enum_domain() {
        let d = Domain::enumeration(["green", "red"]);
        assert_eq!(d.size(), Some(2));
        assert!(d.contains(0) && d.contains(1) && !d.contains(2));
        assert_eq!(d.render(0), "green");
        assert_eq!(d.render(7), "<out-of-domain 7>");
        assert_eq!(d.to_string(), "{green, red}");
    }

    #[test]
    fn unbounded_domain() {
        let d = Domain::Unbounded;
        assert!(d.contains(i64::MIN) && d.contains(i64::MAX));
        assert_eq!(d.size(), None);
        assert!(!d.is_bounded());
    }

    #[test]
    fn sampling_stays_in_domain() {
        let mut rng = StdRng::seed_from_u64(7);
        for d in [
            Domain::Bool,
            Domain::range(3, 9),
            Domain::enumeration(["a", "b", "c"]),
            Domain::Unbounded,
        ] {
            for _ in 0..200 {
                assert!(d.contains(d.sample(&mut rng)));
            }
        }
    }

    #[test]
    fn domain_error_display() {
        let e = DomainError {
            var: "x".into(),
            value: 9,
            domain: "0..=3".into(),
        };
        assert!(e.to_string().contains("x"));
        assert!(e.to_string().contains('9'));
    }
}
