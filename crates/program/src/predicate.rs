//! State predicates.

use std::sync::Arc;

use crate::{State, VarId};

type EvalFn = Arc<dyn Fn(&State) -> bool + Send + Sync>;

/// A boolean expression over program variables.
///
/// Predicates carry a *declared read set* — the variables the evaluation
/// function inspects — which downstream tooling uses to place constraints in
/// a constraint graph. Predicates are cheaply cloneable (the evaluation
/// closure is shared).
///
/// # Example
///
/// ```
/// use nonmask_program::{Domain, Predicate, Program};
///
/// let mut b = Program::builder("p");
/// let x = b.var("x", Domain::range(0, 9));
/// let y = b.var("y", Domain::range(0, 9));
/// let p = b.build();
///
/// let eq = Predicate::new("x=y", [x, y], move |s| s.get(x) == s.get(y));
/// let s = p.state_from([3, 3]).unwrap();
/// assert!(eq.holds(&s));
/// assert!(eq.not().holds(&p.state_from([3, 4]).unwrap()));
/// ```
#[derive(Clone)]
pub struct Predicate {
    name: String,
    reads: Arc<[VarId]>,
    eval: EvalFn,
}

impl Predicate {
    /// Create a predicate with a name, declared read set, and evaluator.
    pub fn new<I>(
        name: impl Into<String>,
        reads: I,
        eval: impl Fn(&State) -> bool + Send + Sync + 'static,
    ) -> Self
    where
        I: IntoIterator<Item = VarId>,
    {
        let mut reads: Vec<VarId> = reads.into_iter().collect();
        reads.sort_unstable();
        reads.dedup();
        Predicate {
            name: name.into(),
            reads: reads.into(),
            eval: Arc::new(eval),
        }
    }

    /// The constant predicate `true` (empty read set).
    ///
    /// This is the fault-span `T` of a *stabilizing* program (Section 5 of
    /// the paper): every state is in the fault span.
    pub fn always_true() -> Self {
        Predicate::new("true", [], |_| true)
    }

    /// The constant predicate `false`.
    pub fn always_false() -> Self {
        Predicate::new("false", [], |_| false)
    }

    /// The predicate's name, used in reports and DOT output.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared read set (sorted, deduplicated).
    pub fn reads(&self) -> &[VarId] {
        &self.reads
    }

    /// Evaluate the predicate at `state`.
    #[inline]
    pub fn holds(&self, state: &State) -> bool {
        (self.eval)(state)
    }

    /// Logical negation; reads the same variables.
    pub fn not(&self) -> Predicate {
        let inner = self.eval.clone();
        Predicate {
            name: format!("!({})", self.name),
            reads: self.reads.clone(),
            eval: Arc::new(move |s| !(inner)(s)),
        }
    }

    /// Logical conjunction; reads the union of both read sets.
    pub fn and(&self, other: &Predicate) -> Predicate {
        let a = self.eval.clone();
        let b = other.eval.clone();
        Predicate::combine(
            format!("({}) & ({})", self.name, other.name),
            &[self, other],
            move |s| a(s) && b(s),
        )
    }

    /// Logical disjunction; reads the union of both read sets.
    pub fn or(&self, other: &Predicate) -> Predicate {
        let a = self.eval.clone();
        let b = other.eval.clone();
        Predicate::combine(
            format!("({}) | ({})", self.name, other.name),
            &[self, other],
            move |s| a(s) || b(s),
        )
    }

    /// Logical implication `self => other`.
    pub fn implies(&self, other: &Predicate) -> Predicate {
        let a = self.eval.clone();
        let b = other.eval.clone();
        Predicate::combine(
            format!("({}) => ({})", self.name, other.name),
            &[self, other],
            move |s| !a(s) || b(s),
        )
    }

    /// Conjunction of an arbitrary collection of predicates.
    ///
    /// Returns [`Predicate::always_true`] for an empty collection. This is
    /// how the paper forms an invariant `S` from its constraints:
    /// `S = (∀ j :: R.j)`.
    pub fn all<'a, I>(name: impl Into<String>, preds: I) -> Predicate
    where
        I: IntoIterator<Item = &'a Predicate>,
    {
        let preds: Vec<Predicate> = preds.into_iter().cloned().collect();
        if preds.is_empty() {
            return Predicate::always_true();
        }
        let reads: Vec<VarId> = preds.iter().flat_map(|p| p.reads.iter().copied()).collect();
        let evals: Vec<EvalFn> = preds.iter().map(|p| p.eval.clone()).collect();
        Predicate::new(name, reads, move |s| evals.iter().all(|e| e(s)))
    }

    /// Disjunction of an arbitrary collection of predicates.
    ///
    /// Returns [`Predicate::always_false`] for an empty collection.
    pub fn any<'a, I>(name: impl Into<String>, preds: I) -> Predicate
    where
        I: IntoIterator<Item = &'a Predicate>,
    {
        let preds: Vec<Predicate> = preds.into_iter().cloned().collect();
        if preds.is_empty() {
            return Predicate::always_false();
        }
        let reads: Vec<VarId> = preds.iter().flat_map(|p| p.reads.iter().copied()).collect();
        let evals: Vec<EvalFn> = preds.iter().map(|p| p.eval.clone()).collect();
        Predicate::new(name, reads, move |s| evals.iter().any(|e| e(s)))
    }

    /// Rename the predicate (read set and evaluator unchanged).
    pub fn named(mut self, name: impl Into<String>) -> Predicate {
        self.name = name.into();
        self
    }

    fn combine(
        name: String,
        parts: &[&Predicate],
        eval: impl Fn(&State) -> bool + Send + Sync + 'static,
    ) -> Predicate {
        let reads: Vec<VarId> = parts.iter().flat_map(|p| p.reads.iter().copied()).collect();
        Predicate::new(name, reads, eval)
    }
}

impl std::fmt::Debug for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Predicate")
            .field("name", &self.name)
            .field("reads", &self.reads)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(i: u32) -> VarId {
        crate::VarId(i)
    }

    fn st(slots: &[i64]) -> State {
        State::new(slots.to_vec())
    }

    #[test]
    fn basic_evaluation() {
        let x = var(0);
        let p = Predicate::new("x>0", [x], move |s| s.get(x) > 0);
        assert!(p.holds(&st(&[1])));
        assert!(!p.holds(&st(&[0])));
        assert_eq!(p.name(), "x>0");
        assert_eq!(p.reads(), &[x]);
    }

    #[test]
    fn combinators() {
        let x = var(0);
        let y = var(1);
        let px = Predicate::new("x>0", [x], move |s| s.get(x) > 0);
        let py = Predicate::new("y>0", [y], move |s| s.get(y) > 0);

        let both = px.and(&py);
        assert!(both.holds(&st(&[1, 1])));
        assert!(!both.holds(&st(&[1, 0])));
        assert_eq!(both.reads(), &[x, y]);

        let either = px.or(&py);
        assert!(either.holds(&st(&[0, 1])));
        assert!(!either.holds(&st(&[0, 0])));

        let imp = px.implies(&py);
        assert!(imp.holds(&st(&[0, 0])));
        assert!(imp.holds(&st(&[1, 1])));
        assert!(!imp.holds(&st(&[1, 0])));

        assert!(px.not().holds(&st(&[0, 5])));
    }

    #[test]
    fn all_and_any() {
        let preds: Vec<Predicate> = (0..3)
            .map(|i| {
                let v = var(i);
                Predicate::new(format!("s[{i}]=1"), [v], move |s| s.get(v) == 1)
            })
            .collect();

        let all = Predicate::all("S", &preds);
        assert!(all.holds(&st(&[1, 1, 1])));
        assert!(!all.holds(&st(&[1, 0, 1])));
        assert_eq!(all.reads().len(), 3);

        let any = Predicate::any("A", &preds);
        assert!(any.holds(&st(&[0, 0, 1])));
        assert!(!any.holds(&st(&[0, 0, 0])));
    }

    #[test]
    fn empty_all_is_true_empty_any_is_false() {
        let none: [&Predicate; 0] = [];
        assert!(Predicate::all("S", none).holds(&st(&[])));
        let none: [&Predicate; 0] = [];
        assert!(!Predicate::any("A", none).holds(&st(&[])));
    }

    #[test]
    fn read_sets_are_sorted_and_deduped() {
        let p = Predicate::new("p", [var(3), var(1), var(3)], |_| true);
        assert_eq!(p.reads(), &[var(1), var(3)]);
    }

    #[test]
    fn named_renames() {
        let p = Predicate::always_true().named("S");
        assert_eq!(p.name(), "S");
        assert_eq!(p.to_string(), "S");
    }
}
