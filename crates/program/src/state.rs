//! Program states.

use crate::VarId;

/// A state of a program: one `i64` slot per declared variable.
///
/// States are plain values — cheap to clone, hashable, and comparable — so
/// that the model checker can use them as map keys and traces can store them
/// verbatim.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct State {
    slots: Box<[i64]>,
}

impl State {
    /// Create a state from raw slot values (declaration order).
    pub fn new(slots: impl Into<Vec<i64>>) -> Self {
        State {
            slots: slots.into().into_boxed_slice(),
        }
    }

    /// Create an all-zero state with `n` slots.
    pub fn zeroed(n: usize) -> Self {
        State {
            slots: vec![0; n].into_boxed_slice(),
        }
    }

    /// Number of variable slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the state has no slots (a program with no variables).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Read the value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range for this state.
    #[inline]
    pub fn get(&self, var: VarId) -> i64 {
        self.slots[var.index()]
    }

    /// Read `var` as a boolean (`0` is false, anything else true).
    #[inline]
    pub fn get_bool(&self, var: VarId) -> bool {
        self.get(var) != 0
    }

    /// Write `value` into `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range for this state.
    #[inline]
    pub fn set(&mut self, var: VarId, value: i64) {
        self.slots[var.index()] = value;
    }

    /// Write a boolean into `var` (`true` as 1, `false` as 0).
    #[inline]
    pub fn set_bool(&mut self, var: VarId, value: bool) {
        self.set(var, value as i64);
    }

    /// Flip a boolean slot in place.
    #[inline]
    pub fn toggle(&mut self, var: VarId) {
        let v = self.get_bool(var);
        self.set_bool(var, !v);
    }

    /// Overwrite every slot of `self` with the slots of `other`, reusing
    /// `self`'s buffer. The allocation-free counterpart of `clone` for hot
    /// loops that cycle one scratch state through many values.
    ///
    /// # Panics
    ///
    /// Panics if the two states have different lengths.
    #[inline]
    pub fn copy_from(&mut self, other: &State) {
        self.slots.copy_from_slice(&other.slots);
    }

    /// Overwrite every slot of `self` from a raw slot slice, reusing
    /// `self`'s buffer. The flat-arena counterpart of
    /// [`copy_from`](State::copy_from): multi-instance engines that pack
    /// many states into one contiguous `[i64]` arena use this to load an
    /// instance into a scratch `State` (and [`slots`](State::slots) to
    /// store it back) without touching the allocator.
    ///
    /// # Panics
    ///
    /// Panics if `slots.len()` differs from the state's length.
    #[inline]
    pub fn copy_from_slots(&mut self, slots: &[i64]) {
        self.slots.copy_from_slice(slots);
    }

    /// View of all slots in declaration order.
    pub fn slots(&self) -> &[i64] {
        &self.slots
    }

    /// Consume the state, returning its raw slots.
    pub fn into_slots(self) -> Vec<i64> {
        self.slots.into_vec()
    }

    /// Indices of the slots at which `self` and `other` differ.
    ///
    /// Useful for write-set validation and trace diffing.
    ///
    /// # Panics
    ///
    /// Panics if the two states have different lengths.
    pub fn diff(&self, other: &State) -> Vec<VarId> {
        assert_eq!(self.len(), other.len(), "diff of differently-shaped states");
        self.slots
            .iter()
            .zip(other.slots.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| VarId(i as u32))
            .collect()
    }
}

impl From<Vec<i64>> for State {
    fn from(slots: Vec<i64>) -> Self {
        State::new(slots)
    }
}

impl FromIterator<i64> for State {
    fn from_iter<T: IntoIterator<Item = i64>>(iter: T) -> Self {
        State::new(iter.into_iter().collect::<Vec<_>>())
    }
}

impl std::fmt::Display for State {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn get_set_roundtrip() {
        let mut s = State::zeroed(3);
        s.set(v(0), 5);
        s.set(v(2), -1);
        assert_eq!(s.get(v(0)), 5);
        assert_eq!(s.get(v(1)), 0);
        assert_eq!(s.get(v(2)), -1);
    }

    #[test]
    fn bool_helpers() {
        let mut s = State::zeroed(1);
        assert!(!s.get_bool(v(0)));
        s.set_bool(v(0), true);
        assert!(s.get_bool(v(0)));
        s.toggle(v(0));
        assert!(!s.get_bool(v(0)));
    }

    #[test]
    fn diff_reports_changed_slots() {
        let a = State::new(vec![1, 2, 3]);
        let b = State::new(vec![1, 9, 4]);
        assert_eq!(a.diff(&b), vec![v(1), v(2)]);
        assert!(a.diff(&a).is_empty());
    }

    #[test]
    fn equality_and_hash_are_structural() {
        use std::collections::HashSet;
        let a = State::new(vec![1, 2]);
        let b: State = [1, 2].into_iter().collect();
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn display_is_compact() {
        let s = State::new(vec![1, 0, 2]);
        assert_eq!(s.to_string(), "[1, 0, 2]");
    }

    #[test]
    fn copy_from_reuses_buffer() {
        let src = State::new(vec![7, -2, 5]);
        let mut dst = State::zeroed(3);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic]
    fn copy_from_mismatched_lengths_panics() {
        let src = State::zeroed(2);
        let mut dst = State::zeroed(3);
        dst.copy_from(&src);
    }

    #[test]
    fn copy_from_slots_roundtrips_through_an_arena() {
        let arena: Vec<i64> = vec![4, -1, 9, 0, 2, 7];
        let mut scratch = State::zeroed(3);
        scratch.copy_from_slots(&arena[3..6]);
        assert_eq!(scratch, State::new(vec![0, 2, 7]));
        scratch.copy_from_slots(&arena[0..3]);
        assert_eq!(scratch.slots(), &[4, -1, 9]);
    }

    #[test]
    #[should_panic]
    fn copy_from_slots_mismatched_lengths_panics() {
        let mut dst = State::zeroed(3);
        dst.copy_from_slots(&[1, 2]);
    }

    #[test]
    #[should_panic]
    fn diff_of_mismatched_lengths_panics() {
        let a = State::zeroed(2);
        let b = State::zeroed(3);
        let _ = a.diff(&b);
    }
}
