//! Execution traces.

use crate::action::ActionId;
use crate::state::State;
use crate::Program;

/// One recorded step of an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// The step number (0-based; step `k` produced `state`).
    pub step: u64,
    /// The action executed at this step, or `None` if the step was a pure
    /// fault injection (the paper's fault actions).
    pub action: Option<ActionId>,
    /// Number of fault events applied at this step (before the action ran).
    pub faults: u32,
    /// The state *after* the step.
    pub state: State,
}

/// A recorded computation: the initial state followed by the steps taken.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    initial: Option<State>,
    steps: Vec<TraceStep>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Record the initial state.
    pub fn set_initial(&mut self, state: State) {
        self.initial = Some(state);
    }

    /// The initial state, if recorded.
    pub fn initial(&self) -> Option<&State> {
        self.initial.as_ref()
    }

    /// Append a step.
    pub fn push(&mut self, step: TraceStep) {
        self.steps.push(step);
    }

    /// The recorded steps, oldest first.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether any step has been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The sequence of visited states: initial state (if recorded) followed
    /// by each step's post-state.
    pub fn states(&self) -> impl Iterator<Item = &State> {
        self.initial
            .iter()
            .chain(self.steps.iter().map(|s| &s.state))
    }

    /// Pretty-print against `program` (variable names, action names).
    ///
    /// Intended for examples and debugging output, one line per step.
    pub fn render(&self, program: &Program) -> String {
        let mut out = String::new();
        if let Some(init) = &self.initial {
            out.push_str(&format!("  init: {}\n", program.render_state(init)));
        }
        for s in &self.steps {
            let label = match s.action {
                Some(a) => program.action(a).name().to_string(),
                None => "(fault only)".to_string(),
            };
            let fault_note = if s.faults > 0 {
                format!(" [{} fault(s)]", s.faults)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  #{:<4} {label}{fault_note}: {}\n",
                s.step,
                program.render_state(&s.state)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, Program};

    #[test]
    fn trace_accumulates_states() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.set_initial(State::new(vec![0]));
        t.push(TraceStep {
            step: 0,
            action: Some(ActionId(0)),
            faults: 0,
            state: State::new(vec![1]),
        });
        t.push(TraceStep {
            step: 1,
            action: None,
            faults: 2,
            state: State::new(vec![7]),
        });
        assert_eq!(t.len(), 2);
        let states: Vec<_> = t.states().collect();
        assert_eq!(states.len(), 3);
        assert_eq!(states[0], &State::new(vec![0]));
        assert_eq!(states[2], &State::new(vec![7]));
    }

    #[test]
    fn render_mentions_actions_and_faults() {
        let mut b = Program::builder("p");
        let x = b.var("x", Domain::range(0, 9));
        b.closure_action(
            "bump",
            [x],
            [x],
            |_| true,
            move |s| {
                let v = s.get(x);
                s.set(x, v + 1);
            },
        );
        let p = b.build();

        let mut t = Trace::new();
        t.set_initial(p.state_from([0]).unwrap());
        t.push(TraceStep {
            step: 0,
            action: Some(ActionId(0)),
            faults: 0,
            state: p.state_from([1]).unwrap(),
        });
        t.push(TraceStep {
            step: 1,
            action: None,
            faults: 1,
            state: p.state_from([9]).unwrap(),
        });
        let text = t.render(&p);
        assert!(text.contains("init: x=0"));
        assert!(text.contains("bump"));
        assert!(text.contains("(fault only)"));
        assert!(text.contains("[1 fault(s)]"));
    }
}
