//! Minimal JSON serialization for states and domains.
//!
//! The workspace builds offline, so instead of a `serde` feature this
//! module hand-rolls the two serializations downstream tooling actually
//! needs — [`State`] as an array of slot values, [`Domain`] in the same
//! externally-tagged shape `serde` would emit (`"Bool"`, `"Unbounded"`,
//! `{"Range":{"min":0,"max":7}}`, `{"Enum":{"labels":[...]}}`) — plus a
//! tiny recursive-descent parser for reading them back.

use crate::state::State;
use crate::value::Domain;

/// Error raised when parsing malformed or mis-shaped JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong, with an input byte offset where applicable.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError {
        message: message.into(),
    })
}

/// A parsed JSON value (integers only; this format never emits floats).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer number.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Escape `s` as the contents of a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize a [`State`] as a JSON array of its slot values.
pub fn state_to_json(state: &State) -> String {
    let slots: Vec<String> = state.slots().iter().map(|v| v.to_string()).collect();
    format!("[{}]", slots.join(","))
}

/// Parse a [`State`] from the output of [`state_to_json`].
pub fn state_from_json(input: &str) -> Result<State, JsonError> {
    match parse(input)? {
        JsonValue::Array(items) => {
            let mut slots = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    JsonValue::Int(v) => slots.push(v),
                    other => return err(format!("state slot is not an integer: {other:?}")),
                }
            }
            Ok(State::new(slots))
        }
        other => err(format!("state is not an array: {other:?}")),
    }
}

/// Serialize a [`Domain`] in serde's externally-tagged enum shape.
pub fn domain_to_json(domain: &Domain) -> String {
    match domain {
        Domain::Bool => "\"Bool\"".to_owned(),
        Domain::Unbounded => "\"Unbounded\"".to_owned(),
        Domain::Range { min, max } => {
            format!("{{\"Range\":{{\"min\":{min},\"max\":{max}}}}}")
        }
        Domain::Enum { labels } => {
            let labels: Vec<String> = labels
                .iter()
                .map(|l| format!("\"{}\"", escape(l)))
                .collect();
            format!("{{\"Enum\":{{\"labels\":[{}]}}}}", labels.join(","))
        }
    }
}

/// Parse a [`Domain`] from the output of [`domain_to_json`].
pub fn domain_from_json(input: &str) -> Result<Domain, JsonError> {
    match parse(input)? {
        JsonValue::Str(tag) => match tag.as_str() {
            "Bool" => Ok(Domain::Bool),
            "Unbounded" => Ok(Domain::Unbounded),
            other => err(format!("unknown unit domain `{other}`")),
        },
        obj @ JsonValue::Object(_) => {
            if let Some(range) = obj.get("Range") {
                match (range.get("min"), range.get("max")) {
                    (Some(JsonValue::Int(min)), Some(JsonValue::Int(max))) => Ok(Domain::Range {
                        min: *min,
                        max: *max,
                    }),
                    _ => err("Range domain needs integer `min` and `max`"),
                }
            } else if let Some(e) = obj.get("Enum") {
                match e.get("labels") {
                    Some(JsonValue::Array(items)) => {
                        let mut labels = Vec::with_capacity(items.len());
                        for item in items {
                            match item {
                                JsonValue::Str(s) => labels.push(s.clone()),
                                other => {
                                    return err(format!("enum label is not a string: {other:?}"))
                                }
                            }
                        }
                        Ok(Domain::Enum { labels })
                    }
                    _ => err("Enum domain needs a `labels` array"),
                }
            } else {
                err("unknown domain variant")
            }
        }
        other => err(format!("domain is neither a tag nor an object: {other:?}")),
    }
}

/// Parse an arbitrary JSON document (integers only).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => err("unexpected end of input"),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(fields));
                    }
                    _ => return err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            if bytes[*pos] == b'-' {
                *pos += 1;
            }
            while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
            match text.parse::<i64>() {
                Ok(v) => Ok(JsonValue::Int(v)),
                Err(_) => err(format!("bad integer `{text}` at byte {start}")),
            }
        }
        Some(c) => err(format!("unexpected byte `{}` at {pos}", *c as char)),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        err(format!("bad keyword at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = bytes.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|_| JsonError {
                    message: "invalid utf-8 in string".to_owned(),
                })
            }
            b'\\' => {
                let esc = bytes.get(*pos).copied();
                *pos += 1;
                match esc {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32);
                        match hex {
                            Some(ch) => {
                                *pos += 4;
                                let mut buf = [0u8; 4];
                                out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                            }
                            None => return err(format!("bad \\u escape at byte {pos}")),
                        }
                    }
                    _ => return err(format!("bad escape at byte {pos}")),
                }
            }
            c => out.push(c),
        }
    }
    err("unterminated string")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_roundtrip() {
        let s = State::new(vec![3, -1, 4]);
        assert_eq!(state_from_json(&state_to_json(&s)).unwrap(), s);
    }

    #[test]
    fn domain_roundtrips() {
        for d in [
            Domain::Bool,
            Domain::range(-2, 7),
            Domain::enumeration(["green", "red \"x\"\n"]),
            Domain::Unbounded,
        ] {
            assert_eq!(domain_from_json(&domain_to_json(&d)).unwrap(), d);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(state_from_json("[1, 2").is_err());
        assert!(state_from_json("{\"a\":1}").is_err());
        assert!(domain_from_json("\"Wat\"").is_err());
        assert!(parse("[1] tail").is_err());
    }
}
