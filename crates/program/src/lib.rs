//! Guarded-command programs in the style of Arora, Gouda & Varghese (1994).
//!
//! A *program* is a finite set of typed variables and a finite set of
//! *actions* of the form `guard -> statement` (Section 2 of the paper). This
//! crate provides:
//!
//! - [`Domain`], [`VarId`], [`State`] — typed variables over bounded or
//!   unbounded integer domains, and flat program states.
//! - [`Predicate`] — state predicates with declared read sets and boolean
//!   combinators.
//! - [`Action`], [`ActionKind`] — guarded commands with declared read/write
//!   sets, classified as *closure* or *convergence* actions.
//! - [`Program`] / [`ProgramBuilder`] — programs and their construction.
//! - [`Scheduler`] implementations — round-robin, seeded-random,
//!   adversarial, and fixed-sequence daemons.
//! - [`Executor`] — a step-by-step execution engine with stabilization
//!   detection, fault injection hooks and trace/metric recording.
//! - [`FaultInjector`] implementations — transient state corruption models
//!   (the paper's "faults are actions that change the program state" view).
//!
//! # Example
//!
//! ```
//! use nonmask_program::{Domain, Predicate, Program, RunConfig, Executor};
//! use nonmask_program::scheduler::RoundRobin;
//!
//! // A one-variable program that counts down to zero.
//! let mut b = Program::builder("countdown");
//! let x = b.var("x", Domain::range(0, 8));
//! b.closure_action("dec", [x], [x], move |s| s.get(x) > 0, move |s| {
//!     let v = s.get(x);
//!     s.set(x, v - 1);
//! });
//! let p = b.build();
//!
//! let zero = Predicate::new("x=0", [x], move |s| s.get(x) == 0);
//! let init = p.state_from([8]).unwrap();
//! let report = Executor::new(&p)
//!     .run(init, &mut RoundRobin::new(), &RunConfig::default().stop_when(&zero, 1));
//! assert_eq!(report.final_state.get(x), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod engine;
pub mod fault;
pub mod json;
pub mod predicate;
pub mod program;
pub mod scheduler;
pub mod state;
pub mod steplog;
pub mod trace;
pub mod value;

pub use action::{Action, ActionId, ActionKind};
pub use engine::{Executor, RunConfig, RunReport, StopReason};
pub use fault::{
    byzantine_lie, byzantine_lie_in, FaultEvent, FaultInjector, NoFaults, ScheduledCorruption,
    TransientCorruption,
};
pub use predicate::Predicate;
pub use program::{Program, ProgramBuilder, ProgramError};
pub use scheduler::Scheduler;
pub use state::State;
pub use steplog::{StepLog, StepRecord};
pub use trace::{Trace, TraceStep};
pub use value::{Domain, DomainError};

/// Identifier of a process within a program.
///
/// Processes are a lightweight grouping mechanism: variables and actions can
/// be tagged with the process that owns them, which downstream crates use to
/// derive constraint-graph node partitions ("the variables of node `j`").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub usize);

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of a variable within a program.
///
/// Obtained from [`ProgramBuilder::var`] and used to index [`State`]s. Ids
/// are only meaningful for the program that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The positional index of this variable in its program's declaration
    /// order (also its slot index within a [`State`]).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct a `VarId` from a raw slot index.
    ///
    /// Intended for tooling that reconstructs ids (e.g. deserialized traces);
    /// using an index that was never declared on the target program will
    /// cause panics or domain errors downstream.
    pub fn from_index(index: usize) -> Self {
        VarId(index as u32)
    }
}

impl std::fmt::Display for VarId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}
