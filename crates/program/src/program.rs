//! Programs and their construction.

use rand::Rng;

use crate::action::{Action, ActionId, ActionKind};
use crate::state::State;
use crate::value::{Domain, DomainError};
use crate::{ProcessId, VarId};

/// A declared program variable: name, domain, and optional owning process.
#[derive(Debug, Clone)]
pub struct VarDecl {
    name: String,
    domain: Domain,
    process: Option<ProcessId>,
}

impl VarDecl {
    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The variable's domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The owning process, if any.
    pub fn process(&self) -> Option<ProcessId> {
        self.process
    }
}

/// Errors arising while assembling or using a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A state was supplied with the wrong number of slots.
    WrongArity {
        /// Slots expected (the number of declared variables).
        expected: usize,
        /// Slots supplied.
        got: usize,
    },
    /// A slot value fell outside its variable's domain.
    OutOfDomain(DomainError),
    /// An operation required every domain to be bounded, but one is not.
    UnboundedDomain {
        /// Name of the unbounded variable.
        var: String,
    },
    /// Two variables were declared with the same name.
    DuplicateVarName(String),
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::WrongArity { expected, got } => {
                write!(
                    f,
                    "state has {got} slots, program declares {expected} variables"
                )
            }
            ProgramError::OutOfDomain(e) => write!(f, "{e}"),
            ProgramError::UnboundedDomain { var } => {
                write!(f, "variable `{var}` has an unbounded domain")
            }
            ProgramError::DuplicateVarName(n) => {
                write!(f, "variable name `{n}` declared twice")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl From<DomainError> for ProgramError {
    fn from(e: DomainError) -> Self {
        ProgramError::OutOfDomain(e)
    }
}

/// A finite set of variables and a finite set of guarded-command actions
/// (Section 2 of the paper).
///
/// Built with [`Program::builder`]. Programs are immutable once built; the
/// execution engine, model checker and constraint-graph tooling all borrow
/// them.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    vars: Vec<VarDecl>,
    actions: Vec<Action>,
}

impl Program {
    /// Start building a program.
    pub fn builder(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            vars: Vec::new(),
            actions: Vec::new(),
        }
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared variables in declaration order.
    pub fn vars(&self) -> &[VarDecl] {
        &self.vars
    }

    /// Number of declared variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// The declaration of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this program.
    pub fn var(&self, var: VarId) -> &VarDecl {
        &self.vars[var.index()]
    }

    /// Look up a variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    /// All variable ids, in declaration order.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len()).map(|i| VarId(i as u32))
    }

    /// Declared actions in declaration order.
    pub fn actions(&self) -> &[Action] {
        self.actions.as_slice()
    }

    /// Number of declared actions.
    pub fn action_count(&self) -> usize {
        self.actions.len()
    }

    /// The action with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn action(&self, id: ActionId) -> &Action {
        &self.actions[id.index()]
    }

    /// All action ids, in declaration order.
    pub fn action_ids(&self) -> impl Iterator<Item = ActionId> + '_ {
        (0..self.actions.len()).map(|i| ActionId(i as u32))
    }

    /// Ids of the actions of the given kind.
    pub fn actions_of_kind(&self, kind: ActionKind) -> Vec<ActionId> {
        self.action_ids()
            .filter(|id| self.action(*id).kind() == kind)
            .collect()
    }

    /// Ids of the actions enabled at `state`.
    pub fn enabled_actions(&self, state: &State) -> Vec<ActionId> {
        self.action_ids()
            .filter(|id| self.action(*id).enabled(state))
            .collect()
    }

    /// Whether any action is enabled at `state`.
    pub fn any_enabled(&self, state: &State) -> bool {
        self.actions.iter().any(|a| a.enabled(state))
    }

    /// Validate that `state` has the right arity and every slot is within
    /// its domain.
    ///
    /// # Errors
    ///
    /// [`ProgramError::WrongArity`] or [`ProgramError::OutOfDomain`].
    pub fn validate_state(&self, state: &State) -> Result<(), ProgramError> {
        if state.len() != self.vars.len() {
            return Err(ProgramError::WrongArity {
                expected: self.vars.len(),
                got: state.len(),
            });
        }
        for (i, decl) in self.vars.iter().enumerate() {
            let v = state.slots()[i];
            if !decl.domain.contains(v) {
                return Err(ProgramError::OutOfDomain(DomainError {
                    var: decl.name.clone(),
                    value: v,
                    domain: decl.domain.to_string(),
                }));
            }
        }
        Ok(())
    }

    /// Build a validated state from raw slot values.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Program::validate_state`].
    pub fn state_from(&self, slots: impl Into<Vec<i64>>) -> Result<State, ProgramError> {
        let state = State::new(slots);
        self.validate_state(&state)?;
        Ok(state)
    }

    /// A state with every variable at its domain minimum.
    pub fn min_state(&self) -> State {
        self.vars.iter().map(|v| v.domain.min_value()).collect()
    }

    /// Draw a uniformly random state (each variable sampled independently
    /// from its domain).
    pub fn random_state<R: Rng + ?Sized>(&self, rng: &mut R) -> State {
        self.vars.iter().map(|v| v.domain.sample(rng)).collect()
    }

    /// Whether every variable's domain is bounded (a prerequisite for
    /// exhaustive state-space enumeration).
    pub fn is_bounded(&self) -> bool {
        self.vars.iter().all(|v| v.domain.is_bounded())
    }

    /// The size of the full state space, or `None` if some domain is
    /// unbounded or the product overflows `u128`.
    pub fn state_space_size(&self) -> Option<u128> {
        self.vars
            .iter()
            .try_fold(1u128, |acc, v| acc.checked_mul(v.domain.size()? as u128))
    }

    /// Iterate over *every* state of a bounded program, in lexicographic
    /// slot order.
    ///
    /// # Errors
    ///
    /// [`ProgramError::UnboundedDomain`] if any variable is unbounded.
    pub fn enumerate_states(&self) -> Result<StateIter<'_>, ProgramError> {
        for v in &self.vars {
            if !v.domain.is_bounded() {
                return Err(ProgramError::UnboundedDomain {
                    var: v.name.clone(),
                });
            }
        }
        Ok(StateIter {
            program: self,
            current: Some(self.min_state()),
        })
    }

    /// Render `state` with variable names and domain-aware values, e.g.
    /// `c.0=red sn.0=true`.
    pub fn render_state(&self, state: &State) -> String {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| format!("{}={}", v.name, v.domain.render(state.slots()[i])))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Iterator over every state of a bounded program.
///
/// Produced by [`Program::enumerate_states`].
#[derive(Debug)]
pub struct StateIter<'a> {
    program: &'a Program,
    current: Option<State>,
}

impl Iterator for StateIter<'_> {
    type Item = State;

    fn next(&mut self) -> Option<State> {
        let state = self.current.take()?;
        // Compute the lexicographic successor, odometer-style.
        let mut next = state.clone();
        let mut i = self.program.vars.len();
        loop {
            if i == 0 {
                // Odometer wrapped: `state` was the last state.
                self.current = None;
                break;
            }
            i -= 1;
            let var = VarId(i as u32);
            let domain = &self.program.vars[i].domain;
            let v = next.get(var);
            // Find the next domain value above v, if any.
            let succ = domain.values().find(|&candidate| candidate > v);
            match succ {
                Some(s) => {
                    next.set(var, s);
                    self.current = Some(next);
                    break;
                }
                None => {
                    next.set(var, domain.min_value());
                    // carry into slot i-1
                }
            }
        }
        Some(state)
    }
}

/// Incremental construction of a [`Program`].
///
/// Obtained from [`Program::builder`]. Variables must be declared before the
/// actions that use them (declaration returns the [`VarId`] the action
/// closures capture).
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    vars: Vec<VarDecl>,
    actions: Vec<Action>,
}

impl ProgramBuilder {
    /// Declare a variable and return its id.
    pub fn var(&mut self, name: impl Into<String>, domain: Domain) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDecl {
            name: name.into(),
            domain,
            process: None,
        });
        id
    }

    /// Declare a variable owned by `process`.
    pub fn var_of(&mut self, name: impl Into<String>, domain: Domain, process: ProcessId) -> VarId {
        let id = self.var(name, domain);
        self.vars[id.index()].process = Some(process);
        id
    }

    /// Add a fully-constructed action and return its id.
    pub fn add_action(&mut self, action: Action) -> ActionId {
        let id = ActionId(self.actions.len() as u32);
        self.actions.push(action);
        id
    }

    /// Shorthand for adding a [`ActionKind::Closure`] action.
    pub fn closure_action<I, J>(
        &mut self,
        name: impl Into<String>,
        reads: I,
        writes: J,
        guard: impl Fn(&State) -> bool + Send + Sync + 'static,
        effect: impl Fn(&mut State) + Send + Sync + 'static,
    ) -> ActionId
    where
        I: IntoIterator<Item = VarId>,
        J: IntoIterator<Item = VarId>,
    {
        self.add_action(Action::new(
            name,
            ActionKind::Closure,
            reads,
            writes,
            guard,
            effect,
        ))
    }

    /// Shorthand for adding a [`ActionKind::Convergence`] action.
    pub fn convergence_action<I, J>(
        &mut self,
        name: impl Into<String>,
        reads: I,
        writes: J,
        guard: impl Fn(&State) -> bool + Send + Sync + 'static,
        effect: impl Fn(&mut State) + Send + Sync + 'static,
    ) -> ActionId
    where
        I: IntoIterator<Item = VarId>,
        J: IntoIterator<Item = VarId>,
    {
        self.add_action(Action::new(
            name,
            ActionKind::Convergence,
            reads,
            writes,
            guard,
            effect,
        ))
    }

    /// Shorthand for adding a [`ActionKind::Combined`] action (a merged
    /// closure + convergence action, as in the paper's final programs).
    pub fn combined_action<I, J>(
        &mut self,
        name: impl Into<String>,
        reads: I,
        writes: J,
        guard: impl Fn(&State) -> bool + Send + Sync + 'static,
        effect: impl Fn(&mut State) + Send + Sync + 'static,
    ) -> ActionId
    where
        I: IntoIterator<Item = VarId>,
        J: IntoIterator<Item = VarId>,
    {
        self.add_action(Action::new(
            name,
            ActionKind::Combined,
            reads,
            writes,
            guard,
            effect,
        ))
    }

    /// Finish, validating variable-name uniqueness.
    ///
    /// # Panics
    ///
    /// Panics if two variables share a name (a construction bug, not a
    /// runtime condition). Use [`ProgramBuilder::try_build`] for a fallible
    /// variant.
    pub fn build(self) -> Program {
        self.try_build().expect("program construction failed")
    }

    /// Fallible variant of [`ProgramBuilder::build`].
    ///
    /// # Errors
    ///
    /// [`ProgramError::DuplicateVarName`] if two variables share a name.
    pub fn try_build(self) -> Result<Program, ProgramError> {
        let mut seen = std::collections::HashSet::new();
        for v in &self.vars {
            if !seen.insert(v.name.as_str()) {
                return Err(ProgramError::DuplicateVarName(v.name.clone()));
            }
        }
        Ok(Program {
            name: self.name,
            vars: self.vars,
            actions: self.actions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_var_program() -> (Program, VarId, VarId) {
        let mut b = Program::builder("p");
        let x = b.var("x", Domain::range(0, 2));
        let y = b.var("y", Domain::Bool);
        b.closure_action(
            "inc",
            [x],
            [x],
            move |s| s.get(x) < 2,
            move |s| {
                let v = s.get(x);
                s.set(x, v + 1);
            },
        );
        b.convergence_action(
            "reset",
            [x, y],
            [y],
            move |s| s.get_bool(y),
            move |s| {
                s.set_bool(y, false);
            },
        );
        (b.build(), x, y)
    }

    #[test]
    fn lookup_and_metadata() {
        let (p, x, _) = two_var_program();
        assert_eq!(p.name(), "p");
        assert_eq!(p.var_count(), 2);
        assert_eq!(p.action_count(), 2);
        assert_eq!(p.var_by_name("x"), Some(x));
        assert_eq!(p.var_by_name("zz"), None);
        assert_eq!(p.var(x).name(), "x");
        assert_eq!(p.actions_of_kind(ActionKind::Closure).len(), 1);
        assert_eq!(p.actions_of_kind(ActionKind::Convergence).len(), 1);
    }

    #[test]
    fn enabled_actions() {
        let (p, _, _) = two_var_program();
        let s = p.state_from([0, 1]).unwrap();
        let enabled = p.enabled_actions(&s);
        assert_eq!(enabled.len(), 2);
        let s = p.state_from([2, 0]).unwrap();
        assert!(p.enabled_actions(&s).is_empty());
        assert!(!p.any_enabled(&s));
    }

    #[test]
    fn state_validation() {
        let (p, _, _) = two_var_program();
        assert!(p.state_from([0, 0]).is_ok());
        assert!(matches!(
            p.state_from([3, 0]),
            Err(ProgramError::OutOfDomain(_))
        ));
        assert!(matches!(
            p.state_from([0]),
            Err(ProgramError::WrongArity {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn state_space_size_and_enumeration() {
        let (p, _, _) = two_var_program();
        assert_eq!(p.state_space_size(), Some(6));
        let states: Vec<State> = p.enumerate_states().unwrap().collect();
        assert_eq!(states.len(), 6);
        // All distinct, all valid.
        let set: std::collections::HashSet<_> = states.iter().cloned().collect();
        assert_eq!(set.len(), 6);
        for s in &states {
            p.validate_state(s).unwrap();
        }
        // Lexicographic: first is the min state, last is the max.
        assert_eq!(states[0], p.min_state());
        assert_eq!(states[5], State::new(vec![2, 1]));
    }

    #[test]
    fn enumeration_rejects_unbounded() {
        let mut b = Program::builder("u");
        b.var("x", Domain::Unbounded);
        let p = b.build();
        assert!(!p.is_bounded());
        assert_eq!(p.state_space_size(), None);
        assert!(matches!(
            p.enumerate_states(),
            Err(ProgramError::UnboundedDomain { .. })
        ));
    }

    #[test]
    fn random_states_are_valid() {
        let (p, _, _) = two_var_program();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = p.random_state(&mut rng);
            p.validate_state(&s).unwrap();
        }
    }

    #[test]
    fn duplicate_var_names_rejected() {
        let mut b = Program::builder("d");
        b.var("x", Domain::Bool);
        b.var("x", Domain::Bool);
        assert!(matches!(
            b.try_build(),
            Err(ProgramError::DuplicateVarName(_))
        ));
    }

    #[test]
    fn render_state_uses_names_and_labels() {
        let mut b = Program::builder("r");
        let c = b.var("c", Domain::enumeration(["green", "red"]));
        let n = b.var("n", Domain::range(0, 5));
        let p = b.build();
        let mut s = p.min_state();
        s.set(c, 1);
        s.set(n, 4);
        assert_eq!(p.render_state(&s), "c=red n=4");
    }

    #[test]
    fn process_ownership() {
        let mut b = Program::builder("o");
        let x = b.var_of("x", Domain::Bool, ProcessId(2));
        let p = b.build();
        assert_eq!(p.var(x).process(), Some(ProcessId(2)));
    }

    #[test]
    fn empty_program_enumerates_one_state() {
        let p = Program::builder("empty").build();
        let states: Vec<State> = p.enumerate_states().unwrap().collect();
        assert_eq!(states.len(), 1);
        assert!(states[0].is_empty());
    }
}
