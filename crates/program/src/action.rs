//! Guarded-command actions.

use std::sync::Arc;

use crate::{ProcessId, State, VarId};

type GuardFn = Arc<dyn Fn(&State) -> bool + Send + Sync>;
type EffectFn = Arc<dyn Fn(&mut State) + Send + Sync>;

/// Identifier of an action within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActionId(pub(crate) u32);

impl ActionId {
    /// The positional index of this action in its program.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct an `ActionId` from a raw index (for tooling; must refer to
    /// an action that exists on the target program).
    pub fn from_index(index: usize) -> Self {
        ActionId(index as u32)
    }
}

impl std::fmt::Display for ActionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The two roles an action can play in the paper's design method
/// (Section 3): *closure* actions perform the intended computation when the
/// invariant holds; *convergence* actions re-establish violated constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionKind {
    /// Performs the intended computation; must preserve the invariant and
    /// the fault span.
    Closure,
    /// Repairs a violated constraint; enabled only where the constraint is
    /// false.
    Convergence,
    /// An action combining a closure action and a convergence action with
    /// the same statement (the paper merges the propagation and repair
    /// actions of the diffusing computation, and the copy actions of the
    /// token ring, this way).
    Combined,
}

impl std::fmt::Display for ActionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActionKind::Closure => f.write_str("closure"),
            ActionKind::Convergence => f.write_str("convergence"),
            ActionKind::Combined => f.write_str("combined"),
        }
    }
}

/// A guarded command `guard -> statement` with declared read/write sets.
///
/// The declared sets are the contract consumed by the constraint-graph
/// machinery; [`crate::RunConfig::validate_writes`] makes the engine assert
/// at runtime that effects only modify declared `writes`.
#[derive(Clone)]
pub struct Action {
    name: String,
    kind: ActionKind,
    process: Option<ProcessId>,
    reads: Arc<[VarId]>,
    writes: Arc<[VarId]>,
    guard: GuardFn,
    effect: EffectFn,
}

impl Action {
    /// Create an action.
    ///
    /// `reads` should include every variable the guard or effect inspects;
    /// `writes` every variable the effect may modify. (Writes need not be
    /// repeated in `reads`.)
    pub fn new<I, J>(
        name: impl Into<String>,
        kind: ActionKind,
        reads: I,
        writes: J,
        guard: impl Fn(&State) -> bool + Send + Sync + 'static,
        effect: impl Fn(&mut State) + Send + Sync + 'static,
    ) -> Self
    where
        I: IntoIterator<Item = VarId>,
        J: IntoIterator<Item = VarId>,
    {
        let mut reads: Vec<VarId> = reads.into_iter().collect();
        reads.sort_unstable();
        reads.dedup();
        let mut writes: Vec<VarId> = writes.into_iter().collect();
        writes.sort_unstable();
        writes.dedup();
        Action {
            name: name.into(),
            kind,
            process: None,
            reads: reads.into(),
            writes: writes.into(),
            guard: Arc::new(guard),
            effect: Arc::new(effect),
        }
    }

    /// Tag the action with an owning process.
    pub fn owned_by(mut self, process: ProcessId) -> Self {
        self.process = Some(process);
        self
    }

    /// The action's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this is a closure, convergence, or combined action.
    pub fn kind(&self) -> ActionKind {
        self.kind
    }

    /// The owning process, if tagged.
    pub fn process(&self) -> Option<ProcessId> {
        self.process
    }

    /// Declared read set (sorted, deduplicated).
    pub fn reads(&self) -> &[VarId] {
        &self.reads
    }

    /// Declared write set (sorted, deduplicated).
    pub fn writes(&self) -> &[VarId] {
        &self.writes
    }

    /// Whether the guard holds at `state`.
    #[inline]
    pub fn enabled(&self, state: &State) -> bool {
        (self.guard)(state)
    }

    /// Execute the statement in place.
    ///
    /// The engine only calls this when [`Action::enabled`] holds; calling it
    /// in a state where the guard is false executes the statement anyway
    /// (guards are checked by schedulers, not effects).
    #[inline]
    pub fn apply(&self, state: &mut State) {
        (self.effect)(state);
    }

    /// Execute the statement on a copy of `state` and return the successor.
    pub fn successor(&self, state: &State) -> State {
        let mut next = state.clone();
        self.apply(&mut next);
        next
    }

    /// Execute the statement into a caller-provided scratch state: `out`
    /// becomes the successor of `state` without allocating. The
    /// hot-loop counterpart of [`Action::successor`].
    ///
    /// # Panics
    ///
    /// Panics if `out` and `state` have different lengths.
    #[inline]
    pub fn successor_into(&self, state: &State, out: &mut State) {
        out.copy_from(state);
        self.apply(out);
    }
}

impl std::fmt::Debug for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Action")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("process", &self.process)
            .field("reads", &self.reads)
            .field("writes", &self.writes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn guard_and_effect() {
        let x = v(0);
        let a = Action::new(
            "inc",
            ActionKind::Closure,
            [x],
            [x],
            move |s| s.get(x) < 3,
            move |s| {
                let val = s.get(x);
                s.set(x, val + 1);
            },
        );
        let s0 = State::new(vec![0]);
        assert!(a.enabled(&s0));
        let s1 = a.successor(&s0);
        assert_eq!(s1.get(x), 1);
        assert_eq!(s0.get(x), 0, "successor must not mutate the source state");

        let s3 = State::new(vec![3]);
        assert!(!a.enabled(&s3));
    }

    #[test]
    fn declared_sets_are_normalized() {
        let a = Action::new(
            "a",
            ActionKind::Convergence,
            [v(2), v(0), v(2)],
            [v(1), v(1)],
            |_| true,
            |_| {},
        );
        assert_eq!(a.reads(), &[v(0), v(2)]);
        assert_eq!(a.writes(), &[v(1)]);
    }

    #[test]
    fn process_tagging() {
        let a =
            Action::new("a", ActionKind::Closure, [], [], |_| true, |_| {}).owned_by(ProcessId(4));
        assert_eq!(a.process(), Some(ProcessId(4)));
    }

    #[test]
    fn kind_display() {
        assert_eq!(ActionKind::Closure.to_string(), "closure");
        assert_eq!(ActionKind::Convergence.to_string(), "convergence");
        assert_eq!(ActionKind::Combined.to_string(), "combined");
    }

    #[test]
    fn successor_into_matches_successor() {
        let x = v(0);
        let a = Action::new(
            "inc",
            ActionKind::Closure,
            [x],
            [x],
            |_| true,
            move |s| {
                let val = s.get(x);
                s.set(x, val + 1);
            },
        );
        let s0 = State::new(vec![4]);
        let mut scratch = State::zeroed(1);
        a.successor_into(&s0, &mut scratch);
        assert_eq!(scratch, a.successor(&s0));
        assert_eq!(s0.get(x), 4, "source state must not change");
    }

    #[test]
    fn apply_in_place() {
        let x = v(0);
        let a = Action::new(
            "zero",
            ActionKind::Convergence,
            [x],
            [x],
            |_| true,
            move |s| s.set(x, 0),
        );
        let mut s = State::new(vec![9]);
        a.apply(&mut s);
        assert_eq!(s.get(x), 0);
    }
}
