//! Bit-identity of fleet results across scheduling choices.
//!
//! The fleet's headline guarantee: worker count and slab size are pure
//! scheduling knobs — they must not change a single bit of the outcome
//! (digest, counters, histogram, per-config aggregates). These tests pin
//! that across a grid of `{workers} × {slab sizes}` and, via proptest,
//! across master seeds.

use nonmask_fleet::{run_fleet, FleetConfig, FleetProtocol, FleetReport};
use nonmask_obs::Journal;
use proptest::prelude::*;

fn run(config: &FleetConfig) -> FleetReport {
    run_fleet(config, &Journal::disabled()).expect("fleet run failed")
}

fn mixed_config(tenants: u64, master_seed: u64) -> FleetConfig {
    FleetConfig {
        protocols: FleetProtocol::mixed(),
        tenants,
        master_seed,
        faults_per_tenant: 2,
        ..FleetConfig::default()
    }
}

/// Every observable aggregate must match, not just the digest.
fn assert_identical(a: &FleetReport, b: &FleetReport, what: &str) {
    assert_eq!(a.digest(), b.digest(), "{what}: digest diverged");
    assert_eq!(a.counters, b.counters, "{what}: counters diverged");
    assert_eq!(a.histogram, b.histogram, "{what}: histogram diverged");
    assert_eq!(
        a.configs, b.configs,
        "{what}: per-config aggregates diverged"
    );
    assert_eq!(
        a.enumerations, b.enumerations,
        "{what}: cache misses diverged"
    );
}

#[test]
fn bit_identical_across_workers_and_slab_sizes() {
    let baseline = {
        let mut c = mixed_config(2_000, 0xABCD_EF01);
        c.workers = 1;
        c.slab_size = 64;
        run(&c)
    };
    assert_eq!(baseline.counters.get("tenants"), 2_000);
    assert_eq!(baseline.counters.get("stabilized"), 2_000);
    assert_eq!(baseline.violations(), 0);

    for workers in [1, 4, 7] {
        for slab_size in [1, 64, 4096] {
            let mut c = mixed_config(2_000, 0xABCD_EF01);
            c.workers = workers;
            c.slab_size = slab_size;
            let report = run(&c);
            assert_identical(
                &baseline,
                &report,
                &format!("workers={workers} slab={slab_size}"),
            );
            assert_eq!(report.workers, workers, "resolved workers reported");
        }
    }
}

#[test]
fn verdict_cache_misses_once_per_config() {
    let report = run(&mixed_config(1_000, 42));
    // 4 configurations in the mix; every tenant looked the verdict up.
    assert_eq!(report.enumerations, 4);
    assert_eq!(report.counters.get("cache_lookups"), 1_000);
    let expected = (1_000.0 - 4.0) / 1_000.0;
    assert!((report.cache_hit_rate() - expected).abs() < 1e-12);
}

#[test]
fn every_latency_respects_the_certified_bound() {
    let report = run(&mixed_config(3_000, 0x0BAD_CAFE));
    assert_eq!(report.counters.get("stuck"), 0);
    assert_eq!(report.counters.get("exhausted"), 0);
    for c in &report.configs {
        let bound = c.bound.expect("fleet protocols converge");
        assert!(
            c.max_latency <= bound,
            "{}: empirical latency {} exceeds certified bound {}",
            c.key,
            c.max_latency,
            bound
        );
    }
    // The histogram agrees with the per-config tallies.
    assert_eq!(report.histogram.total(), 3_000);
    let fleet_max = report.configs.iter().map(|c| c.max_latency).max().unwrap();
    assert_eq!(report.histogram.max(), fleet_max);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary master seeds, a single-threaded tiny-slab run and a
    /// multi-threaded large-slab run are bit-identical and respect the
    /// checker's bounds.
    #[test]
    fn st_mt_identity_over_seeds(master_seed in any::<u64>()) {
        let mut st = mixed_config(300, master_seed);
        st.workers = 1;
        st.slab_size = 7;
        let mut mt = mixed_config(300, master_seed);
        mt.workers = 4;
        mt.slab_size = 128;
        let a = run(&st);
        let b = run(&mt);
        assert_identical(&a, &b, &format!("seed={master_seed:#x}"));
        prop_assert_eq!(a.violations(), 0);
    }
}
