//! The batch-stepped fleet engine.
//!
//! Tenants (protocol instances) live in flat per-slab arenas — `stride`
//! contiguous `i64` slots of state plus a compact [`TenantMeta`] record
//! each — and are stepped in bursts of [`TICKS_PER_SWEEP`] ticks so a
//! slab's working set stays cache-resident. Slabs are distributed over a
//! work-stealing pool; everything a tenant does is a pure function of
//! `(protocols, master_seed, tenant_id, faults_per_tenant, max_steps)`,
//! so results are bit-identical across worker counts and slab sizes.
//!
//! A *tick* examines one tenant once: if the goal holds it either injects
//! the next pending fault (starting a fresh convergence episode) or
//! retires the tenant; otherwise it fires the next enabled action in
//! round-robin order. The goal is checked **before** every step, so each
//! counted step departs a ¬goal state — which is exactly the regime the
//! checker's `worst_case_moves` bound quantifies, making the fleet's
//! empirical latencies directly comparable to the certified bound.

use std::time::Instant;

use nonmask_obs::{CounterSet, Counters, Journal};
use nonmask_program::{ActionId, State, VarId};
use rand::{split_seed, Rng, SplitMix64};

use crate::cache::VerdictCache;
use crate::config::FleetConfig;
use crate::hist::LatencyHistogram;
use crate::report::{ConfigReport, FleetReport};
use crate::FleetError;

/// Ticks granted to one tenant per sweep visit: long enough to amortize
/// the arena⇄scratch copies, short enough that a slab's tenants advance
/// together (cache-friendly interleaving). Any value yields identical
/// results — per-tenant execution is sequential either way.
const TICKS_PER_SWEEP: u32 = 64;

const RUNNING: u8 = 0;
const STABILIZED: u8 = 1;
const STUCK: u8 = 2;
const EXHAUSTED: u8 = 3;

/// Per-tenant bookkeeping besides the arena state slots: 24 bytes.
///
/// The RNG is a full [`SplitMix64`] (8 bytes of state), so each tenant
/// carries its own independent fault stream split from the master seed.
struct TenantMeta {
    rng: SplitMix64,
    /// Steps taken in the current convergence episode.
    episode_steps: u32,
    /// Steps of the final episode (set when the tenant stabilizes).
    latency: u32,
    /// Round-robin position in the program's action list.
    cursor: u16,
    faults_left: u16,
    status: u8,
}

/// Per-configuration aggregates of one slab (later of the whole fleet).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct ConfigAgg {
    pub tenants: u64,
    pub steps: u64,
    pub stabilized: u64,
    pub stuck: u64,
    pub exhausted: u64,
    pub max_latency: u64,
}

impl ConfigAgg {
    fn merge(&mut self, other: &ConfigAgg) {
        self.tenants += other.tenants;
        self.steps += other.steps;
        self.stabilized += other.stabilized;
        self.stuck += other.stuck;
        self.exhausted += other.exhausted;
        self.max_latency = self.max_latency.max(other.max_latency);
    }
}

/// Everything one slab produces; merged in task order (and mergeable in
/// any order — counters and histograms are commutative monoids).
struct SlabOutcome {
    counters: Counters,
    hist: LatencyHistogram,
    configs: Vec<ConfigAgg>,
}

/// Run one tenant for up to `TICKS_PER_SWEEP` ticks on the scratch state.
/// Returns `(ticks, steps, faults)` consumed.
fn burst(
    meta: &mut TenantMeta,
    state: &mut State,
    rt: &crate::cache::ConfigRuntime,
    max_steps: u32,
) -> (u64, u64, u64) {
    let program = rt.program();
    let goal = rt.goal();
    let action_count = program.action_count();
    let (mut ticks, mut steps, mut faults) = (0u64, 0u64, 0u64);
    for _ in 0..TICKS_PER_SWEEP {
        ticks += 1;
        if goal.holds(state) {
            if meta.faults_left > 0 {
                // Transient fault: corrupt one variable, then converge again.
                meta.faults_left -= 1;
                faults += 1;
                let var = meta.rng.gen_range(0..program.var_count());
                let value = program.vars()[var].domain().sample(&mut meta.rng);
                state.set(VarId::from_index(var), value);
                meta.episode_steps = 0;
            } else {
                meta.status = STABILIZED;
                meta.latency = meta.episode_steps;
                break;
            }
        } else if meta.episode_steps >= max_steps {
            meta.status = EXHAUSTED;
            break;
        } else {
            // Fire the next enabled action, round-robin from the cursor.
            let mut fired = false;
            for k in 0..action_count {
                let idx = (meta.cursor as usize + k) % action_count;
                let action = program.action(ActionId::from_index(idx));
                if action.enabled(state) {
                    action.apply(state);
                    meta.cursor = ((idx + 1) % action_count) as u16;
                    meta.episode_steps += 1;
                    steps += 1;
                    fired = true;
                    break;
                }
            }
            if !fired {
                // A deadlock outside the goal: `worst_case_moves` returning
                // a finite bound certifies this cannot happen, so reaching
                // here contradicts the cached verdict.
                meta.status = STUCK;
                break;
            }
        }
    }
    (ticks, steps, faults)
}

/// Initialize and run every tenant of slab `slab` to completion.
fn process_slab(
    config: &FleetConfig,
    cache: &VerdictCache,
    slab: usize,
) -> Result<SlabOutcome, FleetError> {
    let stride = cache.stride();
    let ncfg = cache.len() as u64;
    let lo = slab as u64 * config.slab_size as u64;
    let hi = (lo + config.slab_size as u64).min(config.tenants);
    let n = (hi - lo) as usize;

    let mut arena = vec![0i64; n * stride];
    let mut metas: Vec<TenantMeta> = Vec::with_capacity(n);
    let mut scratch: Vec<State> = (0..cache.len())
        .map(|i| State::zeroed(cache.runtime(i).program().var_count()))
        .collect();
    let mut agg = vec![ConfigAgg::default(); cache.len()];
    let mut hist = LatencyHistogram::new();
    let (mut ticks, mut steps, mut faults) = (0u64, 0u64, 0u64);

    // Init pass: one verdict lookup per tenant (the first of each
    // configuration anywhere in the fleet pays the enumeration), then a
    // uniformly random initial state drawn from the tenant's own stream.
    for t in 0..n {
        let tenant_id = lo + t as u64;
        let cfg_idx = (tenant_id % ncfg) as usize;
        cache.verdict(cfg_idx)?;
        let program = cache.runtime(cfg_idx).program();
        let mut rng = SplitMix64(split_seed(config.master_seed, tenant_id));
        let slots = &mut arena[t * stride..t * stride + program.var_count()];
        for (slot, decl) in slots.iter_mut().zip(program.vars()) {
            *slot = decl.domain().sample(&mut rng);
        }
        metas.push(TenantMeta {
            rng,
            episode_steps: 0,
            latency: u32::MAX,
            cursor: 0,
            faults_left: config.faults_per_tenant as u16,
            status: RUNNING,
        });
        agg[cfg_idx].tenants += 1;
    }

    // Sweep until every tenant has retired. Each visit loads the tenant
    // into the per-config scratch state, bursts up to TICKS_PER_SWEEP
    // ticks, and stores it back — no allocation anywhere in the loop.
    let mut live = n;
    while live > 0 {
        for t in 0..n {
            if metas[t].status != RUNNING {
                continue;
            }
            let tenant_id = lo + t as u64;
            let cfg_idx = (tenant_id % ncfg) as usize;
            let rt = cache.runtime(cfg_idx);
            let var_count = rt.program().var_count();
            let state = &mut scratch[cfg_idx];
            state.copy_from_slots(&arena[t * stride..t * stride + var_count]);

            let meta = &mut metas[t];
            let (dt, ds, df) = burst(meta, state, rt, config.max_steps);
            ticks += dt;
            faults += df;
            steps += ds;
            agg[cfg_idx].steps += ds;

            arena[t * stride..t * stride + var_count].copy_from_slice(state.slots());
            if meta.status != RUNNING {
                live -= 1;
                let a = &mut agg[cfg_idx];
                match meta.status {
                    STABILIZED => {
                        a.stabilized += 1;
                        let latency = meta.latency as u64;
                        a.max_latency = a.max_latency.max(latency);
                        hist.record(latency);
                    }
                    STUCK => a.stuck += 1,
                    _ => a.exhausted += 1,
                }
            }
        }
    }

    let mut counters = Counters::new("fleet");
    counters.add("tenants", n as u64);
    counters.add("ticks", ticks);
    counters.add("steps", steps);
    counters.add("faults", faults);
    counters.add("cache_lookups", n as u64);
    counters.add("stabilized", agg.iter().map(|a| a.stabilized).sum());
    counters.add("stuck", agg.iter().map(|a| a.stuck).sum());
    counters.add("exhausted", agg.iter().map(|a| a.exhausted).sum());
    Ok(SlabOutcome {
        counters,
        hist,
        configs: agg,
    })
}

/// Run a fleet to completion: every tenant stepped to stabilization (or a
/// verdict-contradicting outcome), aggregates merged deterministically.
///
/// Population summaries are journaled as [`nonmask_obs::Event::Counter`]
/// records under the scopes `fleet`, `fleet-latency`, and
/// `fleet-<config key>`.
///
/// # Errors
///
/// [`FleetError::Config`] for an invalid configuration,
/// [`FleetError::Check`] when a verdict enumeration fails, and
/// [`FleetError::Worker`] when a worker panics.
pub fn run_fleet(config: &FleetConfig, journal: &Journal) -> Result<FleetReport, FleetError> {
    if config.tenants == 0 {
        return Err(FleetError::Config("fleet has zero tenants".into()));
    }
    if config.slab_size == 0 {
        return Err(FleetError::Config("slab_size must be positive".into()));
    }
    if config.faults_per_tenant > u16::MAX as u32 {
        return Err(FleetError::Config(format!(
            "faults_per_tenant {} exceeds {}",
            config.faults_per_tenant,
            u16::MAX
        )));
    }
    let cache = VerdictCache::build(&config.protocols)?;
    let workers = if config.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        config.workers
    };
    let slabs = config.tenants.div_ceil(config.slab_size as u64) as usize;

    let started = Instant::now();
    let outcomes =
        nonmask_checker::steal_tasks(slabs, workers, |slab| process_slab(config, &cache, slab))
            .map_err(|e| FleetError::Worker(e.to_string()))?;
    let wall = started.elapsed();

    // Merge in task order. The per-slab outcomes are commutative monoids,
    // so any order would produce the same aggregates — task order makes
    // that manifest.
    let mut counters = Counters::new("fleet");
    let mut hist = LatencyHistogram::new();
    let mut agg = vec![ConfigAgg::default(); cache.len()];
    for outcome in outcomes {
        let outcome = outcome?;
        counters.merge(&outcome.counters);
        hist.merge(&outcome.hist);
        for (into, from) in agg.iter_mut().zip(&outcome.configs) {
            into.merge(from);
        }
    }

    // Misses are counted before the report pass so report-side verdict
    // reads cannot inflate them: every enumeration below was demanded by
    // a tenant.
    let enumerations = cache.enumerations();
    let mut configs = Vec::new();
    for (i, acc) in agg.iter().enumerate() {
        if acc.tenants == 0 {
            continue;
        }
        let verdict = cache.verdict(i)?;
        configs.push(ConfigReport {
            key: cache.runtime(i).key().to_string(),
            states: verdict.states,
            bound: verdict.bound,
            tenants: acc.tenants,
            steps: acc.steps,
            stabilized: acc.stabilized,
            stuck: acc.stuck,
            exhausted: acc.exhausted,
            max_latency: acc.max_latency,
        });
    }

    let bytes_per_instance =
        (cache.stride() * std::mem::size_of::<i64>() + std::mem::size_of::<TenantMeta>()) as u64;
    let report = FleetReport {
        tenants: config.tenants,
        workers,
        slab_size: config.slab_size,
        master_seed: config.master_seed,
        faults_per_tenant: config.faults_per_tenant,
        max_steps: config.max_steps,
        bytes_per_instance,
        enumerations,
        counters,
        histogram: hist,
        configs,
        wall,
    };

    if journal.is_enabled() {
        report.counters.emit(journal);
        let mut latency = Counters::new("fleet-latency");
        latency.add("total", report.histogram.total());
        latency.add("max", report.histogram.max());
        latency.add("p50", report.histogram.percentile(50.0).unwrap_or(0));
        latency.add("p99", report.histogram.percentile(99.0).unwrap_or(0));
        latency.emit(journal);
        for c in &report.configs {
            let mut per = Counters::new(format!("fleet-{}", c.key));
            per.add("states", c.states);
            per.add("bound", c.bound.unwrap_or(0));
            per.add("tenants", c.tenants);
            per.add("steps", c.steps);
            per.add("stabilized", c.stabilized);
            per.add("stuck", c.stuck);
            per.add("exhausted", c.exhausted);
            per.add("max_latency", c.max_latency);
            per.emit(journal);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FleetProtocol;

    #[test]
    fn tenant_meta_fits_the_budget() {
        assert!(
            std::mem::size_of::<TenantMeta>() <= 24,
            "TenantMeta grew to {} bytes",
            std::mem::size_of::<TenantMeta>()
        );
    }

    #[test]
    fn small_fleet_stabilizes_within_bounds() {
        let config = FleetConfig {
            protocols: vec![
                FleetProtocol::TokenRing { nodes: 3, k: 3 },
                FleetProtocol::TokenRing { nodes: 4, k: 4 },
            ],
            tenants: 200,
            slab_size: 16,
            workers: 1,
            ..FleetConfig::default()
        };
        let report = run_fleet(&config, &Journal::disabled()).unwrap();
        assert_eq!(report.counters.get("tenants"), 200);
        assert_eq!(report.counters.get("stabilized"), 200);
        assert_eq!(report.counters.get("stuck"), 0);
        assert_eq!(report.counters.get("exhausted"), 0);
        assert_eq!(report.counters.get("faults"), 200 * 2);
        assert_eq!(report.enumerations, 2, "one miss per configuration");
        assert_eq!(report.counters.get("cache_lookups"), 200);
        assert_eq!(report.histogram.total(), 200);
        for c in &report.configs {
            let bound = c.bound.expect("rings converge");
            assert!(
                c.max_latency <= bound,
                "{}: observed {} > certified bound {}",
                c.key,
                c.max_latency,
                bound
            );
        }
    }

    #[test]
    fn zero_tenants_rejected() {
        let config = FleetConfig {
            tenants: 0,
            ..FleetConfig::default()
        };
        assert!(matches!(
            run_fleet(&config, &Journal::disabled()),
            Err(FleetError::Config(_))
        ));
    }

    #[test]
    fn journal_records_population_summaries() {
        let (journal, buffer) = Journal::memory();
        let config = FleetConfig {
            protocols: vec![FleetProtocol::TokenRing { nodes: 3, k: 3 }],
            tenants: 20,
            slab_size: 8,
            workers: 1,
            ..FleetConfig::default()
        };
        run_fleet(&config, &journal).unwrap();
        journal.flush();
        let contents = buffer.contents();
        assert!(contents.contains(r#""scope":"fleet""#));
        assert!(contents.contains(r#""scope":"fleet-latency""#));
        assert!(contents.contains(r#""scope":"fleet-token-ring-3x3""#));
        // Journals parse back record-for-record (locked schema).
        for line in contents.lines() {
            nonmask_obs::Event::parse_line(line).unwrap();
        }
    }
}
