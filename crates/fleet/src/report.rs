//! Fleet run reports: aggregates, derived rates, and a deterministic
//! digest for cross-configuration bit-identity checks.

use std::time::Duration;

use nonmask_obs::{CounterSet, Counters};

use crate::hist::LatencyHistogram;

/// Per-configuration aggregate of a fleet run, alongside the cached
/// checker verdict it is compared against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigReport {
    /// The configuration's cache key.
    pub key: String,
    /// Reachable states (from the cached verdict).
    pub states: u64,
    /// The checker's worst-case convergence bound; `None` means the
    /// checker found the configuration non-converging.
    pub bound: Option<u64>,
    /// Tenants assigned to this configuration.
    pub tenants: u64,
    /// Total steps its tenants took.
    pub steps: u64,
    /// Tenants that stabilized.
    pub stabilized: u64,
    /// Tenants that deadlocked outside the goal (contradicts a finite
    /// bound — always a violation).
    pub stuck: u64,
    /// Tenants that hit the per-episode step cap (likewise a violation:
    /// the cap is far above any certified bound).
    pub exhausted: u64,
    /// Largest final-episode latency observed among stabilized tenants.
    pub max_latency: u64,
}

impl ConfigReport {
    /// Whether every observed latency respects the certified bound (and
    /// a bound exists at all).
    pub fn within_bound(&self) -> bool {
        match self.bound {
            Some(bound) => self.max_latency <= bound,
            None => false,
        }
    }
}

/// The complete outcome of one [`run_fleet`](crate::run_fleet) call.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Tenants run.
    pub tenants: u64,
    /// Worker threads actually used (auto-detect resolved).
    pub workers: usize,
    /// Slab size used.
    pub slab_size: usize,
    /// Master seed the per-tenant streams were split from.
    pub master_seed: u64,
    /// Faults injected per tenant.
    pub faults_per_tenant: u32,
    /// Per-episode step cap.
    pub max_steps: u32,
    /// Bytes of resident state per tenant: arena stride plus metadata.
    pub bytes_per_instance: u64,
    /// Checker enumerations performed (the verdict cache's miss count).
    pub enumerations: u64,
    /// Fleet-wide counters (scope `fleet`): `tenants`, `ticks`, `steps`,
    /// `faults`, `stabilized`, `stuck`, `exhausted`, `cache_lookups`.
    pub counters: Counters,
    /// Stabilization-latency histogram over all stabilized tenants.
    pub histogram: LatencyHistogram,
    /// Per-configuration aggregates (configurations with tenants).
    pub configs: Vec<ConfigReport>,
    /// Wall-clock duration of the stepping phase.
    pub wall: Duration,
}

impl FleetReport {
    /// Verdict-cache hit rate: `(lookups - misses) / lookups`.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.counters.get("cache_lookups");
        if lookups == 0 {
            return 0.0;
        }
        (lookups - self.enumerations.min(lookups)) as f64 / lookups as f64
    }

    /// Tenants retired per wall-clock second.
    pub fn instances_per_second(&self) -> f64 {
        self.tenants as f64 / self.wall.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Steps executed per wall-clock second.
    pub fn steps_per_second(&self) -> f64 {
        self.counters.get("steps") as f64 / self.wall.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Verdict-contradicting outcomes: stuck or exhausted tenants, plus
    /// configurations whose observed latency escaped the certified bound.
    pub fn violations(&self) -> u64 {
        self.counters.get("stuck")
            + self.counters.get("exhausted")
            + self.configs.iter().filter(|c| !c.within_bound()).count() as u64
    }

    /// The run's outcome as JSON **excluding** every timing-dependent
    /// field and every scheduling knob (`workers`, `slab_size`, wall
    /// time, rates): two runs of the same fleet must render identical
    /// deterministic JSON regardless of thread count or slab size.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"tenants\":");
        out.push_str(&self.tenants.to_string());
        out.push_str(",\"master_seed\":");
        out.push_str(&self.master_seed.to_string());
        out.push_str(",\"faults_per_tenant\":");
        out.push_str(&self.faults_per_tenant.to_string());
        out.push_str(",\"max_steps\":");
        out.push_str(&self.max_steps.to_string());
        out.push_str(",\"bytes_per_instance\":");
        out.push_str(&self.bytes_per_instance.to_string());
        out.push_str(",\"enumerations\":");
        out.push_str(&self.enumerations.to_string());
        out.push_str(",\"counters\":");
        out.push_str(&self.counters.to_json());
        out.push_str(",\"latency\":{\"buckets\":{");
        for (i, (latency, count)) in self.histogram.nonzero().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{latency}\":{count}"));
        }
        out.push_str("},\"overflow\":");
        out.push_str(&self.histogram.overflow().to_string());
        out.push_str("},\"configs\":[");
        for (i, c) in self.configs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"key\":\"{}\",\"states\":{},\"bound\":{},\"tenants\":{},\"steps\":{},\
                 \"stabilized\":{},\"stuck\":{},\"exhausted\":{},\"max_latency\":{}}}",
                c.key,
                c.states,
                c.bound.map_or("null".to_string(), |b| b.to_string()),
                c.tenants,
                c.steps,
                c.stabilized,
                c.stuck,
                c.exhausted,
                c.max_latency,
            ));
        }
        out.push_str("]}");
        out
    }

    /// FNV-1a digest of [`deterministic_json`](FleetReport::deterministic_json)
    /// — the value the determinism tests and the bench's cross-scheduling
    /// spot check compare.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut hash = FNV_OFFSET;
        for byte in self.deterministic_json().bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }

    /// Full JSON rendering: the deterministic core plus scheduling knobs,
    /// wall time, derived rates, percentiles, and the digest.
    pub fn to_json(&self) -> String {
        let core = self.deterministic_json();
        // Splice the extra fields into the top-level object.
        let mut out = core;
        out.pop(); // trailing '}'
        out.push_str(&format!(
            ",\"workers\":{},\"slab_size\":{},\"wall_seconds\":{:.6},\
             \"instances_per_second\":{:.1},\"steps_per_second\":{:.1},\
             \"cache_hit_rate\":{:.8},\"p50_steps\":{},\"p99_steps\":{},\
             \"max_latency\":{},\"violations\":{},\"digest\":\"{:016x}\"}}",
            self.workers,
            self.slab_size,
            self.wall.as_secs_f64(),
            self.instances_per_second(),
            self.steps_per_second(),
            self.cache_hit_rate(),
            self.histogram.percentile(50.0).unwrap_or(0),
            self.histogram.percentile(99.0).unwrap_or(0),
            self.histogram.max(),
            self.violations(),
            self.digest(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> FleetReport {
        let mut counters = Counters::new("fleet");
        counters.add("tenants", 4);
        counters.add("steps", 40);
        counters.add("stuck", 0);
        counters.add("exhausted", 0);
        counters.add("cache_lookups", 4);
        let mut histogram = LatencyHistogram::new();
        for latency in [2, 3, 3, 9] {
            histogram.record(latency);
        }
        FleetReport {
            tenants: 4,
            workers: 2,
            slab_size: 2,
            master_seed: 7,
            faults_per_tenant: 1,
            max_steps: 100,
            bytes_per_instance: 64,
            enumerations: 1,
            counters,
            histogram,
            configs: vec![ConfigReport {
                key: "token-ring-3x3".to_string(),
                states: 27,
                bound: Some(11),
                tenants: 4,
                steps: 40,
                stabilized: 4,
                stuck: 0,
                exhausted: 0,
                max_latency: 9,
            }],
            wall: Duration::from_millis(125),
        }
    }

    #[test]
    fn digest_ignores_scheduling_and_wall_time() {
        let a = sample_report();
        let mut b = sample_report();
        b.workers = 16;
        b.slab_size = 4096;
        b.wall = Duration::from_secs(30);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        // But not the outcome itself.
        let mut c = sample_report();
        c.master_seed = 8;
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn rates_and_violations() {
        let r = sample_report();
        assert_eq!(r.cache_hit_rate(), 0.75);
        assert!(r.instances_per_second() > 0.0);
        assert_eq!(r.violations(), 0);
        let mut bad = sample_report();
        bad.configs[0].max_latency = 99;
        assert_eq!(bad.violations(), 1);
    }

    #[test]
    fn json_renders_and_mentions_the_digest() {
        let r = sample_report();
        let json = r.to_json();
        assert!(json.contains("\"digest\":\""));
        assert!(json.contains("\"p99_steps\":9"));
        assert!(json.contains("\"latency\":{\"buckets\":{\"2\":1,\"3\":2,\"9\":1}"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
