//! The checker-verdict cache: one shared, immutable runtime per
//! `(protocol, parameters)` configuration.
//!
//! The first tenant of a configuration pays for exhaustive enumeration
//! and the worst-case-moves bound; every later tenant of the same
//! configuration reads the cached verdict. The cache is why a
//! million-tenant fleet costs millions of *simulation* steps but only a
//! handful of *checker* enumerations — the verdict is a pure function of
//! the configuration (ideal-stabilization reasoning: certification does
//! not depend on which tenant asks).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use nonmask_checker::{worst_case_moves, CheckOptions, StateSpace};
use nonmask_program::{Predicate, Program};

use crate::config::FleetProtocol;
use crate::FleetError;

/// The cached checker verdict of one configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Reachable states of the configuration (the full state space).
    pub states: u64,
    /// The checker's worst-case convergence bound: the most steps any
    /// execution can take from any state before the goal holds. `None`
    /// means the checker found a cycle or deadlock outside the goal —
    /// the protocol does not converge and no finite bound exists.
    pub bound: Option<u64>,
}

/// The shared immutable runtime of one configuration: program, goal, and
/// the lazily computed [`Verdict`].
#[derive(Debug)]
pub struct ConfigRuntime {
    key: String,
    program: Program,
    goal: Predicate,
    verdict: OnceLock<Result<Verdict, String>>,
}

impl ConfigRuntime {
    fn new(protocol: &FleetProtocol) -> Self {
        let (program, goal) = protocol.build();
        ConfigRuntime {
            key: protocol.key(),
            program,
            goal,
            verdict: OnceLock::new(),
        }
    }

    /// The cache key of this configuration.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The shared program all tenants of this configuration execute.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The goal predicate (the protocol's invariant).
    pub fn goal(&self) -> &Predicate {
        &self.goal
    }
}

/// The verdict cache over a fleet's configurations.
///
/// Programs and goals are built eagerly (they are cheap and the arena
/// stride needs the widest program); verdicts are computed on first
/// demand behind a `OnceLock`, so concurrent workers asking for the same
/// configuration block until the one enumeration finishes instead of
/// duplicating it.
#[derive(Debug)]
pub struct VerdictCache {
    runtimes: Vec<ConfigRuntime>,
    /// Actual enumerations performed — the cache's miss count. Always
    /// ends at `runtimes.len()` when every configuration was visited.
    enumerations: AtomicU64,
}

impl VerdictCache {
    /// Build the cache for `protocols`.
    ///
    /// # Errors
    ///
    /// [`FleetError::Config`] when `protocols` is empty, two
    /// configurations share a key, or a program is too wide for the
    /// per-tenant metadata layout.
    pub fn build(protocols: &[FleetProtocol]) -> Result<Self, FleetError> {
        if protocols.is_empty() {
            return Err(FleetError::Config("no protocol configurations".into()));
        }
        let runtimes: Vec<ConfigRuntime> = protocols.iter().map(ConfigRuntime::new).collect();
        for (i, a) in runtimes.iter().enumerate() {
            if a.program.action_count() > u16::MAX as usize {
                return Err(FleetError::Config(format!(
                    "{}: {} actions exceed the tenant cursor range",
                    a.key,
                    a.program.action_count()
                )));
            }
            if runtimes[..i].iter().any(|b| b.key == a.key) {
                return Err(FleetError::Config(format!(
                    "duplicate configuration {}",
                    a.key
                )));
            }
        }
        Ok(VerdictCache {
            runtimes,
            enumerations: AtomicU64::new(0),
        })
    }

    /// Number of configurations.
    pub fn len(&self) -> usize {
        self.runtimes.len()
    }

    /// Whether the cache holds no configurations (never true for a
    /// successfully built cache).
    pub fn is_empty(&self) -> bool {
        self.runtimes.is_empty()
    }

    /// The runtime of configuration `idx`.
    pub fn runtime(&self, idx: usize) -> &ConfigRuntime {
        &self.runtimes[idx]
    }

    /// The arena stride: the widest program's variable count. Every
    /// tenant's state occupies exactly this many `i64` slots.
    pub fn stride(&self) -> usize {
        self.runtimes
            .iter()
            .map(|r| r.program.var_count())
            .max()
            .unwrap_or(0)
    }

    /// The verdict of configuration `idx`, enumerating on first demand.
    ///
    /// Spaces are enumerated single-threaded: the fleet's parallelism is
    /// over slabs, and nesting a checker pool inside a fleet worker
    /// would oversubscribe without speeding anything up.
    ///
    /// # Errors
    ///
    /// [`FleetError::Check`] when enumeration or the bound computation
    /// fails; the error is cached, so every tenant of a broken
    /// configuration sees the same failure.
    pub fn verdict(&self, idx: usize) -> Result<&Verdict, FleetError> {
        let rt = &self.runtimes[idx];
        let computed = rt.verdict.get_or_init(|| {
            self.enumerations.fetch_add(1, Ordering::Relaxed);
            let space = StateSpace::enumerate_with_options(&rt.program, CheckOptions::serial())
                .map_err(|e| format!("{}: enumeration failed: {e}", rt.key))?;
            let bound = worst_case_moves(&space, &rt.program, &Predicate::always_true(), &rt.goal)
                .map_err(|e| format!("{}: bound failed: {e}", rt.key))?;
            Ok(Verdict {
                states: space.len() as u64,
                bound,
            })
        });
        computed.as_ref().map_err(|e| FleetError::Check(e.clone()))
    }

    /// Enumerations actually performed so far (the cache's miss count).
    pub fn enumerations(&self) -> u64 {
        self.enumerations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_lookup_enumerates_rest_hit() {
        let cache = VerdictCache::build(&[FleetProtocol::TokenRing { nodes: 3, k: 3 }]).unwrap();
        assert_eq!(cache.enumerations(), 0, "lazy until first demand");
        let v = cache.verdict(0).unwrap().clone();
        assert_eq!(cache.enumerations(), 1);
        assert_eq!(v.states, 27);
        assert!(v.bound.is_some(), "the 3-ring converges");
        for _ in 0..100 {
            assert_eq!(cache.verdict(0).unwrap(), &v);
        }
        assert_eq!(cache.enumerations(), 1, "hits never re-enumerate");
    }

    #[test]
    fn concurrent_lookups_enumerate_once() {
        let cache = VerdictCache::build(&[FleetProtocol::TokenRing { nodes: 4, k: 4 }]).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        cache.verdict(0).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.enumerations(), 1);
    }

    #[test]
    fn stride_follows_the_widest_program() {
        let cache = VerdictCache::build(&[
            FleetProtocol::TokenRing { nodes: 3, k: 3 },
            FleetProtocol::TokenRing { nodes: 5, k: 5 },
        ])
        .unwrap();
        assert_eq!(cache.stride(), 5);
    }

    #[test]
    fn empty_and_duplicate_configs_rejected() {
        assert!(matches!(
            VerdictCache::build(&[]),
            Err(FleetError::Config(_))
        ));
        let dup = FleetProtocol::TokenRing { nodes: 3, k: 3 };
        assert!(matches!(
            VerdictCache::build(&[dup.clone(), dup]),
            Err(FleetError::Config(_))
        ));
    }
}
