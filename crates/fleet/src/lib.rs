//! Multi-tenant fleet harness: batch-stepped simulation of millions of
//! lightweight protocol instances over a shared checker-verdict cache.
//!
//! The paper certifies convergence once per *program*; a deployment runs
//! that program many times over. This crate closes the gap at scale:
//!
//! - **Tenants, not simulators.** Each protocol instance ("tenant") is a
//!   few dozen bytes — its state slots in a flat per-slab `i64` arena
//!   plus a 24-byte metadata record (an 8-byte [`rand::SplitMix64`]
//!   fault stream, episode counters, a round-robin cursor). No per-step
//!   allocation anywhere.
//! - **Batch stepping.** Tenants are grouped into slabs; a work-stealing
//!   pool (the checker's `steal_tasks`) claims slabs and bursts each
//!   tenant tens of ticks per visit so a slab's arena stays hot in
//!   cache.
//! - **Verdict cache.** Configurations are certified once: the first
//!   tenant of each `(protocol, parameters)` pair pays the exhaustive
//!   enumeration and `worst_case_moves` bound; every other tenant hits
//!   the [`VerdictCache`]. Empirical stabilization latencies are then
//!   compared against the certified bound — the fleet is a
//!   million-sample experimental check of the checker.
//! - **Determinism.** Per-tenant fault streams are split from one master
//!   seed with [`rand::split_seed`]; a tenant's trajectory is a pure
//!   function of the fleet configuration and its tenant id. Counters and
//!   histograms merge as commutative monoids, so results are
//!   bit-identical across worker counts and slab sizes —
//!   [`FleetReport::digest`] pins this.
//!
//! ```
//! use nonmask_fleet::{run_fleet, FleetConfig, FleetProtocol};
//! use nonmask_obs::Journal;
//!
//! let config = FleetConfig {
//!     protocols: vec![FleetProtocol::TokenRing { nodes: 3, k: 3 }],
//!     tenants: 100,
//!     ..FleetConfig::default()
//! };
//! let report = run_fleet(&config, &Journal::disabled()).unwrap();
//! assert_eq!(report.counters.get("stabilized"), 100);
//! assert_eq!(report.enumerations, 1); // one miss, 99 cache hits
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod engine;
mod hist;
mod report;

pub use cache::{ConfigRuntime, Verdict, VerdictCache};
pub use config::{FleetConfig, FleetProtocol};
pub use engine::run_fleet;
pub use hist::LatencyHistogram;
pub use report::{ConfigReport, FleetReport};

/// Errors a fleet run can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The fleet configuration is invalid.
    Config(String),
    /// A checker enumeration or bound computation failed.
    Check(String),
    /// A worker thread panicked.
    Worker(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Config(msg) => write!(f, "invalid fleet config: {msg}"),
            FleetError::Check(msg) => write!(f, "checker failed: {msg}"),
            FleetError::Worker(msg) => write!(f, "fleet worker failed: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {}
