//! Fleet configuration: which protocol instances run, how many tenants,
//! and how they are scheduled.

use nonmask_program::{Predicate, Program};
use nonmask_protocols::coloring::TreeColoring;
use nonmask_protocols::diffusing::DiffusingComputation;
use nonmask_protocols::token_ring::TokenRing;
use nonmask_protocols::Tree;

/// A protocol configuration a tenant can run — the `(protocol,
/// parameters)` pair that keys the [verdict cache](crate::VerdictCache).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetProtocol {
    /// Dijkstra's K-state token ring (`nodes` processes, counter
    /// modulus `k`).
    TokenRing {
        /// Ring size.
        nodes: usize,
        /// Counter modulus (`k >= nodes` for self-stabilization).
        k: i64,
    },
    /// Diffusing computation on a binary tree of `nodes` nodes.
    Diffusing {
        /// Tree size.
        nodes: usize,
    },
    /// Tree coloring on a binary tree of `nodes` nodes with `colors`
    /// colors.
    Coloring {
        /// Tree size.
        nodes: usize,
        /// Number of colors.
        colors: i64,
    },
}

impl FleetProtocol {
    /// The cache key: protocol name plus parameters, stable across runs.
    pub fn key(&self) -> String {
        match self {
            FleetProtocol::TokenRing { nodes, k } => format!("token-ring-{nodes}x{k}"),
            FleetProtocol::Diffusing { nodes } => format!("diffusing-{nodes}"),
            FleetProtocol::Coloring { nodes, colors } => format!("coloring-{nodes}c{colors}"),
        }
    }

    /// Build the program and goal predicate for this configuration.
    pub(crate) fn build(&self) -> (Program, Predicate) {
        match *self {
            FleetProtocol::TokenRing { nodes, k } => {
                let ring = TokenRing::new(nodes, k);
                (ring.program().clone(), ring.invariant())
            }
            FleetProtocol::Diffusing { nodes } => {
                let tree = Tree::binary(nodes);
                let dc = DiffusingComputation::new(&tree);
                (dc.program().clone(), dc.invariant())
            }
            FleetProtocol::Coloring { nodes, colors } => {
                let tree = Tree::binary(nodes);
                let col = TreeColoring::new(&tree, colors);
                (col.program().clone(), col.invariant())
            }
        }
    }

    /// Eight distinct small token-ring configurations (3–5 nodes).
    ///
    /// The benchmark default: every instance keeps at most five
    /// variables, so per-tenant storage (state slots + metadata) stays
    /// within the 64-byte budget, and eight distinct cache keys exercise
    /// the verdict cache's miss path more than once.
    pub fn ring_mix() -> Vec<FleetProtocol> {
        [
            (3, 3),
            (4, 4),
            (5, 5),
            (4, 5),
            (5, 4),
            (3, 4),
            (4, 3),
            (5, 6),
        ]
        .into_iter()
        .map(|(nodes, k)| FleetProtocol::TokenRing { nodes, k })
        .collect()
    }

    /// A heterogeneous mix: rings plus tree protocols. Larger per-tenant
    /// state (the arena stride follows the widest program), but all
    /// three protocol families share one fleet.
    pub fn mixed() -> Vec<FleetProtocol> {
        vec![
            FleetProtocol::TokenRing { nodes: 4, k: 4 },
            FleetProtocol::TokenRing { nodes: 5, k: 5 },
            FleetProtocol::Diffusing { nodes: 7 },
            FleetProtocol::Coloring {
                nodes: 7,
                colors: 3,
            },
        ]
    }
}

/// Configuration of a fleet run (see [`run_fleet`](crate::run_fleet)).
///
/// Tenant `t` runs protocol `protocols[t % protocols.len()]` with the
/// fault stream seeded by `split_seed(master_seed, t)` — a pure function
/// of the config, independent of `workers` and `slab_size`, which is why
/// fleet results are bit-identical across thread counts and slab sizes.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The protocol configurations tenants cycle through.
    pub protocols: Vec<FleetProtocol>,
    /// Number of tenants (protocol instances) to run to stabilization.
    pub tenants: u64,
    /// Master seed; per-tenant streams are split from it deterministically.
    pub master_seed: u64,
    /// Worker threads (`0` = auto-detect available parallelism).
    pub workers: usize,
    /// Tenants per slab — the unit of work-stealing and of arena
    /// residency. Any positive value yields identical results.
    pub slab_size: usize,
    /// Transient faults injected per tenant after its initial random
    /// state: each one corrupts a single variable the moment the tenant
    /// has re-stabilized, starting a fresh convergence episode.
    pub faults_per_tenant: u32,
    /// Safety cap on steps per convergence episode; exceeding it marks
    /// the tenant `exhausted` (a verdict-contradicting outcome, since
    /// the cap is far above any checker bound).
    pub max_steps: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            protocols: FleetProtocol::ring_mix(),
            tenants: 10_000,
            master_seed: 0xF1EE_7000,
            workers: 0,
            slab_size: 4096,
            faults_per_tenant: 2,
            max_steps: 100_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_encode_parameters() {
        assert_eq!(
            FleetProtocol::TokenRing { nodes: 4, k: 5 }.key(),
            "token-ring-4x5"
        );
        assert_eq!(FleetProtocol::Diffusing { nodes: 7 }.key(), "diffusing-7");
        assert_eq!(
            FleetProtocol::Coloring {
                nodes: 7,
                colors: 3
            }
            .key(),
            "coloring-7c3"
        );
    }

    #[test]
    fn ring_mix_is_distinct_and_small() {
        let mix = FleetProtocol::ring_mix();
        assert_eq!(mix.len(), 8);
        let keys: std::collections::HashSet<_> = mix.iter().map(FleetProtocol::key).collect();
        assert_eq!(keys.len(), 8, "cache keys must be distinct");
        for p in &mix {
            let (program, _) = p.build();
            assert!(program.var_count() <= 5, "{}: too wide for 64 B", p.key());
        }
    }
}
