//! Stabilization-latency histogram.
//!
//! Latencies (steps of a tenant's final convergence episode) are small
//! integers bounded by the checker's worst-case bound, so a flat
//! fixed-size bucket array suffices: exact counts, O(1) record, and a
//! merge that is associative and commutative — per-slab histograms can
//! be reduced in any grouping without changing percentiles.

/// Latencies tracked exactly; anything larger lands in the overflow
/// bucket (never hit in practice — checker bounds for fleet-sized
/// protocols are two digits).
const MAX_TRACKED: usize = 4096;

/// Exact histogram of stabilization latencies (in steps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Box<[u64]>,
    overflow: u64,
    total: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; MAX_TRACKED].into_boxed_slice(),
            overflow: 0,
            total: 0,
            max: 0,
        }
    }

    /// Record one latency observation.
    pub fn record(&mut self, latency: u64) {
        match self.counts.get_mut(latency as usize) {
            Some(bucket) => *bucket += 1,
            None => self.overflow += 1,
        }
        self.total += 1;
        self.max = self.max.max(latency);
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest latency observed (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Observations beyond the tracked range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Bucket-wise sum of `other` into `self`. Associative and
    /// commutative, so per-slab histograms reduce in any order.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += *theirs;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(latency, count)` pairs in latency
    /// order (the overflow bucket is not included — see
    /// [`overflow`](LatencyHistogram::overflow)).
    pub fn nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(latency, &c)| (latency as u64, c))
    }

    /// The `q`-th percentile latency by the nearest-rank method
    /// (`q` in `[0, 100]`). `None` when the histogram is empty or the
    /// rank falls in the overflow bucket.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (latency, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(latency as u64);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from(values: &[u64]) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn percentiles_nearest_rank() {
        let h = from(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(h.percentile(50.0), Some(5));
        assert_eq!(h.percentile(99.0), Some(10));
        assert_eq!(h.percentile(100.0), Some(10));
        assert_eq!(h.percentile(0.0), Some(1));
        assert_eq!(h.total(), 10);
        assert_eq!(h.max(), 10);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn merge_is_commutative_and_matches_concatenation() {
        let a = from(&[0, 1, 1, 7]);
        let b = from(&[2, 7, 9]);
        let both = from(&[0, 1, 1, 7, 2, 7, 9]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, both);
        assert_eq!(ab.percentile(50.0), both.percentile(50.0));
    }

    #[test]
    fn merge_is_associative() {
        let (a, b, c) = (from(&[1, 2]), from(&[3]), from(&[4, 5, 6]));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn overflow_bucket_catches_huge_latencies() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_000);
        h.record(3);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 2);
        assert_eq!(h.max(), 1_000_000);
        // Rank 2 falls in the overflow bucket.
        assert_eq!(h.percentile(50.0), Some(3));
        assert_eq!(h.percentile(100.0), None);
    }
}
