//! Fault-span computation.
//!
//! The paper defines the fault span `T` as "the set of states that the
//! program can reach in the presence of faults" (Section 3), with faults
//! represented as state-changing actions. Given the invariant `S` and a
//! set of fault actions, this module computes that set mechanically: the
//! smallest superset of `S` closed under both program actions and fault
//! actions. Designs can then be verified against the *derived* `T` instead
//! of hand-guessing one — and `S ⊂ T ⊂ true` yields genuinely nonmasking,
//! non-stabilizing tolerance.

use std::collections::HashSet;
use std::sync::Arc;

use nonmask_program::{Action, Predicate, Program, State};

use crate::space::{StateId, StateSpace};

/// A set of states of a [`StateSpace`], convertible to a [`Predicate`].
#[derive(Debug, Clone)]
pub struct StateSet {
    members: Vec<bool>,
    count: usize,
}

impl StateSet {
    /// The states satisfying `pred`.
    pub fn from_predicate(space: &StateSpace, pred: &Predicate) -> Self {
        let members: Vec<bool> = space.ids().map(|id| pred.holds(space.state(id))).collect();
        let count = members.iter().filter(|&&b| b).count();
        StateSet { members, count }
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: StateId) -> bool {
        self.members[id.index()]
    }

    /// Number of member states.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Convert to a [`Predicate`] usable anywhere the library takes one
    /// (the predicate hashes the queried state against the member set, so
    /// it remains valid on states produced later, not just space ids).
    pub fn to_predicate(&self, space: &StateSpace, name: impl Into<String>) -> Predicate {
        let members: HashSet<State> = space
            .ids()
            .filter(|&id| self.members[id.index()])
            .map(|id| space.state(id).clone())
            .collect();
        let members = Arc::new(members);
        // The predicate reads every variable (it inspects whole states).
        let reads: Vec<_> = (0..space.state(StateId(0)).len())
            .map(nonmask_program::VarId::from_index)
            .collect();
        Predicate::new(name, reads, move |s| members.contains(s))
    }
}

/// Compute the fault span of `invariant` under `program`'s actions plus
/// the given `faults` (arbitrary state-transformers with guards): the
/// reachability closure of the invariant states.
///
/// Fault actions may produce states outside the space only if domains are
/// violated; such transitions are ignored (a fault cannot create an
/// unrepresentable state).
pub fn compute_fault_span(
    space: &StateSpace,
    program: &Program,
    invariant: &Predicate,
    faults: &[Action],
) -> StateSet {
    let _ = program;
    let mut members = vec![false; space.len()];
    let mut frontier: Vec<StateId> = Vec::new();
    for id in space.ids() {
        if invariant.holds(space.state(id)) {
            members[id.index()] = true;
            frontier.push(id);
        }
    }
    let mut count = frontier.len();

    while let Some(id) = frontier.pop() {
        // Program transitions (precomputed) …
        for &(_, next) in space.successors(id) {
            if !members[next.index()] {
                members[next.index()] = true;
                count += 1;
                frontier.push(next);
            }
        }
        // … plus fault transitions.
        let state = space.state(id);
        for fault in faults {
            if !fault.enabled(state) {
                continue;
            }
            let next = fault.successor(state);
            if let Some(nid) = space.id_of(&next) {
                if !members[nid.index()] {
                    members[nid.index()] = true;
                    count += 1;
                    frontier.push(nid);
                }
            }
        }
    }

    StateSet { members, count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::{ActionKind, Domain};

    /// x counts down; faults can bump x by +1 (but never above 3).
    fn setup() -> (Program, Predicate, Vec<Action>) {
        let mut b = Program::builder("down");
        let x = b.var("x", Domain::range(0, 5));
        b.convergence_action("dec", [x], [x], move |s| s.get(x) > 0, move |s| {
            let v = s.get(x);
            s.set(x, v - 1);
        });
        let p = b.build();
        let s = Predicate::new("x=0", [x], move |st| st.get(x) == 0);
        let bump = Action::new(
            "fault: bump",
            ActionKind::Closure,
            [x],
            [x],
            move |st: &State| st.get(x) < 3,
            move |st: &mut State| {
                let v = st.get(x);
                st.set(x, v + 1);
            },
        );
        (p, s, vec![bump])
    }

    #[test]
    fn span_is_reachability_closure() {
        let (p, s, faults) = setup();
        let space = StateSpace::enumerate(&p).unwrap();
        let span = compute_fault_span(&space, &p, &s, &faults);
        // From x=0, faults reach up to 3; decs reach everything below.
        // x=4, x=5 are unreachable.
        assert_eq!(span.len(), 4);
        for id in space.ids() {
            let x = space.state(id).slots()[0];
            assert_eq!(span.contains(id), x <= 3, "x={x}");
        }
    }

    #[test]
    fn span_predicate_closed_and_contains_invariant() {
        let (p, s, faults) = setup();
        let space = StateSpace::enumerate(&p).unwrap();
        let span = compute_fault_span(&space, &p, &s, &faults);
        let t = span.to_predicate(&space, "T");
        // T is closed under program actions …
        assert!(crate::closure::is_closed(&space, &p, &t).is_none());
        // … contains S …
        for id in space.ids() {
            if s.holds(space.state(id)) {
                assert!(t.holds(space.state(id)));
            }
        }
        // … and the program converges from T back to S.
        let r = crate::convergence::check_convergence(
            &space,
            &p,
            &t,
            &s,
            crate::Fairness::WeaklyFair,
        );
        assert!(r.converges());
    }

    #[test]
    fn no_faults_means_span_is_program_reachability() {
        let (p, s, _) = setup();
        let space = StateSpace::enumerate(&p).unwrap();
        let span = compute_fault_span(&space, &p, &s, &[]);
        // The only invariant state is x=0, and dec cannot leave it.
        assert_eq!(span.len(), 1);
    }

    #[test]
    fn from_predicate_roundtrip() {
        let (p, s, _) = setup();
        let space = StateSpace::enumerate(&p).unwrap();
        let set = StateSet::from_predicate(&space, &s);
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
        let back = set.to_predicate(&space, "S'");
        for id in space.ids() {
            assert_eq!(s.holds(space.state(id)), back.holds(space.state(id)));
        }
    }
}
