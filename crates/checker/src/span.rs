//! Fault-span computation.
//!
//! The paper defines the fault span `T` as "the set of states that the
//! program can reach in the presence of faults" (Section 3), with faults
//! represented as state-changing actions. Given the invariant `S` and a
//! set of fault actions, this module computes that set mechanically: the
//! smallest superset of `S` closed under both program actions and fault
//! actions. Designs can then be verified against the *derived* `T` instead
//! of hand-guessing one — and `S ⊂ T ⊂ true` yields genuinely nonmasking,
//! non-stabilizing tolerance.

use std::collections::HashSet;
use std::sync::Arc;

use nonmask_program::{Action, Predicate, Program, State};

use crate::cache::Bitset;
use crate::error::CheckError;
use crate::options::CheckOptions;
use crate::space::{StateId, StateSpace};

/// A set of states of a [`StateSpace`], convertible to a [`Predicate`].
/// Backed by a [`Bitset`] (one bit per state).
#[derive(Debug, Clone)]
pub struct StateSet {
    members: Bitset,
    count: usize,
}

impl StateSet {
    /// The states satisfying `pred`.
    ///
    /// # Errors
    ///
    /// [`CheckError::WorkerFailed`] if `pred` panics at some state.
    pub fn from_predicate(space: &StateSpace, pred: &Predicate) -> Result<Self, CheckError> {
        Self::from_predicate_opts(space, pred, CheckOptions::default())
    }

    /// [`StateSet::from_predicate`] with explicit [`CheckOptions`] (the
    /// predicate is evaluated once per state, in parallel chunks).
    ///
    /// # Errors
    ///
    /// [`CheckError::WorkerFailed`] if `pred` panics at some state.
    pub fn from_predicate_opts(
        space: &StateSpace,
        pred: &Predicate,
        opts: CheckOptions,
    ) -> Result<Self, CheckError> {
        let members = Bitset::for_predicate(space, pred, opts)?;
        let count = members.count_ones();
        Ok(StateSet { members, count })
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: StateId) -> bool {
        self.members.contains(id)
    }

    /// Number of member states.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The underlying per-state membership bits.
    pub fn bits(&self) -> &Bitset {
        &self.members
    }

    /// Convert to a [`Predicate`] usable anywhere the library takes one
    /// (the predicate hashes the queried state against the member set, so
    /// it remains valid on states produced later, not just space ids).
    pub fn to_predicate(&self, space: &StateSpace, name: impl Into<String>) -> Predicate {
        let members: HashSet<State> = self
            .members
            .iter_ones()
            .map(|i| space.state(StateId::from_index(i)))
            .collect();
        let members = Arc::new(members);
        // The predicate reads every variable (it inspects whole states).
        let reads: Vec<_> = (0..space.var_count())
            .map(nonmask_program::VarId::from_index)
            .collect();
        Predicate::new(name, reads, move |s| members.contains(s))
    }
}

/// Compute the fault span of `invariant` under `program`'s actions plus
/// the given `faults` (arbitrary state-transformers with guards): the
/// reachability closure of the invariant states.
///
/// Fault actions may produce states outside the space only if domains are
/// violated; such transitions are ignored (a fault cannot create an
/// unrepresentable state).
pub fn compute_fault_span(
    space: &StateSpace,
    program: &Program,
    invariant: &Predicate,
    faults: &[Action],
) -> Result<StateSet, CheckError> {
    compute_fault_span_opts(space, program, invariant, faults, CheckOptions::default())
}

/// [`compute_fault_span`] with explicit [`CheckOptions`]: the invariant is
/// seeded in parallel; the reachability sweep itself is sequential (each
/// state is expanded exactly once).
///
/// # Errors
///
/// [`CheckError::WorkerFailed`] if `invariant` panics at some state.
pub fn compute_fault_span_opts(
    space: &StateSpace,
    program: &Program,
    invariant: &Predicate,
    faults: &[Action],
    opts: CheckOptions,
) -> Result<StateSet, CheckError> {
    let _ = program;
    let mut members = Bitset::for_predicate(space, invariant, opts)?;
    let mut frontier: Vec<StateId> = members.iter_ones().map(StateId::from_index).collect();
    let mut count = frontier.len();

    let mut scratch = space.scratch_state();
    let mut succ = space.scratch_state();
    while let Some(id) = frontier.pop() {
        // Program transitions (precomputed in CSR) …
        for &next in space.successor_ids(id) {
            if !members.contains(next) {
                members.set(next.index());
                count += 1;
                frontier.push(next);
            }
        }
        // … plus fault transitions; `id_of` is the arithmetic mixed-radix
        // lookup and the states are decoded into scratch buffers, so no
        // hashing or allocation happens here either.
        if faults.is_empty() {
            continue;
        }
        space.decode_state(id, &mut scratch);
        for fault in faults {
            if !fault.enabled(&scratch) {
                continue;
            }
            fault.successor_into(&scratch, &mut succ);
            if let Some(nid) = space.id_of(&succ) {
                if !members.contains(nid) {
                    members.set(nid.index());
                    count += 1;
                    frontier.push(nid);
                }
            }
        }
    }

    Ok(StateSet { members, count })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::{ActionKind, Domain};

    /// x counts down; faults can bump x by +1 (but never above 3).
    fn setup() -> (Program, Predicate, Vec<Action>) {
        let mut b = Program::builder("down");
        let x = b.var("x", Domain::range(0, 5));
        b.convergence_action(
            "dec",
            [x],
            [x],
            move |s| s.get(x) > 0,
            move |s| {
                let v = s.get(x);
                s.set(x, v - 1);
            },
        );
        let p = b.build();
        let s = Predicate::new("x=0", [x], move |st| st.get(x) == 0);
        let bump = Action::new(
            "fault: bump",
            ActionKind::Closure,
            [x],
            [x],
            move |st: &State| st.get(x) < 3,
            move |st: &mut State| {
                let v = st.get(x);
                st.set(x, v + 1);
            },
        );
        (p, s, vec![bump])
    }

    #[test]
    fn span_is_reachability_closure() {
        let (p, s, faults) = setup();
        let space = StateSpace::enumerate(&p).unwrap();
        let span = compute_fault_span(&space, &p, &s, &faults).unwrap();
        // From x=0, faults reach up to 3; decs reach everything below.
        // x=4, x=5 are unreachable.
        assert_eq!(span.len(), 4);
        for id in space.ids() {
            let x = space.state(id).slots()[0];
            assert_eq!(span.contains(id), x <= 3, "x={x}");
        }
    }

    #[test]
    fn span_predicate_closed_and_contains_invariant() {
        let (p, s, faults) = setup();
        let space = StateSpace::enumerate(&p).unwrap();
        let span = compute_fault_span(&space, &p, &s, &faults).unwrap();
        let t = span.to_predicate(&space, "T");
        // T is closed under program actions …
        assert!(crate::closure::is_closed(&space, &p, &t).unwrap().is_none());
        // … contains S …
        for id in space.ids() {
            if s.holds(&space.state(id)) {
                assert!(t.holds(&space.state(id)));
            }
        }
        // … and the program converges from T back to S.
        let r =
            crate::convergence::check_convergence(&space, &p, &t, &s, crate::Fairness::WeaklyFair)
                .unwrap();
        assert!(r.converges());
    }

    #[test]
    fn no_faults_means_span_is_program_reachability() {
        let (p, s, _) = setup();
        let space = StateSpace::enumerate(&p).unwrap();
        let span = compute_fault_span(&space, &p, &s, &[]).unwrap();
        // The only invariant state is x=0, and dec cannot leave it.
        assert_eq!(span.len(), 1);
    }

    #[test]
    fn from_predicate_roundtrip() {
        let (p, s, _) = setup();
        let space = StateSpace::enumerate(&p).unwrap();
        let set = StateSet::from_predicate(&space, &s).unwrap();
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
        let back = set.to_predicate(&space, "S'");
        for id in space.ids() {
            assert_eq!(s.holds(&space.state(id)), back.holds(&space.state(id)));
        }
    }
}
