//! Tuning knobs for the exhaustive checker.
//!
//! All state-space passes (enumeration, closure, convergence, bounds,
//! fault-span) are *embarrassingly parallel over contiguous [`StateId`]
//! ranges*: each worker owns a chunk of ids and the per-chunk results are
//! concatenated in chunk order, so multi-threaded runs return **bit-identical
//! results** to single-threaded runs — including which violation or
//! divergence witness is reported first.
//!
//! [`StateId`]: crate::StateId

use crate::error::{payload_string, CheckError};
use crate::space::DEFAULT_STATE_LIMIT;

/// Below this many work items a pass runs on the calling thread: spawning
/// workers costs more than the work itself on small spaces.
const PARALLEL_THRESHOLD: usize = 2048;

/// Default [`CheckOptions::memory_budget`]: 8 GiB of resident CSR arrays.
///
/// At the CSR cost of `4·(states+1) + 8·transitions` bytes this admits
/// spaces of hundreds of millions of states (the seed representation's
/// ~100+ bytes/state capped out around 2 million).
pub const DEFAULT_MEMORY_BUDGET: usize = 8 << 30;

/// Options shared by all checker passes.
///
/// The default is `threads: 0` (auto-detect the available parallelism), the
/// [default state limit](DEFAULT_STATE_LIMIT) (the full `u32` id range), and
/// the [default memory budget](DEFAULT_MEMORY_BUDGET). Spaces smaller than a
/// few thousand states always run single-threaded regardless of `threads`,
/// so the knob is free for small programs.
///
/// ```
/// use nonmask_checker::{CheckOptions, StateSpace};
/// use nonmask_program::{Domain, Program};
///
/// let mut b = Program::builder("two-bools");
/// b.var("a", Domain::Bool);
/// b.var("b", Domain::Bool);
/// let p = b.build();
/// let space = StateSpace::enumerate_with_options(&p, CheckOptions::default().threads(4))?;
/// assert_eq!(space.len(), 4);
/// # Ok::<(), nonmask_checker::SpaceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckOptions {
    /// Number of worker threads; `0` means auto-detect via
    /// [`std::thread::available_parallelism`]. Results are identical for
    /// every value — only wall-clock time changes.
    pub threads: usize,
    /// Maximum number of states a [`StateSpace`](crate::StateSpace) built
    /// with these options may contain. Defaults to the full `u32` id range;
    /// in practice `memory_budget` binds first.
    pub state_limit: usize,
    /// Maximum resident bytes the CSR arrays of a
    /// [`StateSpace`](crate::StateSpace) may occupy
    /// (`4·(states+1) + 8·transitions`). Enumeration fails with
    /// [`SpaceError::BudgetExceeded`](crate::SpaceError::BudgetExceeded)
    /// before the big allocations happen.
    pub memory_budget: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            threads: 0,
            state_limit: DEFAULT_STATE_LIMIT,
            memory_budget: DEFAULT_MEMORY_BUDGET,
        }
    }
}

impl CheckOptions {
    /// Options pinned to a single worker thread.
    pub fn serial() -> Self {
        CheckOptions::default().threads(1)
    }

    /// Set the number of worker threads (`0` = auto-detect).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the state-count limit for enumeration.
    pub fn state_limit(mut self, limit: usize) -> Self {
        self.state_limit = limit;
        self
    }

    /// Set the resident-memory budget (bytes) for enumeration.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Resolve the worker count for a pass over `work_items` items.
    pub(crate) fn workers_for(&self, work_items: usize) -> usize {
        if work_items < PARALLEL_THRESHOLD {
            return 1;
        }
        let requested = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZero::get)
                .unwrap_or(1)
        } else {
            self.threads
        };
        requested.clamp(1, work_items)
    }
}

/// The contiguous chunk ranges `run_chunks` hands to `workers` workers over
/// `0..len`, exposed so two-phase passes (count, then fill disjoint
/// sub-slices) can split their output arrays along the same boundaries.
pub(crate) fn chunk_ranges(len: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    if workers <= 1 || len <= 1 {
        return std::iter::once(0..len).collect();
    }
    let chunk = len.div_ceil(workers);
    (0..len)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(len))
        .collect()
}

/// Split `0..len` into at most `workers` contiguous chunks, run `f` on each
/// chunk (in parallel when `workers > 1`), and return the per-chunk results
/// **in chunk order**. Deterministic reductions over the returned vector
/// (concatenation, first-`Some`, minimum-index) therefore reproduce the
/// sequential left-to-right scan exactly.
///
/// `f` runs caller-supplied closures (predicates, guards, action bodies);
/// a panic in any chunk — worker thread or the single-chunk serial path —
/// is caught and returned as [`CheckError::WorkerFailed`] instead of
/// aborting the process.
pub(crate) fn run_chunks<T, F>(len: usize, workers: usize, f: F) -> Result<Vec<T>, CheckError>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(len, workers);
    if ranges.len() <= 1 {
        return ranges
            .into_iter()
            .map(|r| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(r))).map_err(|p| {
                    CheckError::WorkerFailed {
                        payload: payload_string(p),
                    }
                })
            })
            .collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || f(r)))
            .collect();
        // Join *every* handle before converting errors: joining a panicked
        // worker consumes its payload, and a handle left unjoined would
        // make the scope re-raise the panic on exit.
        let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        joined
            .into_iter()
            .map(|r| {
                r.map_err(|p| CheckError::WorkerFailed {
                    payload: payload_string(p),
                })
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_range_in_order() {
        for workers in [1, 2, 3, 8] {
            let ids: Vec<usize> = run_chunks(10_000, workers, |r| r.collect::<Vec<_>>())
                .unwrap()
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(ids, (0..10_000).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn chunk_ranges_tile_the_input() {
        for (len, workers) in [(0, 4), (1, 4), (10, 3), (10_000, 7), (2048, 2048)] {
            let ranges = chunk_ranges(len, workers);
            assert!(ranges.len() <= workers.max(1));
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "len={len} workers={workers}");
                next = r.end;
            }
            assert_eq!(next, len, "len={len} workers={workers}");
        }
    }

    #[test]
    fn empty_range_yields_one_empty_chunk() {
        let out = run_chunks(0, 4, |r| r.len()).unwrap();
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn serial_chunk_panic_is_a_typed_error() {
        // Small work runs on the calling thread; a poisoned closure must
        // still surface as `WorkerFailed`, not unwind through the caller.
        let err = run_chunks(10, 1, |r| {
            if r.contains(&3) {
                panic!("poisoned predicate at 3");
            }
            r.len()
        })
        .unwrap_err();
        assert!(
            matches!(err, CheckError::WorkerFailed { ref payload }
                if payload.contains("poisoned predicate at 3")),
            "got {err:?}"
        );
    }

    #[test]
    fn worker_thread_panic_is_a_typed_error() {
        let err = run_chunks(10_000, 4, |r| {
            if r.contains(&9_999) {
                panic!("poisoned predicate at {}", 9_999);
            }
            r.len()
        })
        .unwrap_err();
        assert!(
            matches!(err, CheckError::WorkerFailed { ref payload }
                if payload.contains("poisoned predicate at 9999")),
            "got {err:?}"
        );
        assert!(err.to_string().contains("checker worker panicked"));
    }

    #[test]
    fn small_work_is_serial() {
        let opts = CheckOptions::default().threads(8);
        assert_eq!(opts.workers_for(10), 1);
        assert_eq!(opts.workers_for(1_000_000), 8);
    }

    #[test]
    fn worker_count_clamped_to_work() {
        let opts = CheckOptions::default().threads(1_000_000);
        assert!(opts.workers_for(PARALLEL_THRESHOLD) <= PARALLEL_THRESHOLD);
    }

    #[test]
    fn builder_style() {
        let o = CheckOptions::serial().state_limit(7).memory_budget(1 << 20);
        assert_eq!(o.threads, 1);
        assert_eq!(o.state_limit, 7);
        assert_eq!(o.memory_budget, 1 << 20);
        assert_eq!(CheckOptions::default().threads, 0);
        assert_eq!(CheckOptions::default().memory_budget, DEFAULT_MEMORY_BUDGET);
    }
}
