//! Tuning knobs for the exhaustive checker, plus the two scheduling
//! primitives every pass is built on.
//!
//! All state-space passes (enumeration, closure, convergence, bounds,
//! fault-span) are *embarrassingly parallel over contiguous [`StateId`]
//! ranges*. Two schedulers exist:
//!
//! * `run_chunks` — the original static scheduler: split `0..len` into
//!   one balanced chunk per worker and concatenate per-chunk results in
//!   chunk order.
//! * `steal_tasks` / `steal_find` — the work-stealing scheduler: a
//!   shared atomic claim counter hands out *task indices* (typically one
//!   per [segment](crate::segment)) to whichever worker is free, so a
//!   skewed task no longer idles the rest of the pool. Results are still
//!   merged **in task order** (`steal_tasks`) or reduced to the
//!   lowest-index hit (`steal_find`), so multi-threaded runs return
//!   **bit-identical results** to single-threaded runs — including which
//!   violation or divergence witness is reported first.
//!
//! [`StateId`]: crate::StateId

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::error::{payload_string, CheckError};
use crate::space::DEFAULT_STATE_LIMIT;

/// Below this many work items a pass runs on the calling thread: spawning
/// workers costs more than the work itself on small spaces.
const PARALLEL_THRESHOLD: usize = 2048;

/// Default [`CheckOptions::memory_budget`]: 8 GiB of resident CSR arrays.
///
/// At the CSR cost of `4·(states+1) + 8·transitions` bytes this admits
/// spaces of hundreds of millions of states (the seed representation's
/// ~100+ bytes/state capped out around 2 million). Segmented passes
/// ([`SegmentedSpace`](crate::SegmentedSpace)) and the frontier
/// convergence mode stay under the same budget with only a bounded window
/// of the transition relation resident.
pub const DEFAULT_MEMORY_BUDGET: u64 = 8 << 30;

/// Default [`CheckOptions::segment_states`]: 2^22 states per segment.
///
/// A built segment costs roughly `4·(seg+1) + 8·seg·actions` bytes, so at
/// the default size even transition-dense protocols keep each resident
/// segment in the low hundreds of MiB.
pub const DEFAULT_SEGMENT_STATES: usize = 1 << 22;

/// Options shared by all checker passes.
///
/// The default is `threads: 0` (auto-detect the available parallelism), the
/// [default state limit](DEFAULT_STATE_LIMIT) (the full `u32` id range), the
/// [default memory budget](DEFAULT_MEMORY_BUDGET), and automatic
/// [segment sizing](DEFAULT_SEGMENT_STATES). Spaces smaller than a few
/// thousand states always run single-threaded regardless of `threads`, so
/// the knob is free for small programs.
///
/// ```
/// use nonmask_checker::{CheckOptions, StateSpace};
/// use nonmask_program::{Domain, Program};
///
/// let mut b = Program::builder("two-bools");
/// b.var("a", Domain::Bool);
/// b.var("b", Domain::Bool);
/// let p = b.build();
/// let space = StateSpace::enumerate_with_options(&p, CheckOptions::default().threads(4))?;
/// assert_eq!(space.len(), 4);
/// # Ok::<(), nonmask_checker::SpaceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckOptions {
    /// Number of worker threads; `0` means auto-detect via
    /// [`std::thread::available_parallelism`]. Results are identical for
    /// every value — only wall-clock time changes.
    pub threads: usize,
    /// Maximum number of states a [`StateSpace`](crate::StateSpace) built
    /// with these options may contain. Defaults to the full `u32` id range;
    /// in practice `memory_budget` binds first.
    pub state_limit: usize,
    /// Maximum resident bytes a pass may allocate: for monolithic
    /// enumeration the CSR arrays (`4·(states+1) + 8·transitions`) plus
    /// per-worker scratch; for segmented passes the concurrently resident
    /// segment windows. Enumeration fails with
    /// [`SpaceError::BudgetExceeded`](crate::SpaceError::BudgetExceeded)
    /// — naming the phase that tripped — before the big allocations
    /// happen.
    pub memory_budget: u64,
    /// States per segment for segmented/out-of-core passes; `0` means
    /// auto ([`DEFAULT_SEGMENT_STATES`], shrunk so small spaces still
    /// split into one task per worker). Any positive value is honored
    /// exactly, whether or not it divides the state count; results are
    /// identical for every value.
    pub segment_states: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            threads: 0,
            state_limit: DEFAULT_STATE_LIMIT,
            memory_budget: DEFAULT_MEMORY_BUDGET,
            segment_states: 0,
        }
    }
}

impl CheckOptions {
    /// Options pinned to a single worker thread.
    pub fn serial() -> Self {
        CheckOptions::default().threads(1)
    }

    /// Set the number of worker threads (`0` = auto-detect).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the state-count limit for enumeration.
    pub fn state_limit(mut self, limit: usize) -> Self {
        self.state_limit = limit;
        self
    }

    /// Set the resident-memory budget (bytes) for enumeration.
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Set the segment size (states per segment) for segmented passes
    /// (`0` = auto).
    pub fn segment_states(mut self, states: usize) -> Self {
        self.segment_states = states;
        self
    }

    /// Resolve the worker count for a pass over `work_items` items.
    pub(crate) fn workers_for(&self, work_items: usize) -> usize {
        if work_items < PARALLEL_THRESHOLD {
            return 1;
        }
        let requested = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZero::get)
                .unwrap_or(1)
        } else {
            self.threads
        };
        requested.clamp(1, work_items)
    }

    /// The segment plan for a space of `len` states under these options.
    ///
    /// With `segment_states == 0` the size is [`DEFAULT_SEGMENT_STATES`],
    /// shrunk (never below the serial-pass threshold) so that `len` splits
    /// into at least `4 × workers` tasks and the work-stealing pool has
    /// slack to balance. An explicit `segment_states` is honored exactly —
    /// the plan never depends on the thread count in that case, which is
    /// what the bit-identity proptests pin down.
    pub fn segment_plan(&self, len: usize) -> SegmentPlan {
        let segment = if self.segment_states == 0 {
            let workers = self.workers_for(len).max(1);
            DEFAULT_SEGMENT_STATES
                .min(len.div_ceil(4 * workers).max(PARALLEL_THRESHOLD))
                .max(1)
        } else {
            self.segment_states
        };
        SegmentPlan { len, segment }
    }
}

/// A partition of `0..len` state ids into contiguous same-size segments
/// (the last may be shorter). Segments are the unit of work for the
/// work-stealing scheduler and the unit of residency for out-of-core
/// passes: task `i` covers [`range(i)`](SegmentPlan::range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentPlan {
    len: usize,
    segment: usize,
}

impl SegmentPlan {
    /// Total states covered by the plan.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the plan covers no states.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// States per segment (the last segment may hold fewer).
    pub fn segment_states(&self) -> usize {
        self.segment
    }

    /// Number of segments (0 when the plan is empty).
    pub fn count(&self) -> usize {
        self.len.div_ceil(self.segment)
    }

    /// The id range of segment `i` (`i < count()`).
    pub fn range(&self, i: usize) -> Range<usize> {
        let start = i * self.segment;
        start..(start + self.segment).min(self.len)
    }
}

/// The contiguous chunk ranges `run_chunks` hands to `workers` workers over
/// `0..len`, exposed so two-phase passes (count, then fill disjoint
/// sub-slices) can split their output arrays along the same boundaries.
///
/// The split is *balanced*: no empty ranges are ever produced (`len == 0`
/// yields no chunks at all), `workers` is clamped to `len`, and chunk sizes
/// differ by at most one — `len % workers` leftover items are spread one
/// each over the leading chunks instead of piling into a degenerate tail.
pub(crate) fn chunk_ranges(len: usize, workers: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, len);
    let base = len / workers;
    let extra = len % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for i in 0..workers {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    ranges
}

/// Split `0..len` into at most `workers` contiguous chunks, run `f` on each
/// chunk (in parallel when `workers > 1`), and return the per-chunk results
/// **in chunk order**. Deterministic reductions over the returned vector
/// (concatenation, first-`Some`, minimum-index) therefore reproduce the
/// sequential left-to-right scan exactly.
///
/// `f` runs caller-supplied closures (predicates, guards, action bodies);
/// a panic in any chunk — worker thread or the single-chunk serial path —
/// is caught and returned as [`CheckError::WorkerFailed`] instead of
/// aborting the process.
pub(crate) fn run_chunks<T, F>(len: usize, workers: usize, f: F) -> Result<Vec<T>, CheckError>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(len, workers);
    if ranges.len() <= 1 {
        return ranges
            .into_iter()
            .map(|r| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(r))).map_err(|p| {
                    CheckError::WorkerFailed {
                        payload: payload_string(p),
                    }
                })
            })
            .collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || f(r)))
            .collect();
        // Join *every* handle before converting errors: joining a panicked
        // worker consumes its payload, and a handle left unjoined would
        // make the scope re-raise the panic on exit.
        let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        joined
            .into_iter()
            .map(|r| {
                r.map_err(|p| CheckError::WorkerFailed {
                    payload: payload_string(p),
                })
            })
            .collect()
    })
}

/// Run `f(0), f(1), …, f(tasks-1)` under a work-stealing pool of `workers`
/// threads and return all results **in task order**.
///
/// Scheduling: a shared [`AtomicUsize`] claim counter hands out the next
/// unclaimed task index to whichever worker finishes first, so skewed task
/// costs (a transition-dense segment, a cache-cold range) no longer idle
/// the rest of the pool the way a static per-worker split does. Which
/// worker runs which task is nondeterministic; the *returned vector* is
/// not — slot `i` always holds `f(i)`.
///
/// # Errors
///
/// A panic inside any `f(i)` is caught (serial path) or joined (worker
/// path) and surfaced as [`CheckError::WorkerFailed`]; all workers are
/// joined before the error returns.
pub fn steal_tasks<T, F>(tasks: usize, workers: usize, f: F) -> Result<Vec<T>, CheckError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || tasks <= 1 {
        return (0..tasks)
            .map(|i| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))).map_err(|p| {
                    CheckError::WorkerFailed {
                        payload: payload_string(p),
                    }
                })
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let (f, next, slots) = (&f, &next, &slots);
    let workers = workers.min(tasks);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks {
                        return;
                    }
                    let out = f(i);
                    *slots[i].lock().unwrap() = Some(out);
                })
            })
            .collect();
        let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        for r in joined {
            r.map_err(|p| CheckError::WorkerFailed {
                payload: payload_string(p),
            })?;
        }
        Ok(slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .unwrap()
                    .take()
                    .expect("every task ran to completion")
            })
            .collect())
    })
}

/// Work-stealing search: run `f` over task indices until the hit with the
/// **lowest task index** is known, then stop claiming further work.
///
/// Equivalent to `(0..tasks).find_map(f)` — the early-exit flag is a
/// shared "lowest hit so far" watermark (`fetch_min`): because the claim
/// counter hands out indices in ascending order, once some worker hits at
/// task `i` no unclaimed task below `i` exists, so remaining workers only
/// need to finish tasks already in flight and can drop everything above
/// the watermark. The final reduction takes the minimum-index hit, which
/// makes the result independent of worker count and interleaving.
///
/// # Errors
///
/// [`CheckError::WorkerFailed`] if any `f(i)` panics.
pub fn steal_find<T, F>(tasks: usize, workers: usize, f: F) -> Result<Option<T>, CheckError>
where
    T: Send,
    F: Fn(usize) -> Option<T> + Sync,
{
    if workers <= 1 || tasks <= 1 {
        for i in 0..tasks {
            let out =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))).map_err(|p| {
                    CheckError::WorkerFailed {
                        payload: payload_string(p),
                    }
                })?;
            if out.is_some() {
                return Ok(out);
            }
        }
        return Ok(None);
    }
    let next = AtomicUsize::new(0);
    let best = AtomicUsize::new(usize::MAX);
    let hits: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::new());
    let (f, next, best, hits) = (&f, &next, &best, &hits);
    let workers = workers.min(tasks);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks || i > best.load(Ordering::Acquire) {
                        return;
                    }
                    if let Some(out) = f(i) {
                        best.fetch_min(i, Ordering::AcqRel);
                        hits.lock().unwrap().push((i, out));
                        return;
                    }
                })
            })
            .collect();
        let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        for r in joined {
            r.map_err(|p| CheckError::WorkerFailed {
                payload: payload_string(p),
            })?;
        }
        let mut found = std::mem::take(&mut *hits.lock().unwrap());
        found.sort_by_key(|&(i, _)| i);
        Ok(found.into_iter().map(|(_, out)| out).next())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_range_in_order() {
        for workers in [1, 2, 3, 8] {
            let ids: Vec<usize> = run_chunks(10_000, workers, |r| r.collect::<Vec<_>>())
                .unwrap()
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(ids, (0..10_000).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn chunk_ranges_tile_the_input() {
        for (len, workers) in [(0, 4), (1, 4), (10, 3), (10_000, 7), (2048, 2048)] {
            let ranges = chunk_ranges(len, workers);
            assert!(ranges.len() <= workers.max(1));
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "len={len} workers={workers}");
                next = r.end;
            }
            assert_eq!(next, len, "len={len} workers={workers}");
        }
    }

    #[test]
    fn chunk_ranges_degenerate_lens_are_balanced() {
        // len ∈ {0, 1, workers−1, workers+1} and a tiny-tail case: no empty
        // chunks ever, and sizes differ by at most one.
        for workers in [2, 4, 7, 8] {
            for len in [0, 1, workers - 1, workers + 1, 10 * workers + 1] {
                let ranges = chunk_ranges(len, workers);
                if len == 0 {
                    assert!(ranges.is_empty(), "len=0 workers={workers}: {ranges:?}");
                    continue;
                }
                assert_eq!(ranges.len(), workers.min(len));
                let sizes: Vec<usize> = ranges.iter().map(std::ops::Range::len).collect();
                assert!(
                    sizes.iter().all(|&s| s > 0),
                    "empty chunk at len={len} workers={workers}: {sizes:?}"
                );
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(
                    max - min <= 1,
                    "imbalance at len={len} workers={workers}: {sizes:?}"
                );
            }
        }
    }

    #[test]
    fn empty_range_yields_no_chunks() {
        let out = run_chunks(0, 4, |r| r.len()).unwrap();
        assert!(out.is_empty());
        assert!(chunk_ranges(0, 4).is_empty());
    }

    #[test]
    fn serial_chunk_panic_is_a_typed_error() {
        // Small work runs on the calling thread; a poisoned closure must
        // still surface as `WorkerFailed`, not unwind through the caller.
        let err = run_chunks(10, 1, |r| {
            if r.contains(&3) {
                panic!("poisoned predicate at 3");
            }
            r.len()
        })
        .unwrap_err();
        assert!(
            matches!(err, CheckError::WorkerFailed { ref payload }
                if payload.contains("poisoned predicate at 3")),
            "got {err:?}"
        );
    }

    #[test]
    fn worker_thread_panic_is_a_typed_error() {
        let err = run_chunks(10_000, 4, |r| {
            if r.contains(&9_999) {
                panic!("poisoned predicate at {}", 9_999);
            }
            r.len()
        })
        .unwrap_err();
        assert!(
            matches!(err, CheckError::WorkerFailed { ref payload }
                if payload.contains("poisoned predicate at 9999")),
            "got {err:?}"
        );
        assert!(err.to_string().contains("checker worker panicked"));
    }

    #[test]
    fn small_work_is_serial() {
        let opts = CheckOptions::default().threads(8);
        assert_eq!(opts.workers_for(10), 1);
        assert_eq!(opts.workers_for(1_000_000), 8);
    }

    #[test]
    fn worker_count_clamped_to_work() {
        let opts = CheckOptions::default().threads(1_000_000);
        assert!(opts.workers_for(PARALLEL_THRESHOLD) <= PARALLEL_THRESHOLD);
    }

    #[test]
    fn builder_style() {
        let o = CheckOptions::serial()
            .state_limit(7)
            .memory_budget(1 << 20)
            .segment_states(4096);
        assert_eq!(o.threads, 1);
        assert_eq!(o.state_limit, 7);
        assert_eq!(o.memory_budget, 1 << 20);
        assert_eq!(o.segment_states, 4096);
        assert_eq!(CheckOptions::default().threads, 0);
        assert_eq!(CheckOptions::default().memory_budget, DEFAULT_MEMORY_BUDGET);
        assert_eq!(CheckOptions::default().segment_states, 0);
    }

    #[test]
    fn segment_plan_tiles_the_space() {
        for (len, seg) in [(0, 64), (1, 64), (100, 64), (4096, 4096), (10_000, 4097)] {
            let plan = CheckOptions::default()
                .segment_states(seg)
                .segment_plan(len);
            assert_eq!(plan.len(), len);
            assert_eq!(plan.segment_states(), seg);
            assert_eq!(plan.count(), len.div_ceil(seg));
            let mut next = 0;
            for i in 0..plan.count() {
                let r = plan.range(i);
                assert_eq!(r.start, next);
                assert!(!r.is_empty());
                next = r.end;
            }
            assert_eq!(next, len, "len={len} seg={seg}");
        }
        // Auto sizing keeps at least PARALLEL_THRESHOLD states per segment
        // and never exceeds the default.
        let auto = CheckOptions::serial().segment_plan(1 << 24);
        assert!(auto.segment_states() >= PARALLEL_THRESHOLD);
        assert!(auto.segment_states() <= DEFAULT_SEGMENT_STATES);
    }

    #[test]
    fn steal_tasks_results_are_in_task_order() {
        for workers in [1, 2, 3, 8] {
            let out = steal_tasks(37, workers, |i| i * i).unwrap();
            let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
        assert!(steal_tasks(0, 4, |i| i).unwrap().is_empty());
    }

    #[test]
    fn steal_tasks_panic_is_a_typed_error() {
        for workers in [1, 4] {
            let err = steal_tasks(16, workers, |i| {
                if i == 11 {
                    panic!("poisoned task {i}");
                }
                i
            })
            .unwrap_err();
            assert!(
                matches!(err, CheckError::WorkerFailed { ref payload }
                    if payload.contains("poisoned task 11")),
                "workers={workers}: got {err:?}"
            );
        }
    }

    #[test]
    fn steal_find_returns_lowest_index_hit() {
        for workers in [1, 2, 8] {
            // Hits at 5 and 9; the sequential semantics demand 5.
            let out = steal_find(16, workers, |i| (i == 5 || i == 9).then_some(i)).unwrap();
            assert_eq!(out, Some(5), "workers={workers}");
            assert_eq!(steal_find(16, workers, |_| None::<usize>).unwrap(), None);
        }
    }

    #[test]
    fn steal_find_panic_is_a_typed_error() {
        for workers in [1, 8] {
            let err = steal_find(64, workers, |i| {
                if i == 63 {
                    panic!("poisoned probe");
                }
                None::<usize>
            })
            .unwrap_err();
            assert!(
                matches!(err, CheckError::WorkerFailed { .. }),
                "workers={workers}: got {err:?}"
            );
        }
    }
}
