//! The preservation oracle and closure checking.
//!
//! "An action of `p` preserves a state predicate `R` iff starting from any
//! state where the action is enabled and `R` holds, executing the action
//! yields a state where `R` holds. A state predicate `R` of `p` is closed
//! iff each action of `p` preserves `R`." (Section 2.)
//!
//! The checks run over the precomputed transition table (a `(action,
//! successor)` pair exists exactly when the action is enabled, so guards
//! are never re-evaluated) and over [`Bitset`] predicate caches (each
//! predicate is evaluated once per state, in parallel). Multi-threaded runs
//! report the same first violation as a sequential scan: workers own
//! contiguous id ranges and the lowest-id witness wins.

use nonmask_program::{ActionId, Predicate, Program, State};

use crate::cache::Bitset;
use crate::error::CheckError;
use crate::options::{run_chunks, CheckOptions};
use crate::segment::SegmentedSpace;
use crate::space::{SpaceError, StateId, StateSpace};

/// A witnessed preservation failure: executing `action` at `before` (where
/// the checked predicate held) produced `after` (where it does not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violating action.
    pub action: ActionId,
    /// The state before execution (predicate held, guard held).
    pub before: State,
    /// The state after execution (predicate violated).
    pub after: State,
}

impl Violation {
    /// Render the violation against `program` for diagnostics.
    pub fn render(&self, program: &Program) -> String {
        format!(
            "action `{}` violated the predicate: {} -> {}",
            program.action(self.action).name(),
            program.render_state(&self.before),
            program.render_state(&self.after),
        )
    }
}

/// Does `action` preserve `pred`?
///
/// Checks every state of `space` where `pred` and the guard hold; returns
/// the first violation found, or `None` if the action preserves `pred`.
///
/// # Errors
///
/// [`CheckError::WorkerFailed`] if `pred` panics at some state.
pub fn preserves(
    space: &StateSpace,
    program: &Program,
    action: ActionId,
    pred: &Predicate,
) -> Result<Option<Violation>, CheckError> {
    preserves_given(space, program, action, pred, &Predicate::always_true())
}

/// Does `action` preserve `pred` in states where `assuming` also holds?
///
/// This is Theorem 3's conditional preservation: "each closure action of
/// `p` preserves each constraint in that partition *whenever all constraints
/// in lower numbered partitions hold*". Only states satisfying
/// `assuming ∧ pred ∧ guard` are considered.
pub fn preserves_given(
    space: &StateSpace,
    program: &Program,
    action: ActionId,
    pred: &Predicate,
    assuming: &Predicate,
) -> Result<Option<Violation>, CheckError> {
    let _ = program;
    let opts = CheckOptions::default();
    let pred_bits = Bitset::for_predicate(space, pred, opts)?;
    let assuming_bits = Bitset::for_predicate(space, assuming, opts)?;
    preserves_given_bits(space, action, &pred_bits, &assuming_bits, opts)
}

/// [`preserves_given`] over precomputed predicate caches.
///
/// `pred_bits` and `assuming_bits` must be evaluations of the predicates
/// over exactly this `space` (see [`Bitset::for_predicate`]). This is the
/// hot path shared by the closure report, the theorem side conditions, and
/// Theorem 3's layered obligations: one bit test per state and per
/// successor, no predicate evaluation at all.
pub fn preserves_given_bits(
    space: &StateSpace,
    action: ActionId,
    pred_bits: &Bitset,
    assuming_bits: &Bitset,
    opts: CheckOptions,
) -> Result<Option<Violation>, CheckError> {
    let workers = opts.workers_for(space.len());
    let first = run_chunks(space.len(), workers, |range| {
        for i in range {
            if !pred_bits.get(i) || !assuming_bits.get(i) {
                continue;
            }
            for (a, succ) in space.successors(StateId::from_index(i)) {
                if a == action && !pred_bits.contains(succ) {
                    return Some((i, succ));
                }
            }
        }
        None
    })?
    .into_iter()
    .flatten()
    .next();
    Ok(first.map(|(i, succ)| Violation {
        action,
        before: space.state(StateId::from_index(i)),
        after: space.state(succ),
    }))
}

/// Is `pred` closed in `program` (preserved by *every* action)?
///
/// Returns the first violation found, or `None` when `pred` is closed.
/// This discharges the paper's Closure requirement for both the invariant
/// `S` and the fault-span `T`.
pub fn is_closed(
    space: &StateSpace,
    program: &Program,
    pred: &Predicate,
) -> Result<Option<Violation>, CheckError> {
    is_closed_bits(
        space,
        program,
        &Bitset::for_predicate(space, pred, CheckOptions::default())?,
        CheckOptions::default(),
    )
}

/// [`is_closed`] over a precomputed predicate cache.
///
/// # Errors
///
/// [`CheckError::WorkerFailed`] if a worker panics mid-scan.
pub fn is_closed_bits(
    space: &StateSpace,
    program: &Program,
    pred_bits: &Bitset,
    opts: CheckOptions,
) -> Result<Option<Violation>, CheckError> {
    let everywhere = Bitset::ones(space.len());
    for a in program.action_ids() {
        if let Some(v) = preserves_given_bits(space, a, pred_bits, &everywhere, opts)? {
            return Ok(Some(v));
        }
    }
    Ok(None)
}

/// [`is_closed`] without a resident transition relation: a single
/// work-stealing sweep over the [`SegmentedSpace`]'s plan, each segment
/// built, checked against every action's rows, and dropped. Use this when
/// the full CSR would exceed the memory budget.
///
/// The violation reported is the one at the **lowest state id** (then in
/// action order within that state) — every thread count and segment size
/// agrees on it. Note the monolithic [`is_closed`] orders by lowest
/// *action* first instead (it sweeps the space once per action); both are
/// deterministic, but the two entry points can surface different members
/// of the same violation set.
///
/// # Errors
///
/// [`SpaceError`] for segment-build failures (budget, domain escapes) or
/// worker panics.
pub fn is_closed_segmented(
    seg_space: &SegmentedSpace<'_>,
    pred_bits: &Bitset,
) -> Result<Option<Violation>, SpaceError> {
    let index = seg_space.index();
    let hit = seg_space.scan_find(|_, seg| {
        for i in seg.range() {
            if !pred_bits.get(i) {
                continue;
            }
            for (a, succ) in seg.successors(StateId::from_index(i)) {
                if !pred_bits.contains(succ) {
                    return Some((i, a, succ));
                }
            }
        }
        None
    })?;
    Ok(hit.map(|(i, action, succ)| Violation {
        action,
        before: index.state(StateId::from_index(i)),
        after: index.state(succ),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::Domain;

    /// x, y in 0..=3; action `copy` sets y := x; action `bump` increments x
    /// (wrapping).
    fn program() -> Program {
        let mut b = Program::builder("p");
        let x = b.var("x", Domain::range(0, 3));
        let y = b.var("y", Domain::range(0, 3));
        b.closure_action(
            "copy",
            [x, y],
            [y],
            |_| true,
            move |s| {
                let v = s.get(x);
                s.set(y, v);
            },
        );
        b.closure_action(
            "bump",
            [x],
            [x],
            |_| true,
            move |s| {
                let v = s.get(x);
                s.set(x, (v + 1) % 4);
            },
        );
        b.build()
    }

    #[test]
    fn copy_preserves_equality_bump_does_not() {
        let p = program();
        let x = p.var_by_name("x").unwrap();
        let y = p.var_by_name("y").unwrap();
        let space = StateSpace::enumerate(&p).unwrap();
        let eq = Predicate::new("x=y", [x, y], move |s| s.get(x) == s.get(y));
        let copy = p.action_ids().next().unwrap();
        let bump = p.action_ids().nth(1).unwrap();

        assert!(preserves(&space, &p, copy, &eq).unwrap().is_none());
        let v = preserves(&space, &p, bump, &eq)
            .unwrap()
            .expect("bump breaks x=y");
        assert_eq!(v.action, bump);
        assert!(eq.holds(&v.before));
        assert!(!eq.holds(&v.after));
        assert!(v.render(&p).contains("bump"));
    }

    #[test]
    fn closure_of_trivial_predicates() {
        let p = program();
        let space = StateSpace::enumerate(&p).unwrap();
        assert!(is_closed(&space, &p, &Predicate::always_true())
            .unwrap()
            .is_none());
        // `false` is vacuously closed: it never holds before execution.
        assert!(is_closed(&space, &p, &Predicate::always_false())
            .unwrap()
            .is_none());
    }

    #[test]
    fn is_closed_finds_any_violator() {
        let p = program();
        let x = p.var_by_name("x").unwrap();
        let space = StateSpace::enumerate(&p).unwrap();
        let x0 = Predicate::new("x=0", [x], move |s| s.get(x) == 0);
        let v = is_closed(&space, &p, &x0)
            .unwrap()
            .expect("bump violates x=0");
        assert_eq!(p.action(v.action).name(), "bump");
    }

    #[test]
    fn conditional_preservation() {
        let p = program();
        let x = p.var_by_name("x").unwrap();
        let y = p.var_by_name("y").unwrap();
        let space = StateSpace::enumerate(&p).unwrap();
        let bump = p.action_ids().nth(1).unwrap();

        // bump does not preserve y<=x in general (x wraps 3 -> 0) …
        let le = Predicate::new("y<=x", [x, y], move |s| s.get(y) <= s.get(x));
        assert!(preserves(&space, &p, bump, &le).unwrap().is_some());
        // … but it does when assuming x<3 (no wrap happens).
        let small = Predicate::new("x<3", [x], move |s| s.get(x) < 3);
        assert!(preserves_given(&space, &p, bump, &le, &small)
            .unwrap()
            .is_none());
    }

    #[test]
    fn guard_restriction_matters() {
        // An action whose effect would break the predicate, but whose guard
        // never lets it run in predicate states, preserves the predicate.
        let mut b = Program::builder("g");
        let x = b.var("x", Domain::range(0, 3));
        b.closure_action(
            "wreck",
            [x],
            [x],
            move |s| s.get(x) > 1,
            move |s| s.set(x, 3),
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let small = Predicate::new("x<=1", [x], move |s| s.get(x) <= 1);
        let a = p.action_ids().next().unwrap();
        assert!(preserves(&space, &p, a, &small).unwrap().is_none());
    }

    #[test]
    fn parallel_violation_matches_serial() {
        // A large space with many violations: every worker count must
        // report the sequentially-first witness.
        let mut b = Program::builder("big");
        let x = b.var("x", Domain::range(0, 9999));
        b.closure_action(
            "inc",
            [x],
            [x],
            move |s| s.get(x) < 9999,
            move |s| {
                let v = s.get(x);
                s.set(x, v + 1);
            },
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let a = p.action_ids().next().unwrap();
        // "x is even" is broken at every even x < 9999.
        let even = Predicate::new("even", [x], move |s| s.get(x) % 2 == 0);
        let bits = Bitset::for_predicate(&space, &even, CheckOptions::serial()).unwrap();
        let everywhere = Bitset::ones(space.len());
        let serial = preserves_given_bits(&space, a, &bits, &everywhere, CheckOptions::serial())
            .unwrap()
            .unwrap();
        assert_eq!(serial.before.slots()[0], 0, "lowest-id witness");
        for threads in [2, 4, 8] {
            let par = preserves_given_bits(
                &space,
                a,
                &bits,
                &everywhere,
                CheckOptions::default().threads(threads),
            )
            .unwrap()
            .unwrap();
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn segmented_closure_matches_monolithic_verdict() {
        let mut b = Program::builder("big");
        let x = b.var("x", Domain::range(0, 9999));
        b.closure_action(
            "inc",
            [x],
            [x],
            move |s| s.get(x) < 9999,
            move |s| {
                let v = s.get(x);
                s.set(x, v + 1);
            },
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let even = Predicate::new("even", [x], move |s| s.get(x) % 2 == 0);
        let bits = Bitset::for_predicate(&space, &even, CheckOptions::default()).unwrap();
        // Broken at every even x: the segmented sweep must report the
        // lowest-id witness for every thread count and segment size.
        for threads in [1, 2, 8] {
            for seg in [512, 1000] {
                let opts = CheckOptions::default().threads(threads).segment_states(seg);
                let seg_space = SegmentedSpace::new(&p, opts).unwrap();
                let v = is_closed_segmented(&seg_space, &bits)
                    .unwrap()
                    .expect("inc breaks evenness");
                assert_eq!(v.before.slots()[0], 0, "threads={threads} seg={seg}");
                assert_eq!(v.after.slots()[0], 1);
            }
        }
        // A closed predicate passes.
        let all = Bitset::ones(space.len());
        let seg_space = SegmentedSpace::new(&p, CheckOptions::default()).unwrap();
        assert!(is_closed_segmented(&seg_space, &all).unwrap().is_none());
    }

    #[test]
    fn poisoned_predicate_surfaces_as_worker_failed() {
        // A predicate that panics mid-scan must produce a typed error from
        // the public API, on both the serial and the threaded path.
        let mut b = Program::builder("big");
        let x = b.var("x", Domain::range(0, 9999));
        b.closure_action(
            "inc",
            [x],
            [x],
            move |s| s.get(x) < 9999,
            move |s| {
                let v = s.get(x);
                s.set(x, v + 1);
            },
        );
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        let poisoned = Predicate::new("poisoned", [x], move |s| {
            if s.get(x) == 7777 {
                panic!("predicate poisoned at x=7777");
            }
            true
        });
        let err = is_closed(&space, &p, &poisoned).unwrap_err();
        assert!(
            matches!(err, CheckError::WorkerFailed { ref payload }
                if payload.contains("poisoned at x=7777")),
            "got {err:?}"
        );
        // Small spaces run the scan on the calling thread; the panic must
        // still be caught, not unwind through the caller.
        let mut b = Program::builder("small");
        let y = b.var("y", Domain::range(0, 3));
        let small = b.build();
        let small_space = StateSpace::enumerate(&small).unwrap();
        let always_panics = Predicate::new("boom", [y], |_| panic!("always boom"));
        let err = is_closed(&small_space, &small, &always_panics).unwrap_err();
        assert!(matches!(err, CheckError::WorkerFailed { .. }));
    }
}
