//! State-space enumeration and indexing.

use std::collections::HashMap;

use nonmask_program::{ActionId, Predicate, Program, State};

/// Identifier of a state within a [`StateSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// Positional index of the state in its space.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for StateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Errors raised while enumerating a state space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// The program has an unbounded variable; its state space cannot be
    /// enumerated. Bound the variable (e.g. the `mod K` token-ring
    /// refinement) to check it.
    Unbounded {
        /// Name of the unbounded variable.
        var: String,
    },
    /// The state space exceeds the configured limit.
    TooLarge {
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceError::Unbounded { var } =>

                write!(f, "variable `{var}` is unbounded; state space cannot be enumerated"),
            SpaceError::TooLarge { limit } => {
                write!(f, "state space exceeds the limit of {limit} states")
            }
        }
    }
}

impl std::error::Error for SpaceError {}

/// The fully enumerated state space of a bounded program, with transitions.
///
/// Construction enumerates every state (the cross product of all domains)
/// and every transition `(state, enabled action) → successor`. Memory is
/// proportional to `|states| + |transitions|`; the default limit of
/// 2 million states keeps accidental blow-ups at bay.
#[derive(Debug, Clone)]
pub struct StateSpace {
    states: Vec<State>,
    index: HashMap<State, StateId>,
    /// Per state: `(action, successor)` for every enabled action.
    transitions: Vec<Vec<(ActionId, StateId)>>,
}

/// Default cap on the number of states [`StateSpace::enumerate`] will build.
pub const DEFAULT_STATE_LIMIT: usize = 2_000_000;

impl StateSpace {
    /// Enumerate the full state space of `program`, with the
    /// [default limit](DEFAULT_STATE_LIMIT).
    ///
    /// ```
    /// use nonmask_program::{Domain, Program};
    /// use nonmask_checker::StateSpace;
    ///
    /// let mut b = Program::builder("two-bools");
    /// b.var("a", Domain::Bool);
    /// b.var("b", Domain::Bool);
    /// let p = b.build();
    /// let space = StateSpace::enumerate(&p)?;
    /// assert_eq!(space.len(), 4);
    /// # Ok::<(), nonmask_checker::SpaceError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`SpaceError::Unbounded`] for unbounded programs;
    /// [`SpaceError::TooLarge`] when the limit is exceeded.
    pub fn enumerate(program: &Program) -> Result<Self, SpaceError> {
        Self::enumerate_with_limit(program, DEFAULT_STATE_LIMIT)
    }

    /// Enumerate with an explicit state-count limit.
    ///
    /// # Errors
    ///
    /// Same as [`StateSpace::enumerate`].
    pub fn enumerate_with_limit(program: &Program, limit: usize) -> Result<Self, SpaceError> {
        if let Some(size) = program.state_space_size() {
            if size > limit as u128 {
                return Err(SpaceError::TooLarge { limit });
            }
        }
        let iter = program.enumerate_states().map_err(|e| match e {
            nonmask_program::ProgramError::UnboundedDomain { var } => SpaceError::Unbounded { var },
            other => unreachable!("enumerate_states only fails on unbounded domains: {other}"),
        })?;

        let mut states = Vec::new();
        let mut index = HashMap::new();
        for (i, s) in iter.enumerate() {
            if i >= limit {
                return Err(SpaceError::TooLarge { limit });
            }
            index.insert(s.clone(), StateId(i as u32));
            states.push(s);
        }

        let mut transitions = Vec::with_capacity(states.len());
        for s in &states {
            let mut outs = Vec::new();
            for a in program.enabled_actions(s) {
                let succ = program.action(a).successor(s);
                let id = *index
                    .get(&succ)
                    .unwrap_or_else(|| panic!(
                        "action `{}` left the state space (wrote {}); domains must be closed under all actions",
                        program.action(a).name(),
                        program.render_state(&succ),
                    ));
                outs.push((a, id));
            }
            transitions.push(outs);
        }

        Ok(StateSpace {
            states,
            index,
            transitions,
        })
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the space has no states (impossible for valid programs — a
    /// program with zero variables still has the single empty state).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// All state ids.
    pub fn ids(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.states.len()).map(|i| StateId(i as u32))
    }

    /// The state with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this space.
    pub fn state(&self, id: StateId) -> &State {
        &self.states[id.index()]
    }

    /// The id of `state`, if it belongs to this space.
    pub fn id_of(&self, state: &State) -> Option<StateId> {
        self.index.get(state).copied()
    }

    /// The `(action, successor)` pairs of every action enabled at `id`.
    pub fn successors(&self, id: StateId) -> &[(ActionId, StateId)] {
        &self.transitions[id.index()]
    }

    /// Ids of the states satisfying `pred`.
    pub fn satisfying(&self, pred: &Predicate) -> Vec<StateId> {
        self.ids().filter(|&i| pred.holds(self.state(i))).collect()
    }

    /// Number of states satisfying `pred`.
    pub fn count_satisfying(&self, pred: &Predicate) -> usize {
        self.ids().filter(|&i| pred.holds(self.state(i))).count()
    }

    /// Total number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::Domain;

    fn counter(max: i64) -> Program {
        let mut b = Program::builder("counter");
        let x = b.var("x", Domain::range(0, max));
        b.closure_action("inc", [x], [x], move |s| s.get(x) < max, move |s| {
            let v = s.get(x);
            s.set(x, v + 1);
        });
        b.build()
    }

    #[test]
    fn enumerates_all_states_and_transitions() {
        let p = counter(4);
        let space = StateSpace::enumerate(&p).unwrap();
        assert_eq!(space.len(), 5);
        assert_eq!(space.transition_count(), 4, "inc is disabled at x=4");
        for id in space.ids() {
            let x = space.state(id).slots()[0];
            if x < 4 {
                let succs = space.successors(id);
                assert_eq!(succs.len(), 1);
                assert_eq!(space.state(succs[0].1).slots()[0], x + 1);
            } else {
                assert!(space.successors(id).is_empty());
            }
        }
    }

    #[test]
    fn id_of_roundtrips() {
        let p = counter(3);
        let space = StateSpace::enumerate(&p).unwrap();
        for id in space.ids() {
            assert_eq!(space.id_of(space.state(id)), Some(id));
        }
        assert_eq!(space.id_of(&State::new(vec![99])), None);
    }

    #[test]
    fn satisfying_filters() {
        let p = counter(9);
        let x = p.var_by_name("x").unwrap();
        let space = StateSpace::enumerate(&p).unwrap();
        let even = Predicate::new("even", [x], move |s| s.get(x) % 2 == 0);
        assert_eq!(space.satisfying(&even).len(), 5);
        assert_eq!(space.count_satisfying(&even), 5);
    }

    #[test]
    fn limit_is_enforced() {
        let p = counter(1000);
        assert_eq!(
            StateSpace::enumerate_with_limit(&p, 100).unwrap_err(),
            SpaceError::TooLarge { limit: 100 }
        );
    }

    #[test]
    fn unbounded_rejected() {
        let mut b = Program::builder("u");
        b.var("y", Domain::Unbounded);
        let p = b.build();
        assert!(matches!(
            StateSpace::enumerate(&p).unwrap_err(),
            SpaceError::Unbounded { var } if var == "y"
        ));
    }

    #[test]
    #[should_panic(expected = "left the state space")]
    fn escaping_action_panics() {
        let mut b = Program::builder("bad");
        let x = b.var("x", Domain::range(0, 2));
        b.closure_action("overflow", [x], [x], |_| true, move |s| s.set(x, 7));
        let p = b.build();
        let _ = StateSpace::enumerate(&p);
    }

    #[test]
    fn multi_var_space_size() {
        let mut b = Program::builder("mv");
        b.var("a", Domain::Bool);
        b.var("b", Domain::range(0, 2));
        b.var("c", Domain::enumeration(["x", "y"]));
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        assert_eq!(space.len(), 2 * 3 * 2);
    }
}
