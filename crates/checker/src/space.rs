//! State-space enumeration and compact CSR storage.
//!
//! # Arithmetic (mixed-radix) state ids
//!
//! Every bounded domain is a contiguous value range `min..=max` (booleans
//! are `0..=1`, enumerations `0..=len-1`), and
//! [`Program::enumerate_states`] yields states in lexicographic order with
//! the **last** variable cycling fastest. A state's enumeration position is
//! therefore a pure mixed-radix number:
//!
//! ```text
//! index(s) = Σ_i (s[i] − min_i) · stride_i      stride_i = Π_{j>i} size_j
//! ```
//!
//! [`StateSpace`] exploits this in both directions. [`id_of`]
//! (`state → index`) is `O(|vars|)` multiply-adds with **no hash map and no
//! heap traffic**. The decode direction (`index → state`) means states never
//! need to be materialized at all: the space stores **no** `Vec<State>` —
//! [`state`] re-derives any state from its id on demand, and hot loops use
//! [`decode_state`] to decode into a reusable scratch `State` without
//! allocating.
//!
//! # CSR transition storage
//!
//! Transitions are stored in compressed-sparse-row form: one `offsets` array
//! with `len + 1` entries plus two parallel flat arrays `actions` / `succs`,
//! so the transitions of state `i` are the slices
//! `actions[offsets[i]..offsets[i+1]]` and `succs[offsets[i]..offsets[i+1]]`.
//! The resident cost is **4 bytes per state + 8 bytes per transition**,
//! independent of the number of variables — versus the seed representation's
//! per-state heap-allocated `State` plus per-state `Vec` row (~100+ bytes per
//! state), an order-of-magnitude cut for protocol-sized programs.
//!
//! Construction is two-phase so results are bit-identical for every thread
//! count: phase 1 counts enabled actions per state, a sequential prefix sum
//! turns the counts into `offsets` (checking the `u32` edge-count bound),
//! and phase 2 fills disjoint sub-slices of the final arrays in place. Both
//! phases run under the work-stealing scheduler over the
//! [segment plan](CheckOptions::segment_plan): tasks are contiguous id
//! ranges claimed from a shared atomic counter, and per-task results are
//! merged in task order, so the layout is independent of thread count and
//! scheduling. Guards are evaluated twice (once per phase); the paper's
//! guarded commands are pure, so the trade is deterministic layout and half
//! the peak memory of a collect-then-concatenate build.
//!
//! The decode machinery is factored into [`SpaceIndex`] — the id↔state
//! bijection *without* any transition arrays. Out-of-core passes
//! ([`SegmentedSpace`](crate::SegmentedSpace), the frontier convergence
//! mode) work from a `SpaceIndex` alone and re-derive transitions on
//! demand, so the full CSR never needs to be resident.
//!
//! # Memory budget
//!
//! The id range allows up to `u32::MAX + 1` states; what actually bounds a
//! run is the [`CheckOptions::memory_budget`]: enumeration rejects a space
//! whose resident bytes — CSR arrays plus the transient counts column and
//! per-worker decode scratch — would exceed it, instead of the seed's blunt
//! 2-million-state cap. The [`SpaceError::BudgetExceeded`] error names the
//! phase (`"offsets"`, `"succs"`, or `"segment build"`) whose requirement
//! tripped first.
//!
//! [`id_of`]: StateSpace::id_of
//! [`state`]: StateSpace::state
//! [`decode_state`]: StateSpace::decode_state

use nonmask_obs::{Event, Journal};
use nonmask_program::{ActionId, Predicate, Program, State, VarId};

use std::sync::Mutex;

use crate::cache::Bitset;
use crate::error::CheckError;
use crate::options::{steal_tasks, CheckOptions};

/// Identifier of a state within a [`StateSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// Positional index of the state in its space.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The id at position `index` (caller guarantees `index` fits; every
    /// space is pre-checked to hold at most `u32::MAX + 1` states).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(u32::try_from(index).is_ok());
        StateId(index as u32)
    }
}

impl std::fmt::Display for StateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Errors raised while enumerating a state space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// The program has an unbounded variable; its state space cannot be
    /// enumerated. Bound the variable (e.g. the `mod K` token-ring
    /// refinement) to check it.
    Unbounded {
        /// Name of the unbounded variable.
        var: String,
    },
    /// The state space exceeds the configured state limit (or the `u32` id
    /// range).
    TooLarge {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// A build phase would exceed the configured
    /// [`CheckOptions::memory_budget`]. Raise the budget (or switch
    /// convergence-only queries to the frontier mode) to check larger
    /// instances.
    BudgetExceeded {
        /// Resident bytes the tripping phase would need (CSR arrays plus
        /// transient build metadata and per-worker scratch).
        required: u64,
        /// The configured budget in bytes.
        budget: u64,
        /// Which build phase tripped: `"offsets"` (per-state counts +
        /// offsets column), `"succs"` (flat transition arrays),
        /// `"segment build"` (a resident segment window), or
        /// `"frontier bitsets"` (the frontier mode's predicate and
        /// resolved-set bitsets).
        phase: &'static str,
    },
    /// The space has more transitions than CSR `u32` offsets can index.
    TooManyTransitions {
        /// The transition count that overflowed the `u32` range.
        count: u64,
    },
    /// An action wrote a value outside its variable's domain, producing a
    /// successor that is not a state of the space. Domains must be closed
    /// under all actions.
    EscapedDomain {
        /// Name of the offending action.
        action: String,
        /// Name of the variable whose domain was escaped.
        var: String,
    },
    /// An enumeration worker panicked while evaluating a guard or action
    /// body (see [`CheckError::WorkerFailed`]).
    WorkerFailed {
        /// The panic payload, rendered as a string.
        payload: String,
    },
}

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceError::Unbounded { var } => write!(
                f,
                "variable `{var}` is unbounded; state space cannot be enumerated"
            ),
            SpaceError::TooLarge { limit } => {
                write!(f, "state space exceeds the limit of {limit} states")
            }
            SpaceError::BudgetExceeded {
                required,
                budget,
                phase,
            } => write!(
                f,
                "state space needs {required} resident bytes in the {phase} phase, over the \
                 memory budget of {budget} bytes; raise `CheckOptions::memory_budget` to check it"
            ),
            SpaceError::TooManyTransitions { count } => write!(
                f,
                "state space has {count} transitions, more than CSR u32 offsets can index"
            ),
            SpaceError::EscapedDomain { action, var } => write!(
                f,
                "action `{action}` left the state space (wrote `{var}` outside its domain); \
                 domains must be closed under all actions"
            ),
            SpaceError::WorkerFailed { payload } => {
                write!(f, "enumeration worker panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for SpaceError {}

impl From<CheckError> for SpaceError {
    fn from(e: CheckError) -> Self {
        match e {
            CheckError::WorkerFailed { payload } => SpaceError::WorkerFailed { payload },
            // Containment sweeps never run during space construction; keep
            // the conversion total for error-context plumbing.
            other @ CheckError::NonMonotoneContainment { .. } => SpaceError::WorkerFailed {
                payload: other.to_string(),
            },
        }
    }
}

/// The mixed-radix index: per variable, the domain minimum, the domain
/// size, and the stride (product of the sizes of all later variables).
#[derive(Debug, Clone)]
struct Radix {
    mins: Box<[i64]>,
    sizes: Box<[i64]>,
    strides: Box<[u64]>,
}

impl Radix {
    /// Derive the radix of `program`, returning the total state count.
    fn of(program: &Program) -> Result<(Radix, u128), SpaceError> {
        let n = program.var_count();
        let mut mins = vec![0i64; n];
        let mut sizes = vec![0i64; n];
        for i in 0..n {
            let decl = program.var(VarId::from_index(i));
            let Some(size) = decl.domain().size() else {
                return Err(SpaceError::Unbounded {
                    var: decl.name().to_string(),
                });
            };
            mins[i] = decl.domain().min_value();
            sizes[i] = size as i64;
        }
        // Strides right-to-left: the last variable cycles fastest.
        let mut strides = vec![1u64; n];
        let mut total: u128 = 1;
        for i in (0..n).rev() {
            // Strides beyond u64 would already exceed any usable limit;
            // saturate and let the total-vs-limit check reject the space.
            strides[i] = u128::min(total, u64::MAX as u128) as u64;
            total = total.saturating_mul(sizes[i] as u128);
        }
        Ok((
            Radix {
                mins: mins.into_boxed_slice(),
                sizes: sizes.into_boxed_slice(),
                strides: strides.into_boxed_slice(),
            },
            total,
        ))
    }

    /// Number of variables per state.
    fn var_count(&self) -> usize {
        self.mins.len()
    }

    /// The enumeration position of `state`, or `None` when some slot is
    /// outside its domain (or the arity differs).
    #[inline]
    fn index_of(&self, state: &State) -> Option<u64> {
        let slots = state.slots();
        if slots.len() != self.mins.len() {
            return None;
        }
        let mut acc = 0u64;
        for (i, &slot) in slots.iter().enumerate() {
            let offset = slot.wrapping_sub(self.mins[i]);
            if offset < 0 || offset >= self.sizes[i] {
                return None;
            }
            acc += offset as u64 * self.strides[i];
        }
        Some(acc)
    }

    /// The first variable of `state` whose value is outside its domain,
    /// for [`SpaceError::EscapedDomain`] diagnostics.
    fn escaping_var(&self, state: &State) -> usize {
        let slots = state.slots();
        let arity = slots.len().min(self.mins.len());
        for (i, &slot) in slots.iter().enumerate().take(arity) {
            let offset = slot.wrapping_sub(self.mins[i]);
            if offset < 0 || offset >= self.sizes[i] {
                return i;
            }
        }
        0
    }

    /// Decode the state at enumeration position `idx` into `out`, reusing
    /// `out`'s slot buffer. `out` must have [`Radix::var_count`] slots.
    #[inline]
    fn decode_into(&self, mut idx: u64, out: &mut State) {
        debug_assert_eq!(out.len(), self.mins.len());
        for i in 0..self.mins.len() {
            let q = idx / self.strides[i];
            out.set(VarId::from_index(i), self.mins[i] + q as i64);
            idx -= q * self.strides[i];
        }
    }

    /// The state at enumeration position `idx`, freshly allocated.
    fn state_of(&self, idx: u64) -> State {
        let mut out = State::zeroed(self.mins.len());
        self.decode_into(idx, &mut out);
        out
    }
}

/// The id↔state bijection of a bounded program's state space — the part of
/// a [`StateSpace`] that costs O(variables), not O(states).
///
/// A `SpaceIndex` knows how many states exist and how to decode any
/// [`StateId`] into a [`State`] (and back via [`id_of`](SpaceIndex::id_of))
/// without materializing anything per state. Out-of-core passes — the
/// [segmented scans](crate::SegmentedSpace) and the frontier convergence
/// mode — are built on a `SpaceIndex` plus on-demand successor evaluation,
/// so the transition relation never needs to be resident at once.
#[derive(Debug, Clone)]
pub struct SpaceIndex {
    len: usize,
    radix: Radix,
}

impl SpaceIndex {
    /// Derive the index of `program`'s state space, validating the state
    /// limit (and `u32` id range) from `options` without allocating
    /// anything proportional to the space.
    ///
    /// # Errors
    ///
    /// [`SpaceError::Unbounded`] for unbounded programs;
    /// [`SpaceError::TooLarge`] when the state limit is exceeded.
    pub fn of_program(program: &Program, options: CheckOptions) -> Result<Self, SpaceError> {
        let (radix, total) = Radix::of(program)?;
        // Ids are u32, so the effective cap is the configured limit clamped
        // to the representable id range.
        let id_cap = u32::MAX as u128 + 1;
        let effective = u128::min(options.state_limit as u128, id_cap);
        if total > effective {
            return Err(SpaceError::TooLarge {
                limit: effective as usize,
            });
        }
        Ok(SpaceIndex {
            len: total as usize,
            radix,
        })
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the space has no states.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of variables per state.
    pub fn var_count(&self) -> usize {
        self.radix.var_count()
    }

    /// All state ids.
    pub fn ids(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.len).map(StateId::from_index)
    }

    /// The state with id `id`, freshly allocated (use
    /// [`decode_state`](SpaceIndex::decode_state) in loops).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this space.
    pub fn state(&self, id: StateId) -> State {
        assert!(id.index() < self.len, "state id {id} out of range");
        self.radix.state_of(id.0 as u64)
    }

    /// Decode the state with id `id` into `out`, reusing `out`'s buffer.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this space or `out` has the wrong arity.
    #[inline]
    pub fn decode_state(&self, id: StateId, out: &mut State) {
        assert!(id.index() < self.len, "state id {id} out of range");
        self.radix.decode_into(id.0 as u64, out);
    }

    /// A zeroed scratch state of this space's arity.
    pub fn scratch_state(&self) -> State {
        State::zeroed(self.radix.var_count())
    }

    /// The id of `state`, if it belongs to this space (arithmetic
    /// mixed-radix lookup: `O(|vars|)`, no hashing, no allocation).
    #[inline]
    pub fn id_of(&self, state: &State) -> Option<StateId> {
        let idx = self.radix.index_of(state)?;
        debug_assert!((idx as usize) < self.len);
        Some(StateId(idx as u32))
    }

    /// The first variable of `state` outside its domain, for
    /// [`SpaceError::EscapedDomain`] diagnostics.
    pub(crate) fn escaping_var(&self, state: &State) -> usize {
        self.radix.escaping_var(state)
    }
}

/// Estimated bytes of per-worker decode scratch for `scratches` reusable
/// `State` buffers of `nv` variables each (slots plus `Vec` header),
/// counted against the memory budget so the `required` figure in
/// [`SpaceError::BudgetExceeded`] reflects what the pass actually holds.
pub(crate) fn scratch_bytes(scratches: u64, nv: usize) -> u64 {
    scratches * (8 * nv as u64 + 48)
}

/// The `(action, successor)` transitions of one state: a zero-copy view of
/// two parallel CSR row slices, yielded by [`StateSpace::successors`].
///
/// Iterate it like the former `&[(ActionId, StateId)]` rows:
///
/// ```ignore
/// for (action, succ) in space.successors(id) { ... }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transitions<'a> {
    actions: &'a [ActionId],
    succs: &'a [StateId],
}

impl<'a> Transitions<'a> {
    /// A row view over parallel action/successor slices. Segment storage
    /// shares this view type with the monolithic CSR.
    pub(crate) fn new(actions: &'a [ActionId], succs: &'a [StateId]) -> Self {
        debug_assert_eq!(actions.len(), succs.len());
        Transitions { actions, succs }
    }

    /// Number of transitions (enabled actions) at this state.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the state has no enabled action (a deadlock).
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// The actions of the row, parallel to [`Transitions::succs`].
    pub fn actions(&self) -> &'a [ActionId] {
        self.actions
    }

    /// The successor ids of the row, parallel to [`Transitions::actions`].
    pub fn succs(&self) -> &'a [StateId] {
        self.succs
    }

    /// The `k`-th `(action, successor)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`.
    pub fn get(&self, k: usize) -> (ActionId, StateId) {
        (self.actions[k], self.succs[k])
    }

    /// Iterate the `(action, successor)` pairs in action-id order.
    pub fn iter(&self) -> TransitionsIter<'a> {
        self.into_iter()
    }
}

/// Iterator over a CSR row's `(action, successor)` pairs.
pub type TransitionsIter<'a> = std::iter::Zip<
    std::iter::Copied<std::slice::Iter<'a, ActionId>>,
    std::iter::Copied<std::slice::Iter<'a, StateId>>,
>;

impl<'a> IntoIterator for Transitions<'a> {
    type Item = (ActionId, StateId);
    type IntoIter = TransitionsIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.actions.iter().copied().zip(self.succs.iter().copied())
    }
}

/// The fully enumerated state space of a bounded program, with transitions.
///
/// States are never materialized: a state is a pure mixed-radix function of
/// its id (see the [module docs](self)), decoded on demand by
/// [`state`](StateSpace::state) / [`decode_state`](StateSpace::decode_state).
/// Transitions live in three flat CSR arrays (`offsets`, `actions`,
/// `succs`), built in parallel over disjoint id ranges when
/// [`CheckOptions::threads`] allows; the result is bit-identical for every
/// thread count. Resident memory is `4·(len+1) + 8·transition_count` bytes,
/// gated by [`CheckOptions::memory_budget`].
#[derive(Debug, Clone)]
pub struct StateSpace {
    index: SpaceIndex,
    /// CSR row bounds: state `i`'s transitions are `offsets[i]..offsets[i+1]`.
    offsets: Vec<u32>,
    /// Flat action column, parallel to `succs`.
    actions: Vec<ActionId>,
    /// Flat successor column, parallel to `actions`.
    succs: Vec<StateId>,
}

/// Default cap on the number of states [`StateSpace::enumerate`] will build:
/// the full `u32` id range. In practice the binding constraint is the
/// [`CheckOptions::memory_budget`], not this count.
pub const DEFAULT_STATE_LIMIT: usize = u32::MAX as usize + 1;

/// Escape diagnostic produced during transition construction.
struct Escape {
    action: ActionId,
    var: usize,
}

/// Exclusive prefix sum of per-state transition counts, producing the CSR
/// `offsets` array (`counts.len() + 1` entries).
///
/// # Errors
///
/// The total transition count when it exceeds the `u32` offset range.
pub(crate) fn offsets_from_counts(counts: &[u32]) -> Result<Vec<u32>, u64> {
    let total: u64 = counts.iter().map(|&c| c as u64).sum();
    if total > u32::MAX as u64 {
        return Err(total);
    }
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0u32;
    offsets.push(0);
    for &c in counts {
        // Cannot overflow: the total was checked above.
        acc += c;
        offsets.push(acc);
    }
    Ok(offsets)
}

impl StateSpace {
    /// Enumerate the full state space of `program`, with the
    /// [default options](CheckOptions::default).
    ///
    /// ```
    /// use nonmask_program::{Domain, Program};
    /// use nonmask_checker::StateSpace;
    ///
    /// let mut b = Program::builder("two-bools");
    /// b.var("a", Domain::Bool);
    /// b.var("b", Domain::Bool);
    /// let p = b.build();
    /// let space = StateSpace::enumerate(&p)?;
    /// assert_eq!(space.len(), 4);
    /// # Ok::<(), nonmask_checker::SpaceError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`SpaceError::Unbounded`] for unbounded programs;
    /// [`SpaceError::TooLarge`] when the state limit is exceeded;
    /// [`SpaceError::BudgetExceeded`] when the CSR arrays would not fit the
    /// memory budget; [`SpaceError::TooManyTransitions`] when the edge count
    /// overflows `u32` offsets; [`SpaceError::EscapedDomain`] when an action
    /// writes outside a domain.
    pub fn enumerate(program: &Program) -> Result<Self, SpaceError> {
        Self::enumerate_with_options(program, CheckOptions::default())
    }

    /// Enumerate with an explicit state-count limit.
    ///
    /// # Errors
    ///
    /// Same as [`StateSpace::enumerate`].
    pub fn enumerate_with_limit(program: &Program, limit: usize) -> Result<Self, SpaceError> {
        Self::enumerate_with_options(program, CheckOptions::default().state_limit(limit))
    }

    /// Enumerate with explicit [`CheckOptions`] (worker threads, state
    /// limit, memory budget). The result is identical for every thread
    /// count.
    ///
    /// # Errors
    ///
    /// Same as [`StateSpace::enumerate`].
    pub fn enumerate_with_options(
        program: &Program,
        options: CheckOptions,
    ) -> Result<Self, SpaceError> {
        Self::enumerate_journaled(program, options, &Journal::disabled())
    }

    /// [`enumerate_with_options`](StateSpace::enumerate_with_options),
    /// additionally recording one [`Event::CsrPhase`] record per build
    /// phase (`"count"`, `"fill"`) with states, transitions, and
    /// wall-clock micros. A [disabled](Journal::disabled) journal makes
    /// this identical to the un-journaled call.
    ///
    /// # Errors
    ///
    /// Same as [`StateSpace::enumerate`].
    pub fn enumerate_journaled(
        program: &Program,
        options: CheckOptions,
        journal: &Journal,
    ) -> Result<Self, SpaceError> {
        let index = SpaceIndex::of_program(program, options)?;
        let n = index.len();
        let budget = options.memory_budget;
        let workers = options.workers_for(n);
        let nv = index.var_count();
        let plan = options.segment_plan(n);
        let tasks = plan.count();
        // Budget floor before any large allocation: the offsets column, the
        // transient phase-1 counts column (same size), and one decode
        // scratch per worker.
        let offsets_bytes = 4 * (n as u64 + 1);
        let offsets_phase_bytes = offsets_bytes + 4 * n as u64 + scratch_bytes(workers as u64, nv);
        if offsets_phase_bytes > budget {
            return Err(SpaceError::BudgetExceeded {
                required: offsets_phase_bytes,
                budget,
                phase: "offsets",
            });
        }

        // Phase 1: count enabled actions per state. Work-stealing over the
        // segment plan: whichever worker is free claims the next segment;
        // per-segment count vectors are concatenated in segment order, so
        // the result is identical for every thread count.
        let phase_started = std::time::Instant::now();
        let counts: Vec<u32> = steal_tasks(tasks, workers, |ti| {
            let range = plan.range(ti);
            let mut scratch = State::zeroed(nv);
            let mut out = Vec::with_capacity(range.len());
            for i in range {
                index.radix.decode_into(i as u64, &mut scratch);
                let mut c = 0u32;
                for a in program.action_ids() {
                    if program.action(a).enabled(&scratch) {
                        c += 1;
                    }
                }
                out.push(c);
            }
            out
        })?
        .into_iter()
        .flatten()
        .collect();

        let offsets = offsets_from_counts(&counts)
            .map_err(|count| SpaceError::TooManyTransitions { count })?;
        drop(counts);
        let m = *offsets.last().expect("offsets never empty") as usize;
        journal.emit_with(|| Event::CsrPhase {
            phase: "count".to_string(),
            states: n as u64,
            transitions: m as u64,
            micros: phase_started.elapsed().as_micros() as u64,
        });
        // Exact requirement now that the edge count is known: offsets plus
        // the two flat columns plus two decode scratches per worker (state
        // and successor buffers in the fill loop).
        let succs_phase_bytes =
            offsets_bytes + 8 * m as u64 + scratch_bytes(2 * workers as u64, nv);
        if succs_phase_bytes > budget {
            return Err(SpaceError::BudgetExceeded {
                required: succs_phase_bytes,
                budget,
                phase: "succs",
            });
        }

        // Phase 2: fill the final arrays in place. The flat columns are
        // pre-split along the plan's offsets into one disjoint sub-slice
        // pair per segment; a stealing worker takes the pair for the
        // segment it claimed, so any thread count and any claim order
        // produce the identical layout. A worker stops at the first
        // escaping action in its segment; segments are in ascending id
        // order and escapes are reduced by lowest segment index, so the
        // reported witness matches a sequential scan.
        let mut actions = vec![ActionId::from_index(0); m];
        let mut succs = vec![StateId(0); m];
        {
            // One segment's pre-split destination slices, taken once by
            // whichever worker claims the segment.
            type FillSlot<'a> = Mutex<Option<(&'a mut [ActionId], &'a mut [StateId])>>;
            let mut slices: Vec<FillSlot<'_>> = Vec::with_capacity(tasks);
            let mut a_rest: &mut [ActionId] = &mut actions;
            let mut s_rest: &mut [StateId] = &mut succs;
            for ti in 0..tasks {
                let r = plan.range(ti);
                let take = (offsets[r.end] - offsets[r.start]) as usize;
                let (a_chunk, rest) = std::mem::take(&mut a_rest).split_at_mut(take);
                a_rest = rest;
                let (s_chunk, rest) = std::mem::take(&mut s_rest).split_at_mut(take);
                s_rest = rest;
                slices.push(Mutex::new(Some((a_chunk, s_chunk))));
            }
            let phase_started = std::time::Instant::now();
            let escapes: Vec<Option<Escape>> = steal_tasks(tasks, workers, |ti| {
                let (actions, succs) = slices[ti]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each fill segment is claimed exactly once");
                let mut scratch = State::zeroed(nv);
                let mut succ = State::zeroed(nv);
                let mut k = 0usize;
                for i in plan.range(ti) {
                    index.radix.decode_into(i as u64, &mut scratch);
                    for a in program.action_ids() {
                        let act = program.action(a);
                        if !act.enabled(&scratch) {
                            continue;
                        }
                        act.successor_into(&scratch, &mut succ);
                        match index.radix.index_of(&succ) {
                            Some(idx) => {
                                actions[k] = a;
                                succs[k] = StateId(idx as u32);
                                k += 1;
                            }
                            None => {
                                return Some(Escape {
                                    action: a,
                                    var: index.radix.escaping_var(&succ),
                                });
                            }
                        }
                    }
                }
                debug_assert_eq!(k, succs.len(), "impure guard: phase-2 count drifted");
                None
            })?;
            journal.emit_with(|| Event::CsrPhase {
                phase: "fill".to_string(),
                states: n as u64,
                transitions: m as u64,
                micros: phase_started.elapsed().as_micros() as u64,
            });
            if let Some(e) = escapes.into_iter().flatten().next() {
                return Err(SpaceError::EscapedDomain {
                    action: program.action(e.action).name().to_string(),
                    var: program.var(VarId::from_index(e.var)).name().to_string(),
                });
            }
        }

        Ok(StateSpace {
            index,
            offsets,
            actions,
            succs,
        })
    }

    /// The id↔state bijection of this space, without the CSR arrays. Hand
    /// this to passes that re-derive transitions on demand.
    pub fn index(&self) -> &SpaceIndex {
        &self.index
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the space has no states (impossible for valid programs — a
    /// program with zero variables still has the single empty state).
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of variables per state.
    pub fn var_count(&self) -> usize {
        self.index.var_count()
    }

    /// All state ids.
    pub fn ids(&self) -> impl Iterator<Item = StateId> + '_ {
        self.index.ids()
    }

    /// The state with id `id`, decoded from the id (freshly allocated; use
    /// [`decode_state`](StateSpace::decode_state) in loops).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this space.
    pub fn state(&self, id: StateId) -> State {
        self.index.state(id)
    }

    /// Decode the state with id `id` into `out`, reusing `out`'s buffer
    /// (see [`scratch_state`](StateSpace::scratch_state)).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this space or `out` has the wrong arity.
    #[inline]
    pub fn decode_state(&self, id: StateId, out: &mut State) {
        self.index.decode_state(id, out);
    }

    /// A zeroed scratch state of this space's arity, for
    /// [`decode_state`](StateSpace::decode_state) loops.
    pub fn scratch_state(&self) -> State {
        self.index.scratch_state()
    }

    /// The id of `state`, if it belongs to this space.
    ///
    /// This is the arithmetic mixed-radix lookup: `O(|vars|)` with no
    /// hashing or allocation.
    pub fn id_of(&self, state: &State) -> Option<StateId> {
        self.index.id_of(state)
    }

    /// The `(action, successor)` pairs of every action enabled at `id`, in
    /// action-id order, as a view of the CSR row.
    pub fn successors(&self, id: StateId) -> Transitions<'_> {
        let (lo, hi) = self.row_bounds(id);
        Transitions {
            actions: &self.actions[lo..hi],
            succs: &self.succs[lo..hi],
        }
    }

    /// Only the successor ids of `id` (skips the action column; the fastest
    /// row view for reachability-style sweeps).
    pub fn successor_ids(&self, id: StateId) -> &[StateId] {
        let (lo, hi) = self.row_bounds(id);
        &self.succs[lo..hi]
    }

    #[inline]
    fn row_bounds(&self, id: StateId) -> (usize, usize) {
        let i = id.index();
        (self.offsets[i] as usize, self.offsets[i + 1] as usize)
    }

    /// Ids of the states satisfying `pred` (parallel scan with the
    /// [default options](CheckOptions::default)).
    ///
    /// # Errors
    ///
    /// [`CheckError::WorkerFailed`] if `pred` panics.
    pub fn satisfying(&self, pred: &Predicate) -> Result<Vec<StateId>, CheckError> {
        self.satisfying_opts(pred, CheckOptions::default())
    }

    /// Ids of the states satisfying `pred`, with explicit options.
    ///
    /// # Errors
    ///
    /// [`CheckError::WorkerFailed`] if `pred` panics.
    pub fn satisfying_opts(
        &self,
        pred: &Predicate,
        options: CheckOptions,
    ) -> Result<Vec<StateId>, CheckError> {
        Ok(Bitset::for_predicate(self, pred, options)?
            .iter_ones()
            .map(StateId::from_index)
            .collect())
    }

    /// Number of states satisfying `pred` (parallel scan with the
    /// [default options](CheckOptions::default)).
    ///
    /// # Errors
    ///
    /// [`CheckError::WorkerFailed`] if `pred` panics.
    pub fn count_satisfying(&self, pred: &Predicate) -> Result<usize, CheckError> {
        Ok(Bitset::for_predicate(self, pred, CheckOptions::default())?.count_ones())
    }

    /// Total number of transitions.
    pub fn transition_count(&self) -> usize {
        self.succs.len()
    }

    /// Resident bytes of the space: the three CSR arrays plus the radix
    /// tables. This is what [`CheckOptions::memory_budget`] gates (the
    /// radix is negligible: 24 bytes per *variable*, not per state).
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.actions.len() * std::mem::size_of::<ActionId>()
            + self.succs.len() * std::mem::size_of::<StateId>()
            + self.index.var_count() * 3 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::Domain;

    fn counter(max: i64) -> Program {
        let mut b = Program::builder("counter");
        let x = b.var("x", Domain::range(0, max));
        b.closure_action(
            "inc",
            [x],
            [x],
            move |s| s.get(x) < max,
            move |s| {
                let v = s.get(x);
                s.set(x, v + 1);
            },
        );
        b.build()
    }

    #[test]
    fn enumerates_all_states_and_transitions() {
        let p = counter(4);
        let space = StateSpace::enumerate(&p).unwrap();
        assert_eq!(space.len(), 5);
        assert_eq!(space.transition_count(), 4, "inc is disabled at x=4");
        for id in space.ids() {
            let x = space.state(id).slots()[0];
            if x < 4 {
                let succs = space.successors(id);
                assert_eq!(succs.len(), 1);
                assert_eq!(space.state(succs.get(0).1).slots()[0], x + 1);
            } else {
                assert!(space.successors(id).is_empty());
            }
        }
    }

    #[test]
    fn id_of_roundtrips() {
        let p = counter(3);
        let space = StateSpace::enumerate(&p).unwrap();
        for id in space.ids() {
            assert_eq!(space.id_of(&space.state(id)), Some(id));
        }
        assert_eq!(space.id_of(&State::new(vec![99])), None);
    }

    #[test]
    fn id_of_rejects_malformed_states() {
        let p = counter(3);
        let space = StateSpace::enumerate(&p).unwrap();
        // Wrong arity.
        assert_eq!(space.id_of(&State::new(vec![0, 0])), None);
        assert_eq!(space.id_of(&State::new(vec![])), None);
        // Below the domain minimum (negative offset must not wrap).
        assert_eq!(space.id_of(&State::new(vec![-1])), None);
        assert_eq!(space.id_of(&State::new(vec![i64::MIN])), None);
    }

    #[test]
    fn arithmetic_ids_match_enumeration_order() {
        // Mixed domains with nonzero minimum: id must equal position.
        let mut b = Program::builder("mixed");
        b.var("a", Domain::range(-2, 1));
        b.var("b", Domain::Bool);
        b.var("c", Domain::enumeration(["p", "q", "r"]));
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        assert_eq!(space.len(), 4 * 2 * 3);
        for (pos, s) in p.enumerate_states().unwrap().enumerate() {
            assert_eq!(space.id_of(&s).unwrap().index(), pos);
            assert_eq!(space.state(StateId::from_index(pos)), s);
        }
    }

    #[test]
    fn decode_state_matches_state() {
        let p = counter(17);
        let space = StateSpace::enumerate(&p).unwrap();
        let mut scratch = space.scratch_state();
        for id in space.ids() {
            space.decode_state(id, &mut scratch);
            assert_eq!(scratch, space.state(id));
        }
    }

    #[test]
    fn parallel_enumeration_is_identical() {
        let p = counter(4000);
        let serial = StateSpace::enumerate_with_options(&p, CheckOptions::serial()).unwrap();
        let parallel =
            StateSpace::enumerate_with_options(&p, CheckOptions::default().threads(4)).unwrap();
        assert_eq!(serial.len(), parallel.len());
        assert_eq!(serial.offsets, parallel.offsets, "CSR offsets must match");
        for id in serial.ids() {
            assert_eq!(serial.state(id), parallel.state(id));
            assert_eq!(serial.successors(id), parallel.successors(id));
        }
    }

    #[test]
    fn satisfying_filters() {
        let p = counter(9);
        let x = p.var_by_name("x").unwrap();
        let space = StateSpace::enumerate(&p).unwrap();
        let even = Predicate::new("even", [x], move |s| s.get(x) % 2 == 0);
        assert_eq!(space.satisfying(&even).unwrap().len(), 5);
        assert_eq!(space.count_satisfying(&even).unwrap(), 5);
    }

    #[test]
    fn satisfying_is_thread_count_invariant() {
        let p = counter(9999);
        let x = p.var_by_name("x").unwrap();
        let space = StateSpace::enumerate(&p).unwrap();
        let pred = Predicate::new("mod7", [x], move |s| s.get(x) % 7 == 0);
        let serial = space
            .satisfying_opts(&pred, CheckOptions::serial())
            .unwrap();
        let parallel = space
            .satisfying_opts(&pred, CheckOptions::default().threads(4))
            .unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), space.count_satisfying(&pred).unwrap());
    }

    #[test]
    fn limit_is_enforced() {
        let p = counter(1000);
        assert_eq!(
            StateSpace::enumerate_with_limit(&p, 100).unwrap_err(),
            SpaceError::TooLarge { limit: 100 }
        );
    }

    #[test]
    fn astronomically_large_spaces_rejected_without_overflow() {
        // 2^40-ish states: far beyond both the default limit and u32 ids.
        let mut b = Program::builder("huge");
        for i in 0..40 {
            b.var(format!("x{i}"), Domain::Bool);
        }
        let p = b.build();
        assert!(matches!(
            StateSpace::enumerate(&p).unwrap_err(),
            SpaceError::TooLarge { .. }
        ));
        // Even with a usize::MAX limit the u32 id range caps the space.
        assert_eq!(
            StateSpace::enumerate_with_limit(&p, usize::MAX).unwrap_err(),
            SpaceError::TooLarge {
                limit: u32::MAX as usize + 1
            }
        );
    }

    #[test]
    fn memory_budget_is_enforced() {
        let p = counter(99_999);
        // 100k states need ~400KB of offsets alone; a 1KB budget must
        // reject the space before any large allocation.
        let err =
            StateSpace::enumerate_with_options(&p, CheckOptions::default().memory_budget(1024))
                .unwrap_err();
        let SpaceError::BudgetExceeded {
            required,
            budget,
            phase,
        } = err
        else {
            panic!("expected BudgetExceeded, got {err:?}");
        };
        assert_eq!(budget, 1024);
        assert!(required > 1024);
        assert_eq!(phase, "offsets", "the floor estimate trips first");
        // A budget that admits the resident size (plus a little slack for
        // the per-worker scratch the accounting now includes) succeeds.
        let space = StateSpace::enumerate(&p).unwrap();
        let ok = StateSpace::enumerate_with_options(
            &p,
            CheckOptions::default().memory_budget(space.resident_bytes() as u64 + (64 << 10)),
        );
        assert!(ok.is_ok());
        // A budget squeezed between the offsets floor and the full CSR cost
        // trips at the succs phase, and the error names it.
        let offsets_floor = 4 * (space.len() as u64 + 1) + 4 * space.len() as u64 + (64 << 10);
        let err = StateSpace::enumerate_with_options(
            &p,
            CheckOptions::default().memory_budget(offsets_floor),
        )
        .unwrap_err();
        let SpaceError::BudgetExceeded { phase, .. } = err else {
            panic!("expected BudgetExceeded, got {err:?}");
        };
        assert_eq!(phase, "succs");
        assert!(err.to_string().contains("succs phase"));
    }

    #[test]
    fn resident_bytes_counts_csr_arrays() {
        let p = counter(4);
        let space = StateSpace::enumerate(&p).unwrap();
        // 6 offsets + 4 actions + 4 succs = 24 + 16 + 16 bytes, plus the
        // struct header and one variable's radix entries.
        let expected = std::mem::size_of::<StateSpace>() + 24 + 16 + 16 + 24;
        assert_eq!(space.resident_bytes(), expected);
    }

    #[test]
    fn offsets_prefix_sum_near_u32_boundary() {
        // Exactly u32::MAX transitions: fine.
        let ok = offsets_from_counts(&[u32::MAX - 10, 7, 3]).unwrap();
        assert_eq!(ok, vec![0, u32::MAX - 10, u32::MAX - 3, u32::MAX]);
        // One more overflows the offset range and must be rejected, not
        // wrapped.
        assert_eq!(
            offsets_from_counts(&[u32::MAX, 1]),
            Err(u32::MAX as u64 + 1)
        );
        // Many large counts must accumulate in u64, not saturate u32.
        assert_eq!(
            offsets_from_counts(&[u32::MAX, u32::MAX, u32::MAX]),
            Err(3 * (u32::MAX as u64))
        );
        assert_eq!(offsets_from_counts(&[]), Ok(vec![0]));
    }

    #[test]
    fn unbounded_rejected() {
        let mut b = Program::builder("u");
        b.var("y", Domain::Unbounded);
        let p = b.build();
        assert!(matches!(
            StateSpace::enumerate(&p).unwrap_err(),
            SpaceError::Unbounded { var } if var == "y"
        ));
    }

    #[test]
    fn escaping_action_is_an_error() {
        let mut b = Program::builder("bad");
        let x = b.var("x", Domain::range(0, 2));
        b.closure_action("overflow", [x], [x], |_| true, move |s| s.set(x, 7));
        let p = b.build();
        let err = StateSpace::enumerate(&p).unwrap_err();
        assert_eq!(
            err,
            SpaceError::EscapedDomain {
                action: "overflow".into(),
                var: "x".into()
            }
        );
        assert!(err.to_string().contains("left the state space"));
    }

    #[test]
    fn escape_reports_lowest_state_deterministically() {
        // `bad` escapes only at x >= 3; every worker count must report the
        // same (first) witness action.
        let mut b = Program::builder("bad2");
        let x = b.var("x", Domain::range(0, 5000));
        b.closure_action(
            "fine",
            [x],
            [x],
            move |s| s.get(x) < 5000,
            move |s| {
                let v = s.get(x);
                s.set(x, v + 1);
            },
        );
        b.closure_action(
            "bad",
            [x],
            [x],
            move |s| s.get(x) >= 3,
            move |s| s.set(x, -1),
        );
        let p = b.build();
        for threads in [1, 2, 8] {
            let err =
                StateSpace::enumerate_with_options(&p, CheckOptions::default().threads(threads))
                    .unwrap_err();
            assert_eq!(
                err,
                SpaceError::EscapedDomain {
                    action: "bad".into(),
                    var: "x".into()
                },
                "threads={threads}"
            );
        }
    }

    #[test]
    fn multi_var_space_size() {
        let mut b = Program::builder("mv");
        b.var("a", Domain::Bool);
        b.var("b", Domain::range(0, 2));
        b.var("c", Domain::enumeration(["x", "y"]));
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        assert_eq!(space.len(), 2 * 3 * 2);
    }
}
