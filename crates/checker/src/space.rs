//! State-space enumeration and indexing.
//!
//! # Arithmetic (mixed-radix) state ids
//!
//! Every bounded domain is a contiguous value range `min..=max` (booleans
//! are `0..=1`, enumerations `0..=len-1`), and
//! [`Program::enumerate_states`] yields states in lexicographic order with
//! the **last** variable cycling fastest. A state's enumeration position is
//! therefore a pure mixed-radix number:
//!
//! ```text
//! index(s) = Σ_i (s[i] − min_i) · stride_i      stride_i = Π_{j>i} size_j
//! ```
//!
//! [`StateSpace`] exploits this: [`id_of`](StateSpace::id_of) is `O(|vars|)`
//! multiply-adds with **no hash map, no per-state clones, and no heap
//! traffic**, and the decode direction (`index → state`) lets enumeration
//! and transition construction run in parallel over disjoint id ranges (see
//! [`CheckOptions::threads`]). Successor lookup during transition
//! construction — the hot path of the whole checker — went from a
//! `HashMap<State, StateId>` probe per transition to the same handful of
//! arithmetic operations.

use nonmask_program::{ActionId, Predicate, Program, State, VarId};

use crate::options::{run_chunks, CheckOptions};

/// Identifier of a state within a [`StateSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// Positional index of the state in its space.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The id at position `index` (caller guarantees `index` fits; every
    /// space is pre-checked to hold at most `u32::MAX + 1` states).
    #[inline]
    pub(crate) fn from_index(index: usize) -> Self {
        debug_assert!(u32::try_from(index).is_ok());
        StateId(index as u32)
    }
}

impl std::fmt::Display for StateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Errors raised while enumerating a state space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// The program has an unbounded variable; its state space cannot be
    /// enumerated. Bound the variable (e.g. the `mod K` token-ring
    /// refinement) to check it.
    Unbounded {
        /// Name of the unbounded variable.
        var: String,
    },
    /// The state space exceeds the configured limit (or the `u32` id
    /// range).
    TooLarge {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// An action wrote a value outside its variable's domain, producing a
    /// successor that is not a state of the space. Domains must be closed
    /// under all actions.
    EscapedDomain {
        /// Name of the offending action.
        action: String,
        /// Name of the variable whose domain was escaped.
        var: String,
    },
}

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceError::Unbounded { var } => write!(
                f,
                "variable `{var}` is unbounded; state space cannot be enumerated"
            ),
            SpaceError::TooLarge { limit } => {
                write!(f, "state space exceeds the limit of {limit} states")
            }
            SpaceError::EscapedDomain { action, var } => write!(
                f,
                "action `{action}` left the state space (wrote `{var}` outside its domain); \
                 domains must be closed under all actions"
            ),
        }
    }
}

impl std::error::Error for SpaceError {}

/// The mixed-radix index: per variable, the domain minimum, the domain
/// size, and the stride (product of the sizes of all later variables).
#[derive(Debug, Clone)]
struct Radix {
    mins: Box<[i64]>,
    sizes: Box<[i64]>,
    strides: Box<[u64]>,
}

impl Radix {
    /// Derive the radix of `program`, returning the total state count.
    fn of(program: &Program) -> Result<(Radix, u128), SpaceError> {
        let n = program.var_count();
        let mut mins = vec![0i64; n];
        let mut sizes = vec![0i64; n];
        for i in 0..n {
            let decl = program.var(VarId::from_index(i));
            let Some(size) = decl.domain().size() else {
                return Err(SpaceError::Unbounded {
                    var: decl.name().to_string(),
                });
            };
            mins[i] = decl.domain().min_value();
            sizes[i] = size as i64;
        }
        // Strides right-to-left: the last variable cycles fastest.
        let mut strides = vec![1u64; n];
        let mut total: u128 = 1;
        for i in (0..n).rev() {
            // Strides beyond u64 would already exceed any usable limit;
            // saturate and let the total-vs-limit check reject the space.
            strides[i] = u128::min(total, u64::MAX as u128) as u64;
            total = total.saturating_mul(sizes[i] as u128);
        }
        Ok((
            Radix {
                mins: mins.into_boxed_slice(),
                sizes: sizes.into_boxed_slice(),
                strides: strides.into_boxed_slice(),
            },
            total,
        ))
    }

    /// The enumeration position of `state`, or `None` when some slot is
    /// outside its domain (or the arity differs).
    #[inline]
    fn index_of(&self, state: &State) -> Option<u64> {
        let slots = state.slots();
        if slots.len() != self.mins.len() {
            return None;
        }
        let mut acc = 0u64;
        for (i, &slot) in slots.iter().enumerate() {
            let offset = slot.wrapping_sub(self.mins[i]);
            if offset < 0 || offset >= self.sizes[i] {
                return None;
            }
            acc += offset as u64 * self.strides[i];
        }
        Some(acc)
    }

    /// The first variable of `state` whose value is outside its domain,
    /// for [`SpaceError::EscapedDomain`] diagnostics.
    fn escaping_var(&self, state: &State) -> usize {
        let slots = state.slots();
        let arity = slots.len().min(self.mins.len());
        for (i, &slot) in slots.iter().enumerate().take(arity) {
            let offset = slot.wrapping_sub(self.mins[i]);
            if offset < 0 || offset >= self.sizes[i] {
                return i;
            }
        }
        0
    }

    /// The state at enumeration position `idx`.
    fn state_of(&self, mut idx: u64) -> State {
        let mut slots = vec![0i64; self.mins.len()];
        for (i, slot) in slots.iter_mut().enumerate() {
            let q = idx / self.strides[i];
            *slot = self.mins[i] + q as i64;
            idx -= q * self.strides[i];
        }
        State::new(slots)
    }
}

/// The fully enumerated state space of a bounded program, with transitions.
///
/// Construction enumerates every state (the cross product of all domains)
/// and every transition `(state, enabled action) → successor`, in parallel
/// over disjoint id ranges when [`CheckOptions::threads`] allows. State ids
/// are assigned *arithmetically* (see the [module docs](self)): the id of a
/// state is its mixed-radix enumeration position, so reverse lookup needs
/// no hash map. Memory is proportional to `|states| + |transitions|`; the
/// default limit of 2 million states keeps accidental blow-ups at bay.
#[derive(Debug, Clone)]
pub struct StateSpace {
    states: Vec<State>,
    radix: Radix,
    /// Per state: `(action, successor)` for every enabled action.
    transitions: Vec<Vec<(ActionId, StateId)>>,
}

/// Default cap on the number of states [`StateSpace::enumerate`] will build.
pub const DEFAULT_STATE_LIMIT: usize = 2_000_000;

impl StateSpace {
    /// Enumerate the full state space of `program`, with the
    /// [default options](CheckOptions::default).
    ///
    /// ```
    /// use nonmask_program::{Domain, Program};
    /// use nonmask_checker::StateSpace;
    ///
    /// let mut b = Program::builder("two-bools");
    /// b.var("a", Domain::Bool);
    /// b.var("b", Domain::Bool);
    /// let p = b.build();
    /// let space = StateSpace::enumerate(&p)?;
    /// assert_eq!(space.len(), 4);
    /// # Ok::<(), nonmask_checker::SpaceError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`SpaceError::Unbounded`] for unbounded programs;
    /// [`SpaceError::TooLarge`] when the limit is exceeded;
    /// [`SpaceError::EscapedDomain`] when an action writes outside a
    /// domain.
    pub fn enumerate(program: &Program) -> Result<Self, SpaceError> {
        Self::enumerate_with_options(program, CheckOptions::default())
    }

    /// Enumerate with an explicit state-count limit.
    ///
    /// # Errors
    ///
    /// Same as [`StateSpace::enumerate`].
    pub fn enumerate_with_limit(program: &Program, limit: usize) -> Result<Self, SpaceError> {
        Self::enumerate_with_options(program, CheckOptions::default().state_limit(limit))
    }

    /// Enumerate with explicit [`CheckOptions`] (worker threads and state
    /// limit). The result is identical for every thread count.
    ///
    /// # Errors
    ///
    /// Same as [`StateSpace::enumerate`].
    pub fn enumerate_with_options(
        program: &Program,
        options: CheckOptions,
    ) -> Result<Self, SpaceError> {
        let (radix, total) = Radix::of(program)?;
        // Ids are u32, so the effective cap is the configured limit clamped
        // to the representable id range; the single pre-check below is the
        // only size check (construction cannot disagree with it).
        let id_cap = u32::MAX as u128 + 1;
        let effective = u128::min(options.state_limit as u128, id_cap);
        if total > effective {
            return Err(SpaceError::TooLarge {
                limit: effective as usize,
            });
        }
        let n = total as usize;
        let workers = options.workers_for(n);

        // Decode every state from its id, in parallel chunks.
        let states: Vec<State> = run_chunks(n, workers, |range| {
            range
                .map(|i| radix.state_of(i as u64))
                .collect::<Vec<State>>()
        })
        .into_iter()
        .flatten()
        .collect();

        // Transition construction: for each state, every enabled action and
        // the arithmetic id of its successor. A worker stops at the first
        // escaping action in its chunk; the lowest-id escape wins overall,
        // matching a sequential scan.
        struct Escape {
            at: usize,
            action: ActionId,
            var: usize,
        }
        let chunks = run_chunks(n, workers, |range| {
            let mut outs: Vec<Vec<(ActionId, StateId)>> = Vec::with_capacity(range.len());
            for i in range {
                let state = &states[i];
                let mut row = Vec::new();
                for a in program.enabled_actions(state) {
                    let succ = program.action(a).successor(state);
                    match radix.index_of(&succ) {
                        Some(idx) => {
                            let id = u32::try_from(idx).expect("pre-checked to fit u32");
                            row.push((a, StateId(id)));
                        }
                        None => {
                            return Err(Escape {
                                at: i,
                                action: a,
                                var: radix.escaping_var(&succ),
                            });
                        }
                    }
                }
                outs.push(row);
            }
            Ok(outs)
        });

        let mut transitions: Vec<Vec<(ActionId, StateId)>> = Vec::with_capacity(n);
        let mut first_escape: Option<Escape> = None;
        for chunk in chunks {
            match chunk {
                Ok(rows) => transitions.extend(rows),
                Err(e) => {
                    if first_escape.as_ref().is_none_or(|f| e.at < f.at) {
                        first_escape = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_escape {
            return Err(SpaceError::EscapedDomain {
                action: program.action(e.action).name().to_string(),
                var: program.var(VarId::from_index(e.var)).name().to_string(),
            });
        }

        Ok(StateSpace {
            states,
            radix,
            transitions,
        })
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the space has no states (impossible for valid programs — a
    /// program with zero variables still has the single empty state).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// All state ids.
    pub fn ids(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.states.len()).map(StateId::from_index)
    }

    /// The state with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this space.
    pub fn state(&self, id: StateId) -> &State {
        &self.states[id.index()]
    }

    /// The id of `state`, if it belongs to this space.
    ///
    /// This is the arithmetic mixed-radix lookup: `O(|vars|)` with no
    /// hashing or allocation.
    pub fn id_of(&self, state: &State) -> Option<StateId> {
        let idx = self.radix.index_of(state)?;
        debug_assert!((idx as usize) < self.states.len());
        Some(StateId(idx as u32))
    }

    /// The `(action, successor)` pairs of every action enabled at `id`.
    pub fn successors(&self, id: StateId) -> &[(ActionId, StateId)] {
        &self.transitions[id.index()]
    }

    /// Ids of the states satisfying `pred`.
    pub fn satisfying(&self, pred: &Predicate) -> Vec<StateId> {
        self.ids().filter(|&i| pred.holds(self.state(i))).collect()
    }

    /// Number of states satisfying `pred`.
    pub fn count_satisfying(&self, pred: &Predicate) -> usize {
        self.ids().filter(|&i| pred.holds(self.state(i))).count()
    }

    /// Total number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::Domain;

    fn counter(max: i64) -> Program {
        let mut b = Program::builder("counter");
        let x = b.var("x", Domain::range(0, max));
        b.closure_action(
            "inc",
            [x],
            [x],
            move |s| s.get(x) < max,
            move |s| {
                let v = s.get(x);
                s.set(x, v + 1);
            },
        );
        b.build()
    }

    #[test]
    fn enumerates_all_states_and_transitions() {
        let p = counter(4);
        let space = StateSpace::enumerate(&p).unwrap();
        assert_eq!(space.len(), 5);
        assert_eq!(space.transition_count(), 4, "inc is disabled at x=4");
        for id in space.ids() {
            let x = space.state(id).slots()[0];
            if x < 4 {
                let succs = space.successors(id);
                assert_eq!(succs.len(), 1);
                assert_eq!(space.state(succs[0].1).slots()[0], x + 1);
            } else {
                assert!(space.successors(id).is_empty());
            }
        }
    }

    #[test]
    fn id_of_roundtrips() {
        let p = counter(3);
        let space = StateSpace::enumerate(&p).unwrap();
        for id in space.ids() {
            assert_eq!(space.id_of(space.state(id)), Some(id));
        }
        assert_eq!(space.id_of(&State::new(vec![99])), None);
    }

    #[test]
    fn id_of_rejects_malformed_states() {
        let p = counter(3);
        let space = StateSpace::enumerate(&p).unwrap();
        // Wrong arity.
        assert_eq!(space.id_of(&State::new(vec![0, 0])), None);
        assert_eq!(space.id_of(&State::new(vec![])), None);
        // Below the domain minimum (negative offset must not wrap).
        assert_eq!(space.id_of(&State::new(vec![-1])), None);
        assert_eq!(space.id_of(&State::new(vec![i64::MIN])), None);
    }

    #[test]
    fn arithmetic_ids_match_enumeration_order() {
        // Mixed domains with nonzero minimum: id must equal position.
        let mut b = Program::builder("mixed");
        b.var("a", Domain::range(-2, 1));
        b.var("b", Domain::Bool);
        b.var("c", Domain::enumeration(["p", "q", "r"]));
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        assert_eq!(space.len(), 4 * 2 * 3);
        for (pos, s) in p.enumerate_states().unwrap().enumerate() {
            assert_eq!(space.id_of(&s).unwrap().index(), pos);
            assert_eq!(space.state(StateId::from_index(pos)), &s);
        }
    }

    #[test]
    fn parallel_enumeration_is_identical() {
        let p = counter(4000);
        let serial = StateSpace::enumerate_with_options(&p, CheckOptions::serial()).unwrap();
        let parallel =
            StateSpace::enumerate_with_options(&p, CheckOptions::default().threads(4)).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for id in serial.ids() {
            assert_eq!(serial.state(id), parallel.state(id));
            assert_eq!(serial.successors(id), parallel.successors(id));
        }
    }

    #[test]
    fn satisfying_filters() {
        let p = counter(9);
        let x = p.var_by_name("x").unwrap();
        let space = StateSpace::enumerate(&p).unwrap();
        let even = Predicate::new("even", [x], move |s| s.get(x) % 2 == 0);
        assert_eq!(space.satisfying(&even).len(), 5);
        assert_eq!(space.count_satisfying(&even), 5);
    }

    #[test]
    fn limit_is_enforced() {
        let p = counter(1000);
        assert_eq!(
            StateSpace::enumerate_with_limit(&p, 100).unwrap_err(),
            SpaceError::TooLarge { limit: 100 }
        );
    }

    #[test]
    fn astronomically_large_spaces_rejected_without_overflow() {
        // 2^40-ish states: far beyond both the default limit and u32 ids.
        let mut b = Program::builder("huge");
        for i in 0..40 {
            b.var(format!("x{i}"), Domain::Bool);
        }
        let p = b.build();
        assert!(matches!(
            StateSpace::enumerate(&p).unwrap_err(),
            SpaceError::TooLarge { .. }
        ));
        // Even with a usize::MAX limit the u32 id range caps the space.
        assert_eq!(
            StateSpace::enumerate_with_limit(&p, usize::MAX).unwrap_err(),
            SpaceError::TooLarge {
                limit: u32::MAX as usize + 1
            }
        );
    }

    #[test]
    fn unbounded_rejected() {
        let mut b = Program::builder("u");
        b.var("y", Domain::Unbounded);
        let p = b.build();
        assert!(matches!(
            StateSpace::enumerate(&p).unwrap_err(),
            SpaceError::Unbounded { var } if var == "y"
        ));
    }

    #[test]
    fn escaping_action_is_an_error() {
        let mut b = Program::builder("bad");
        let x = b.var("x", Domain::range(0, 2));
        b.closure_action("overflow", [x], [x], |_| true, move |s| s.set(x, 7));
        let p = b.build();
        let err = StateSpace::enumerate(&p).unwrap_err();
        assert_eq!(
            err,
            SpaceError::EscapedDomain {
                action: "overflow".into(),
                var: "x".into()
            }
        );
        assert!(err.to_string().contains("left the state space"));
    }

    #[test]
    fn escape_reports_lowest_state_deterministically() {
        // `bad` escapes only at x >= 3; every worker count must report the
        // same (first) witness action.
        let mut b = Program::builder("bad2");
        let x = b.var("x", Domain::range(0, 5000));
        b.closure_action(
            "fine",
            [x],
            [x],
            move |s| s.get(x) < 5000,
            move |s| {
                let v = s.get(x);
                s.set(x, v + 1);
            },
        );
        b.closure_action(
            "bad",
            [x],
            [x],
            move |s| s.get(x) >= 3,
            move |s| s.set(x, -1),
        );
        let p = b.build();
        for threads in [1, 2, 8] {
            let err =
                StateSpace::enumerate_with_options(&p, CheckOptions::default().threads(threads))
                    .unwrap_err();
            assert_eq!(
                err,
                SpaceError::EscapedDomain {
                    action: "bad".into(),
                    var: "x".into()
                },
                "threads={threads}"
            );
        }
    }

    #[test]
    fn multi_var_space_size() {
        let mut b = Program::builder("mv");
        b.var("a", Domain::Bool);
        b.var("b", Domain::range(0, 2));
        b.var("c", Domain::enumeration(["x", "y"]));
        let p = b.build();
        let space = StateSpace::enumerate(&p).unwrap();
        assert_eq!(space.len(), 2 * 3 * 2);
    }
}
