//! Segmented out-of-core CSR storage: the transition relation sharded by
//! state-id range into independently built, droppable segments.
//!
//! A monolithic [`StateSpace`](crate::StateSpace) holds `4·(states+1) +
//! 8·transitions` bytes resident for the whole run, which caps the
//! checkable instance size at the memory budget. A [`SegmentedSpace`]
//! instead materializes the relation one [`Segment`] at a time: each
//! segment owns the CSR rows (`offsets`/`actions`/`succs`) of one
//! contiguous id range from the [segment plan](CheckOptions::segment_plan),
//! is built on demand by whichever work-stealing worker claims it, is
//! scanned, and is dropped before the worker claims its next task. Peak
//! residency is `workers × max-segment-bytes` regardless of the total
//! transition count, so full-relation sweeps (closure checks, violation
//! searches) scale to spaces whose monolithic CSR would blow the budget.
//!
//! Determinism matches the monolithic CSR exactly: a segment's rows are
//! built by the same decode → guard → successor evaluation in the same
//! (state-ascending, action-ascending) order, [`scan`](SegmentedSpace::scan)
//! merges per-segment results in segment order, and
//! [`scan_find`](SegmentedSpace::scan_find) reduces to the lowest-segment
//! hit — so every thread count, segment size, and claim interleaving
//! reports the identical result and witness.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use nonmask_obs::{Event, Journal};
use nonmask_program::{ActionId, Program, VarId};

use crate::options::{steal_find, steal_tasks, CheckOptions, SegmentPlan};
use crate::space::{scratch_bytes, SpaceError, SpaceIndex, StateId, Transitions};

/// One resident shard of the transition relation: the CSR rows of the
/// contiguous id range [`Segment::range`], with segment-local `offsets`
/// and global-id `actions`/`succs` columns.
#[derive(Debug, Clone)]
pub struct Segment {
    start: usize,
    /// Row bounds local to the segment: state `start + k`'s transitions
    /// are `offsets[k]..offsets[k+1]` in the flat columns.
    offsets: Vec<u32>,
    actions: Vec<ActionId>,
    succs: Vec<StateId>,
}

impl Segment {
    /// Build the segment covering `range`, evaluating each state's guards
    /// once and resolving successors to global ids through `index`.
    pub(crate) fn build(
        program: &Program,
        index: &SpaceIndex,
        range: Range<usize>,
    ) -> Result<Segment, SpaceError> {
        let mut scratch = index.scratch_state();
        let mut succ_buf = index.scratch_state();
        let mut offsets = Vec::with_capacity(range.len() + 1);
        offsets.push(0u32);
        let mut actions = Vec::new();
        let mut succs = Vec::new();
        for i in range.clone() {
            index.decode_state(StateId::from_index(i), &mut scratch);
            for a in program.action_ids() {
                let act = program.action(a);
                if !act.enabled(&scratch) {
                    continue;
                }
                act.successor_into(&scratch, &mut succ_buf);
                match index.id_of(&succ_buf) {
                    Some(t) => {
                        actions.push(a);
                        succs.push(t);
                    }
                    None => {
                        return Err(SpaceError::EscapedDomain {
                            action: act.name().to_string(),
                            var: program
                                .var(VarId::from_index(index.escaping_var(&succ_buf)))
                                .name()
                                .to_string(),
                        })
                    }
                }
            }
            let total =
                u32::try_from(actions.len()).map_err(|_| SpaceError::TooManyTransitions {
                    count: actions.len() as u64,
                })?;
            offsets.push(total);
        }
        Ok(Segment {
            start: range.start,
            offsets,
            actions,
            succs,
        })
    }

    /// The global id range this segment covers.
    pub fn range(&self) -> Range<usize> {
        self.start..self.start + self.len()
    }

    /// Number of states in the segment.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the segment covers no states.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of transitions in the segment.
    pub fn transition_count(&self) -> usize {
        self.succs.len()
    }

    /// The `(action, successor)` row of global state `id`, in action-id
    /// order — the same view [`StateSpace::successors`] returns for this
    /// id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside [`Segment::range`].
    ///
    /// [`StateSpace::successors`]: crate::StateSpace::successors
    pub fn successors(&self, id: StateId) -> Transitions<'_> {
        let i = id.index();
        assert!(
            self.range().contains(&i),
            "state id {id} outside segment range {:?}",
            self.range()
        );
        let k = i - self.start;
        let (lo, hi) = (self.offsets[k] as usize, self.offsets[k + 1] as usize);
        Transitions::new(&self.actions[lo..hi], &self.succs[lo..hi])
    }

    /// Resident bytes of the segment's three CSR arrays.
    pub fn resident_bytes(&self) -> u64 {
        (self.offsets.len() * std::mem::size_of::<u32>()
            + self.actions.len() * std::mem::size_of::<ActionId>()
            + self.succs.len() * std::mem::size_of::<StateId>()) as u64
    }
}

/// An out-of-core view of a program's transition relation: the
/// [`SpaceIndex`] (O(variables) resident) plus a [`SegmentPlan`], with
/// [`Segment`]s built, scanned, and dropped on demand under the
/// work-stealing scheduler.
#[derive(Debug)]
pub struct SegmentedSpace<'p> {
    program: &'p Program,
    index: SpaceIndex,
    plan: SegmentPlan,
    options: CheckOptions,
    segments_built: AtomicU64,
    peak_segment_bytes: AtomicU64,
}

impl<'p> SegmentedSpace<'p> {
    /// Set up a segmented view of `program`'s state space. Allocates
    /// nothing proportional to the space; segments are built lazily by the
    /// scans.
    ///
    /// # Errors
    ///
    /// [`SpaceError::Unbounded`] / [`SpaceError::TooLarge`] exactly as
    /// [`SpaceIndex::of_program`].
    pub fn new(program: &'p Program, options: CheckOptions) -> Result<Self, SpaceError> {
        let index = SpaceIndex::of_program(program, options)?;
        let plan = options.segment_plan(index.len());
        Ok(SegmentedSpace {
            program,
            index,
            plan,
            options,
            segments_built: AtomicU64::new(0),
            peak_segment_bytes: AtomicU64::new(0),
        })
    }

    /// The program whose relation this view shards.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The id↔state bijection.
    pub fn index(&self) -> &SpaceIndex {
        &self.index
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the space has no states.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The segment plan scans iterate over.
    pub fn plan(&self) -> SegmentPlan {
        self.plan
    }

    /// Number of segments in the plan.
    pub fn segment_count(&self) -> usize {
        self.plan.count()
    }

    /// Total segments built so far across all scans (for counters; a
    /// segment rebuilt by a later pass counts again).
    pub fn segments_built(&self) -> u64 {
        self.segments_built.load(Ordering::Relaxed)
    }

    /// Largest single-segment residency observed so far, in bytes. Peak
    /// scan residency is bounded by `workers ×` this figure.
    pub fn peak_segment_bytes(&self) -> u64 {
        self.peak_segment_bytes.load(Ordering::Relaxed)
    }

    /// Build segment `ti` of the plan, enforcing the memory budget against
    /// the worst-case concurrent window (`workers × largest-segment-bytes`
    /// plus per-worker decode scratch).
    ///
    /// # Errors
    ///
    /// [`SpaceError::BudgetExceeded`] (phase `"segment build"`) when the
    /// concurrent window exceeds the budget;
    /// [`SpaceError::EscapedDomain`] / [`SpaceError::TooManyTransitions`]
    /// as in monolithic enumeration.
    pub fn build_segment(&self, ti: usize) -> Result<Segment, SpaceError> {
        let seg = Segment::build(self.program, &self.index, self.plan.range(ti))?;
        self.segments_built.fetch_add(1, Ordering::Relaxed);
        let bytes = seg.resident_bytes();
        let peak = self
            .peak_segment_bytes
            .fetch_max(bytes, Ordering::Relaxed)
            .max(bytes);
        let workers = self.workers() as u64;
        let required = peak * workers + scratch_bytes(2 * workers, self.index.var_count());
        if required > self.options.memory_budget {
            return Err(SpaceError::BudgetExceeded {
                required,
                budget: self.options.memory_budget,
                phase: "segment build",
            });
        }
        Ok(seg)
    }

    fn workers(&self) -> usize {
        self.options.workers_for(self.index.len())
    }

    /// Run `f` over every segment (work-stealing, one resident segment per
    /// worker) and return the per-segment results **in segment order**.
    ///
    /// # Errors
    ///
    /// Build errors ([`SpaceError`]) and panics inside `f`
    /// ([`SpaceError::WorkerFailed`]); the lowest-segment error wins, as in
    /// a sequential sweep.
    pub fn scan<T, F>(&self, f: F) -> Result<Vec<T>, SpaceError>
    where
        T: Send,
        F: Fn(usize, &Segment) -> T + Sync,
    {
        self.scan_journaled(&Journal::disabled(), f)
    }

    /// [`scan`](SegmentedSpace::scan) that additionally records one
    /// [`Event::Segment`] (phase `"scan"`) per segment, in segment order,
    /// with the segment's state and transition counts — so journals are
    /// identical for every thread count.
    ///
    /// # Errors
    ///
    /// Same as [`scan`](SegmentedSpace::scan).
    pub fn scan_journaled<T, F>(&self, journal: &Journal, f: F) -> Result<Vec<T>, SpaceError>
    where
        T: Send,
        F: Fn(usize, &Segment) -> T + Sync,
    {
        let results = steal_tasks(self.plan.count(), self.workers(), |ti| {
            let seg = self.build_segment(ti)?;
            let stats = (seg.len() as u64, seg.transition_count() as u64);
            Ok::<_, SpaceError>((f(ti, &seg), stats))
        })
        .map_err(SpaceError::from)?;
        let mut outs = Vec::with_capacity(results.len());
        for (ti, r) in results.into_iter().enumerate() {
            let (out, (states, transitions)) = r?;
            journal.emit_with(|| Event::Segment {
                phase: "scan".to_string(),
                index: ti as u64,
                states,
                transitions,
            });
            outs.push(out);
        }
        Ok(outs)
    }

    /// Work-stealing search over segments: the hit from the
    /// **lowest-indexed** segment wins, so the witness matches a
    /// sequential sweep for every thread count. Workers stop claiming
    /// segments above the best hit found so far.
    ///
    /// # Errors
    ///
    /// Same as [`scan`](SegmentedSpace::scan); an error in a segment below
    /// every hit takes precedence, exactly as it would sequentially.
    pub fn scan_find<T, F>(&self, f: F) -> Result<Option<T>, SpaceError>
    where
        T: Send,
        F: Fn(usize, &Segment) -> Option<T> + Sync,
    {
        let hit = steal_find(self.plan.count(), self.workers(), |ti| {
            match self.build_segment(ti) {
                Err(e) => Some(Err(e)),
                Ok(seg) => f(ti, &seg).map(Ok),
            }
        })
        .map_err(SpaceError::from)?;
        hit.transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::StateSpace;
    use nonmask_program::Domain;

    fn counter(max: i64) -> Program {
        let mut b = Program::builder("counter");
        let x = b.var("x", Domain::range(0, max));
        b.closure_action(
            "inc",
            [x],
            [x],
            move |s| s.get(x) < max,
            move |s| {
                let v = s.get(x);
                s.set(x, v + 1);
            },
        );
        b.closure_action(
            "reset",
            [x],
            [x],
            move |s| s.get(x) > 2,
            move |s| s.set(x, 0),
        );
        b.build()
    }

    #[test]
    fn segment_rows_match_monolithic_csr() {
        let p = counter(4999);
        let space = StateSpace::enumerate(&p).unwrap();
        // Segment sizes that do and don't divide the state count.
        for seg_states in [1000, 4096, 64, 5000, 7] {
            let opts = CheckOptions::default().segment_states(seg_states);
            let seg_space = SegmentedSpace::new(&p, opts).unwrap();
            assert_eq!(seg_space.len(), space.len());
            let rows: Vec<Vec<(ActionId, StateId)>> = seg_space
                .scan(|_, seg| {
                    seg.range()
                        .flat_map(|i| seg.successors(StateId::from_index(i)).iter())
                        .collect::<Vec<_>>()
                })
                .unwrap()
                .into_iter()
                .collect();
            let flat: Vec<(ActionId, StateId)> = rows.into_iter().flatten().collect();
            let expect: Vec<(ActionId, StateId)> = space
                .ids()
                .flat_map(|id| space.successors(id).iter())
                .collect();
            assert_eq!(flat, expect, "seg_states={seg_states}");
        }
    }

    #[test]
    fn scan_find_reports_lowest_segment_hit_across_threads() {
        let p = counter(9999);
        // Hits exist in many segments (every state with x > 2 has `reset`
        // enabled); the witness must be the lowest id for every thread
        // count and segment size.
        for threads in [1, 2, 8] {
            for seg_states in [512, 1000] {
                let opts = CheckOptions::default()
                    .threads(threads)
                    .segment_states(seg_states);
                let seg_space = SegmentedSpace::new(&p, opts).unwrap();
                let hit = seg_space
                    .scan_find(|_, seg| {
                        seg.range().find_map(|i| {
                            let id = StateId::from_index(i);
                            seg.successors(id)
                                .iter()
                                .any(|(_, t)| t.index() == 0)
                                .then_some(id)
                        })
                    })
                    .unwrap();
                assert_eq!(
                    hit.map(|id| id.index()),
                    Some(3),
                    "threads={threads} seg_states={seg_states}"
                );
            }
        }
    }

    #[test]
    fn segment_budget_is_enforced_with_phase() {
        let p = counter(4095);
        let opts = CheckOptions::default()
            .segment_states(512)
            .memory_budget(100);
        let seg_space = SegmentedSpace::new(&p, opts).unwrap();
        let err = seg_space.build_segment(0).unwrap_err();
        let SpaceError::BudgetExceeded {
            required,
            budget,
            phase,
        } = err
        else {
            panic!("expected BudgetExceeded, got {err:?}");
        };
        assert_eq!(budget, 100);
        assert!(required > 100);
        assert_eq!(phase, "segment build");
    }

    #[test]
    fn escaped_domain_reported_from_segments() {
        let mut b = Program::builder("bad");
        let x = b.var("x", Domain::range(0, 2));
        b.closure_action("overflow", [x], [x], |_| true, move |s| s.set(x, 7));
        let p = b.build();
        let seg_space = SegmentedSpace::new(&p, CheckOptions::default()).unwrap();
        let err = seg_space.scan(|_, _| ()).unwrap_err();
        assert_eq!(
            err,
            SpaceError::EscapedDomain {
                action: "overflow".into(),
                var: "x".into()
            }
        );
    }

    #[test]
    fn scan_journal_is_thread_count_invariant() {
        let p = counter(4999);
        let mut journals = Vec::new();
        for threads in [1, 2, 8] {
            let opts = CheckOptions::default()
                .threads(threads)
                .segment_states(1000);
            let seg_space = SegmentedSpace::new(&p, opts).unwrap();
            let (journal, buffer) = Journal::memory();
            let counts = seg_space
                .scan_journaled(&journal, |_, seg| seg.transition_count())
                .unwrap();
            assert_eq!(counts.len(), 5);
            journal.flush();
            // Compare events, not raw bytes: wall-clock `t_us` stamps vary,
            // but the Segment events themselves carry no timing.
            let events: Vec<Event> = buffer
                .contents()
                .lines()
                .map(|l| Event::parse_line(l).unwrap().event)
                .collect();
            journals.push(events);
        }
        assert_eq!(journals[0], journals[1]);
        assert_eq!(journals[0], journals[2]);
        assert_eq!(journals[0].len(), 5, "one Segment event per segment");
        assert!(journals[0]
            .iter()
            .enumerate()
            .all(|(ti, e)| matches!(e, Event::Segment { phase, index, .. }
                if phase == "scan" && *index == ti as u64)));
    }
}
