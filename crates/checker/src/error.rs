//! Typed failures of checker passes.

/// An error raised by a checker pass (predicate caching, closure,
/// convergence, bounds, fault-span computation).
///
/// The checker evaluates caller-supplied closures — predicates, guards,
/// action bodies — across worker threads. A panic inside one of those
/// closures used to abort the whole process via
/// `.join().expect("checker worker panicked")`; it is now caught (on both
/// the threaded and the single-chunk serial paths) and surfaced as
/// [`CheckError::WorkerFailed`] so a caller embedding the checker
/// survives a poisoned closure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// A worker panicked while evaluating a caller-supplied closure; the
    /// panic payload is captured instead of aborting the process.
    WorkerFailed {
        /// The panic payload, rendered as a string (non-string payloads
        /// are replaced by a placeholder).
        payload: String,
    },
    /// A containment sweep found a radius that fails to converge after a
    /// smaller radius already converged — the caller's goal family is not
    /// a restriction chain, so "the certified radius" is ill-defined.
    NonMonotoneContainment {
        /// The smaller radius that converged.
        certified: u64,
        /// The larger radius that failed.
        failed: u64,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::WorkerFailed { payload } => {
                write!(f, "checker worker panicked: {payload}")
            }
            CheckError::NonMonotoneContainment { certified, failed } => {
                write!(
                    f,
                    "containment goal family is not monotone: radius {certified} converges but radius {failed} does not"
                )
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Render a caught panic payload as a string for
/// [`CheckError::WorkerFailed`].
pub(crate) fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
