//! Per-pass work counters for a full verification run.
//!
//! The checker's passes (enumeration, predicate caching, closure,
//! convergence) each do a quantifiable amount of work; [`CheckCounters`]
//! aggregates it so callers (notably `nonmask::Design::verify`) can report
//! *how much* state space a verdict rests on. The struct implements
//! [`CounterSet`], so one call journals every field as an
//! [`Event::Counter`](nonmask_obs::Event::Counter) under the `checker`
//! scope.

use nonmask_obs::CounterSet;

/// Work counters accumulated across one verification run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckCounters {
    /// States in the enumerated space.
    pub states: u64,
    /// Transitions in the CSR table.
    pub transitions: u64,
    /// Predicate caches ([`Bitset`](crate::Bitset)s) built.
    pub bitset_builds: u64,
    /// State decodings performed while building predicate caches
    /// (`bitset_builds × states`).
    pub states_decoded: u64,
    /// CSR rows visited by closure/preservation scans.
    pub csr_rows_visited: u64,
    /// Region (`T ∧ ¬S`) states examined by convergence passes.
    pub region_states: u64,
    /// Region states resolved by the Kahn-style peel (no SCC work needed).
    pub peeled_states: u64,
    /// Strongly connected components Tarjan examined in the residuals.
    pub sccs_found: u64,
    /// Preservation-memo lookups answered from cache.
    pub cache_hits: u64,
    /// Preservation-memo lookups that ran a fresh scan.
    pub cache_misses: u64,
    /// Segment row-buffers built by out-of-core passes (segmented scans
    /// and frontier rounds); zero for fully resident runs.
    pub segments_built: u64,
    /// Frontier convergence fixpoint rounds executed.
    pub frontier_rounds: u64,
    /// Successor evaluations performed by frontier convergence rounds.
    pub frontier_evals: u64,
}

impl CounterSet for CheckCounters {
    fn scope(&self) -> String {
        "checker".to_string()
    }

    fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("states", self.states),
            ("transitions", self.transitions),
            ("bitset_builds", self.bitset_builds),
            ("states_decoded", self.states_decoded),
            ("csr_rows_visited", self.csr_rows_visited),
            ("region_states", self.region_states),
            ("peeled_states", self.peeled_states),
            ("sccs_found", self.sccs_found),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("segments_built", self.segments_built),
            ("frontier_rounds", self.frontier_rounds),
            ("frontier_evals", self.frontier_evals),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_obs::{Event, Journal};

    #[test]
    fn counters_emit_under_checker_scope() {
        let counters = CheckCounters {
            states: 10,
            cache_hits: 3,
            ..CheckCounters::default()
        };
        assert_eq!(counters.scope(), "checker");
        assert_eq!(counters.fields().len(), 13);
        let (journal, buffer) = Journal::memory();
        counters.emit(&journal);
        journal.flush();
        let lines: Vec<_> = buffer.contents().lines().map(String::from).collect();
        assert_eq!(lines.len(), 13);
        let first = Event::parse_line(&lines[0]).unwrap();
        assert_eq!(
            first.event,
            Event::Counter {
                scope: "checker".to_string(),
                name: "states".to_string(),
                value: 10,
            }
        );
    }

    #[test]
    fn to_json_lists_fields_in_order() {
        let counters = CheckCounters {
            states: 1,
            transitions: 2,
            ..CheckCounters::default()
        };
        let json = counters.to_json();
        assert!(json.starts_with("{\"states\":1,\"transitions\":2,"));
        assert!(json.ends_with("\"frontier_evals\":0}"));
    }
}
