//! Byzantine-containment certification: restricted-region convergence.
//!
//! With Byzantine nodes modelled as unconstrained environment inputs
//! (havoc actions in the program's transition relation), global
//! stabilization is unattainable — the liars never heal. The question
//! shifts to *containment*: for which radius `r` does the sub-space
//! restricted to nodes at distance `> r` from every Byzantine node
//! still converge, from **any** state, under any Byzantine behaviour?
//!
//! [`certify_containment`] answers it by sweeping `r` upward and
//! running the ordinary convergence check ([`crate::convergence`])
//! from `true` into the caller-supplied restricted goal at each
//! radius. Restriction is monotone — growing `r` only drops conjuncts
//! — so the first converging radius is *the* certified containment
//! radius, and everything beyond it converges too (the sweep asserts
//! this rather than assuming it). The enumerated [`StateSpace`] is
//! shared across all radii, so the sweep costs one enumeration plus
//! one region analysis per radius.

use nonmask_program::{Predicate, Program};

use crate::convergence::{check_convergence_opts, ConvergenceResult, Fairness};
use crate::error::CheckError;
use crate::options::CheckOptions;
use crate::space::StateSpace;

/// The outcome of a containment sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainmentVerdict {
    /// The least radius whose restricted goal converges, if any radius
    /// up to the sweep bound does.
    pub radius: Option<u64>,
    /// Every radius examined, in order, with its convergence verdict.
    /// Once the first radius converges the remaining radii are still
    /// checked (they must also converge, by monotonicity of
    /// restriction) so a non-monotone goal family is caught loudly.
    pub verdicts: Vec<(u64, bool)>,
}

impl ContainmentVerdict {
    /// Whether any examined radius converged.
    pub fn contained(&self) -> bool {
        self.radius.is_some()
    }
}

/// Certify the containment radius of `program` (typically one with
/// havoc actions standing in for Byzantine nodes): sweep
/// `r = 0..=max_radius`, checking convergence from every state into
/// `goal_at(r)` under `fairness`, and report the least converging
/// radius.
///
/// # Errors
///
/// Propagates [`CheckError`]s from the underlying convergence passes,
/// and reports a non-monotone goal family (a radius that fails after a
/// smaller one converged) as [`CheckError::NonMonotoneContainment`].
pub fn certify_containment(
    space: &StateSpace,
    program: &Program,
    goal_at: impl Fn(u64) -> Predicate,
    max_radius: u64,
    fairness: Fairness,
    opts: CheckOptions,
) -> Result<ContainmentVerdict, CheckError> {
    let from = Predicate::always_true();
    let mut verdicts = Vec::new();
    let mut radius = None;
    for r in 0..=max_radius {
        let goal = goal_at(r);
        let result = check_convergence_opts(space, program, &from, &goal, fairness, opts)?;
        let converges = matches!(result, ConvergenceResult::Converges);
        if converges && radius.is_none() {
            radius = Some(r);
        }
        if let (false, Some(certified)) = (converges, radius) {
            return Err(CheckError::NonMonotoneContainment {
                certified,
                failed: r,
            });
        }
        verdicts.push((r, converges));
    }
    Ok(ContainmentVerdict { radius, verdicts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonmask_program::{Domain, ProcessId, VarId};

    /// A hand-built min+1 line `0 - 1 - 2 - 3` with the root at 0 and a
    /// havocked liar at 3. Legitimate distances through correct nodes
    /// are `[0, 1, 2]`; distances to the liar are `[3, 2, 1]`. Node 2
    /// is closer to the liar than to the root (`2 > 1`), so it can be
    /// dragged to 2's lie-fixpoint forever — the true containment
    /// radius is node 2's distance to the liar: 1.
    fn line_with_liar() -> (Program, Vec<VarId>) {
        let cap = 4i64;
        let mut b = Program::builder("minplus1-line-liar");
        let d: Vec<VarId> = (0..4)
            .map(|j| b.var_of(format!("d.{j}"), Domain::range(0, cap), ProcessId(j)))
            .collect();
        let d0 = d[0];
        b.convergence_action(
            "anchor@0",
            [d0],
            [d0],
            move |s| s.get(d0) != 0,
            move |s| s.set(d0, 0),
        );
        for j in [1usize, 2] {
            let (dj, dl, dr) = (d[j], d[j - 1], d[j + 1]);
            b.convergence_action(
                format!("minplus1@{j}"),
                [dj, dl, dr],
                [dj],
                move |s| s.get(dj) != (s.get(dl).min(s.get(dr)) + 1).min(cap),
                move |s| {
                    let t = (s.get(dl).min(s.get(dr)) + 1).min(cap);
                    s.set(dj, t);
                },
            );
        }
        let d3 = d[3];
        for v in 0..=cap {
            b.closure_action(
                format!("lie@3={v}"),
                [d3],
                [d3],
                move |s| s.get(d3) != v,
                move |s| s.set(d3, v),
            );
        }
        (b.build(), d)
    }

    /// The pins of every correct node at distance `> r` from the liar.
    fn goal_at(d: &[VarId], r: u64) -> Predicate {
        let legit = [0i64, 1, 2];
        let to_liar = [3u64, 2, 1];
        let pins: Vec<(VarId, i64)> = (0..3)
            .filter(|&v| to_liar[v] > r)
            .map(|v| (d[v], legit[v]))
            .collect();
        let reads: Vec<VarId> = pins.iter().map(|&(v, _)| v).collect();
        Predicate::new(format!("contained@r={r}"), reads, move |s| {
            pins.iter().all(|&(v, l)| s.get(v) == l)
        })
    }

    #[test]
    fn line_certifies_the_predicted_radius() {
        let (program, d) = line_with_liar();
        let space = StateSpace::enumerate(&program).unwrap();
        let verdict = certify_containment(
            &space,
            &program,
            |r| goal_at(&d, r),
            3,
            Fairness::WeaklyFair,
            CheckOptions::default(),
        )
        .unwrap();
        assert_eq!(verdict.radius, Some(1));
        assert_eq!(
            verdict.verdicts,
            vec![(0, false), (1, true), (2, true), (3, true)]
        );
    }

    #[test]
    fn non_monotone_family_is_rejected() {
        let (program, d) = line_with_liar();
        let space = StateSpace::enumerate(&program).unwrap();
        // Deliberately swap the family: the easy goal first, the
        // impossible radius-0 goal after it.
        let err = certify_containment(
            &space,
            &program,
            |r| goal_at(&d, if r == 0 { 2 } else { 0 }),
            1,
            Fairness::WeaklyFair,
            CheckOptions::default(),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                CheckError::NonMonotoneContainment {
                    certified: 0,
                    failed: 1
                }
            ),
            "{err}"
        );
    }
}
